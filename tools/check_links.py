#!/usr/bin/env python3
"""Fail on broken relative links in the repo's Markdown documentation.

CI runs this over ``README.md`` and ``docs/`` (see
``.github/workflows/ci.yml``).  The checker is deliberately small and
stdlib-only:

* inline links ``[text](target)`` and images ``![alt](target)`` are
  collected with a regex; reference-style definitions ``[id]: target``
  are collected too;
* absolute URLs (``http://``, ``https://``, ``mailto:``) are skipped —
  this is a *relative*-link checker, not a crawler;
* pure-fragment links (``#section``) are skipped (heading anchors are
  renderer-specific);
* everything else must resolve, relative to the containing file, to an
  existing file or directory after stripping any ``#fragment``.

Exit status: 0 when every relative link resolves, 1 otherwise (each
broken link is printed as ``file:line: target``), 2 on usage error.

Usage::

    python tools/check_links.py README.md docs

Directory arguments are walked recursively for ``*.md`` files.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, Iterator, List, Tuple

# Inline link/image: [text](target ...) — target ends at whitespace or
# the closing paren; an optional "title" after the target is tolerated.
_INLINE = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")
# Reference definition at line start: [id]: target
_REFERENCE = re.compile(r"^\s*\[[^\]]+\]:\s+<?(\S+?)>?\s*$")
# Fenced code blocks must not contribute links (``[i]`` indexing etc.).
_FENCE = re.compile(r"^\s*(```|~~~)")

_SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def iter_markdown_files(arguments: Iterable[str]) -> Iterator[Path]:
    for argument in arguments:
        path = Path(argument)
        if path.is_dir():
            yield from sorted(path.rglob("*.md"))
        else:
            yield path


def iter_links(text: str) -> Iterator[Tuple[int, str]]:
    """Yield ``(line_number, target)`` for every link in *text*."""
    in_fence = False
    for number, line in enumerate(text.splitlines(), start=1):
        if _FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        reference = _REFERENCE.match(line)
        if reference:
            yield number, reference.group(1)
            continue
        for match in _INLINE.finditer(line):
            yield number, match.group(1)


def broken_links(path: Path) -> List[Tuple[int, str]]:
    """Relative links in *path* that do not resolve to an existing file."""
    broken: List[Tuple[int, str]] = []
    text = path.read_text(encoding="utf-8")
    for number, target in iter_links(text):
        if target.startswith(_SKIP_PREFIXES):
            continue
        if target.startswith("#"):
            continue
        bare = target.split("#", 1)[0]
        if not bare:
            continue
        resolved = (path.parent / bare).resolve()
        if not resolved.exists():
            broken.append((number, target))
    return broken


def main(argv: List[str]) -> int:
    if not argv:
        print("usage: check_links.py FILE_OR_DIR [FILE_OR_DIR ...]", file=sys.stderr)
        return 2
    files = list(iter_markdown_files(argv))
    missing = [str(path) for path in files if not path.is_file()]
    if missing:
        for path in missing:
            print(f"no such file: {path}", file=sys.stderr)
        return 2
    failures = 0
    for path in files:
        for number, target in broken_links(path):
            print(f"{path}:{number}: broken relative link -> {target}")
            failures += 1
    checked = len(files)
    if failures:
        print(f"{failures} broken link(s) across {checked} file(s)")
        return 1
    print(f"ok: {checked} markdown file(s), all relative links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
