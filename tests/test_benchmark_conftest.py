"""Unit tests for the benchmark-suite helpers in benchmarks/conftest.py.

The benchmarks directory is not a package, so the module is loaded by
path; these tests pin the ``mean_seconds`` error-handling contract (only
a missing/absent ``"mean"`` dissolves into NaN — anything else is real
pytest-benchmark API drift and must propagate).
"""

from __future__ import annotations

import importlib.util
import math
import pathlib

import pytest

_CONFTEST = (
    pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "conftest.py"
)


@pytest.fixture(scope="module")
def bench_helpers():
    spec = importlib.util.spec_from_file_location("bench_conftest", _CONFTEST)
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class _AttrStats:
    """pytest-benchmark >= 4 shape: benchmark.stats.stats.mean."""

    def __init__(self, mean):
        class _Inner:
            pass

        self.stats = _Inner()
        self.stats.mean = mean


class _Fixture:
    def __init__(self, stats):
        self.stats = stats


class TestMeanSeconds:
    def test_missing_stats_is_nan(self, bench_helpers):
        class NoStats:
            pass

        assert math.isnan(bench_helpers.mean_seconds(NoStats()))

    def test_attribute_shape(self, bench_helpers):
        assert bench_helpers.mean_seconds(_Fixture(_AttrStats(0.25))) == 0.25

    def test_mapping_shape(self, bench_helpers):
        assert bench_helpers.mean_seconds(_Fixture({"mean": 1.5})) == 1.5

    def test_mapping_without_mean_is_nan(self, bench_helpers):
        assert math.isnan(bench_helpers.mean_seconds(_Fixture({"median": 1.0})))

    def test_unsubscriptable_stats_is_nan(self, bench_helpers):
        # An object that is neither shape raises TypeError on ["mean"];
        # that (and KeyError) are the only errors absorbed into NaN.
        assert math.isnan(bench_helpers.mean_seconds(_Fixture(object())))

    def test_other_errors_propagate(self, bench_helpers):
        class Exploding:
            def __getitem__(self, key):
                raise RuntimeError("API drift")

        with pytest.raises(RuntimeError, match="API drift"):
            bench_helpers.mean_seconds(_Fixture(Exploding()))

    def test_format_time_units(self, bench_helpers):
        assert bench_helpers.format_time(math.nan).strip() == "n/a"
        assert bench_helpers.format_time(2.5).strip() == "2.50s"
        assert bench_helpers.format_time(0.0025).strip() == "2.50ms"
        assert bench_helpers.format_time(2.5e-6).strip() == "2.5us"
