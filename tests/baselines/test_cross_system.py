"""Four-way agreement: TARA and every baseline answer identically."""

import math

import pytest

from repro.baselines import Dctar, HMineOnline, Paras, rule_key
from repro.core import ParameterSetting, TaraExplorer, TrajectoryQuery
from repro.data.periods import PeriodSpec

GEN_SUPPORT = 0.02
GEN_CONFIDENCE = 0.1


@pytest.fixture(scope="module")
def systems(small_windows):
    dctar = Dctar(small_windows)
    hmine = HMineOnline(small_windows, GEN_SUPPORT)
    hmine.preprocess()
    paras = Paras(small_windows, GEN_SUPPORT, GEN_CONFIDENCE)
    paras.preprocess()
    return [dctar, hmine, paras]


@pytest.fixture(scope="module")
def tara(small_kb):
    return TaraExplorer(small_kb)


@pytest.mark.parametrize(
    "supp,conf",
    [(0.02, 0.1), (0.03, 0.2), (0.05, 0.3), (0.08, 0.5), (0.2, 0.8)],
)
def test_rulesets_identical_across_systems(
    systems, tara, small_kb, small_windows, supp, conf
):
    setting = ParameterSetting(supp, conf)
    for window in range(small_windows.window_count):
        tara_keys = sorted(
            rule_key(small_kb.catalog.get(r)) for r in tara.ruleset(setting, window)
        )
        for system in systems:
            assert sorted(system.ruleset(setting, window)) == tara_keys, (
                system.name,
                window,
            )


def test_trajectory_measures_agree_where_archived(
    systems, tara, small_kb, small_windows
):
    setting = ParameterSetting(0.05, 0.3)
    spec = PeriodSpec(range(small_windows.window_count))
    anchor = small_windows.window_count - 1
    tara_traj = {
        rule_key(t.rule): {
            w: (m.support, m.confidence) if m else None
            for w, m in t.measures.items()
        }
        for t in tara.execute(
            TrajectoryQuery(setting=setting, anchor_window=anchor, spec=spec)
        )
    }
    dctar_traj = systems[0].trajectory(setting, anchor, spec)
    assert set(tara_traj) == set(dctar_traj)
    for key, windows in tara_traj.items():
        for window, measures in windows.items():
            if measures is None:
                continue  # below generation thresholds: archive has no entry
            baseline = dctar_traj[key][window]
            assert baseline is not None
            assert math.isclose(measures[0], baseline[0])
            assert math.isclose(measures[1], baseline[1])


def test_mined_measures_agree(systems, tara, small_kb, small_windows):
    setting = ParameterSetting(0.05, 0.3)
    window = 1
    tara_mined = {
        rule_key(m.rule): (m.support, m.confidence)
        for m in tara.mine(setting, PeriodSpec([window]))[window]
    }
    for system in systems:
        answer = system.ruleset(setting, window)
        assert answer.keys() == tara_mined.keys()
        for key, (supp, conf) in answer.items():
            assert math.isclose(supp, tara_mined[key][0]), (system.name, key)
            assert math.isclose(conf, tara_mined[key][1]), (system.name, key)
