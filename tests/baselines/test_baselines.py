"""The three competitor systems: correctness and contract behaviour."""

import math

import pytest

from repro.baselines import Dctar, HMineOnline, Paras, count_rule_measures
from repro.common.errors import NotBuiltError, QueryError
from repro.core import MatchMode, ParameterSetting
from repro.data.periods import PeriodSpec

GEN_SUPPORT = 0.02
GEN_CONFIDENCE = 0.1
SETTING = ParameterSetting(0.05, 0.3)


@pytest.fixture(scope="module")
def dctar(small_windows):
    return Dctar(small_windows)


@pytest.fixture(scope="module")
def hmine(small_windows):
    system = HMineOnline(small_windows, GEN_SUPPORT)
    system.preprocess()
    return system


@pytest.fixture(scope="module")
def paras(small_windows):
    system = Paras(small_windows, GEN_SUPPORT, GEN_CONFIDENCE)
    system.preprocess()
    return system


class TestRulesetAgreement:
    def test_all_systems_agree_everywhere(self, dctar, hmine, paras, small_windows):
        for window in range(small_windows.window_count):
            reference = dctar.ruleset(SETTING, window)
            assert hmine.ruleset(SETTING, window).keys() == reference.keys()
            assert paras.ruleset(SETTING, window).keys() == reference.keys()

    def test_measures_agree(self, dctar, hmine, paras, small_windows):
        window = small_windows.window_count - 1  # PARAS's indexed window
        reference = dctar.ruleset(SETTING, window)
        for system in (hmine, paras):
            answer = system.ruleset(SETTING, window)
            for key, (supp, conf) in reference.items():
                other_supp, other_conf = answer[key]
                assert math.isclose(supp, other_supp), (system.name, key)
                assert math.isclose(conf, other_conf), (system.name, key)


class TestDctar:
    def test_no_preprocess_needed(self, small_windows):
        system = Dctar(small_windows)
        system.preprocess()  # no-op, must not fail
        assert system.ruleset(SETTING, 0)

    def test_rule_measures_by_counting(self, dctar, small_windows):
        rules = list(dctar.ruleset(SETTING, 0))[:5]
        measured = dctar.rule_measures(rules, 1)
        direct = count_rule_measures(small_windows.window(1), rules)
        assert measured == direct

    def test_window_out_of_range(self, dctar):
        with pytest.raises(QueryError):
            dctar.ruleset(SETTING, 99)


class TestHMineOnline:
    def test_requires_preprocess(self, small_windows):
        fresh = HMineOnline(small_windows, GEN_SUPPORT)
        with pytest.raises(NotBuiltError):
            fresh.ruleset(SETTING, 0)
        with pytest.raises(NotBuiltError):
            fresh.index_entry_count()

    def test_query_below_generation_support_rejected(self, hmine):
        with pytest.raises(QueryError, match="generation"):
            hmine.ruleset(ParameterSetting(0.001, 0.5), 0)

    def test_measures_none_for_unstored_itemsets(self, hmine):
        ghost = ((98,), (99,))
        assert hmine.rule_measures([ghost], 0)[ghost] is None

    def test_index_sizes_positive(self, hmine):
        assert hmine.index_entry_count() > 0
        assert hmine.index_size_bytes() > hmine.index_entry_count() * 16

    def test_timer_recorded_per_window(self, hmine, small_windows):
        from repro.core.builder import PHASE_ITEMSETS

        assert hmine.timer.counts[PHASE_ITEMSETS] == small_windows.window_count


class TestParas:
    def test_requires_preprocess_for_indexed_window(self, small_windows):
        fresh = Paras(small_windows, GEN_SUPPORT, GEN_CONFIDENCE)
        with pytest.raises(NotBuiltError):
            fresh.ruleset(SETTING, fresh.indexed_window)

    def test_scratch_path_works_without_index(self, small_windows, dctar):
        fresh = Paras(small_windows, GEN_SUPPORT, GEN_CONFIDENCE)
        # Non-latest windows re-mine from scratch: no index needed.
        assert fresh.ruleset(SETTING, 0).keys() == dctar.ruleset(SETTING, 0).keys()

    def test_indexed_window_is_latest(self, paras, small_windows):
        assert paras.indexed_window == small_windows.window_count - 1

    def test_below_generation_threshold_rejected_on_index(self, paras):
        with pytest.raises(QueryError):
            paras.ruleset(ParameterSetting(0.001, 0.5), paras.indexed_window)

    def test_indexed_measures_lookup(self, paras):
        rules = list(paras.ruleset(SETTING, paras.indexed_window))
        measured = paras.rule_measures(rules[:3], paras.indexed_window)
        for key in rules[:3]:
            assert measured[key] is not None

    def test_unknown_rule_measure_is_none_on_index(self, paras):
        ghost = ((98,), (99,))
        assert paras.rule_measures([ghost], paras.indexed_window)[ghost] is None


class TestGenericOperations:
    def test_trajectory_includes_anchor_measures(self, dctar):
        spec = PeriodSpec([0, 1])
        trajectories = dctar.trajectory(SETTING, 0, spec)
        for key, measures in trajectories.items():
            assert measures[0] is not None

    def test_compare_modes_nest(self, hmine, small_windows):
        loose = ParameterSetting(0.04, 0.25)
        tight = ParameterSetting(0.08, 0.25)
        spec = PeriodSpec(range(small_windows.window_count))
        single_first, single_second = hmine.compare(
            loose, tight, spec, MatchMode.SINGLE
        )
        exact_first, exact_second = hmine.compare(
            loose, tight, spec, MatchMode.EXACT
        )
        assert exact_first <= single_first
        assert exact_second <= single_second

    def test_compare_against_tara(self, hmine, small_kb, small_windows):
        from repro.baselines import rule_key
        from repro.core import CompareQuery, TaraExplorer

        loose = ParameterSetting(0.04, 0.25)
        tight = ParameterSetting(0.08, 0.4)
        spec = PeriodSpec(range(small_windows.window_count))
        explorer = TaraExplorer(small_kb)
        tara = explorer.execute(
            CompareQuery(first=loose, second=tight, spec=spec, mode=MatchMode.SINGLE)
        )
        tara_first = {rule_key(small_kb.catalog.get(r)) for r in tara.only_first}
        tara_second = {rule_key(small_kb.catalog.get(r)) for r in tara.only_second}
        base_first, base_second = hmine.compare(loose, tight, spec, MatchMode.SINGLE)
        assert base_first == tara_first
        assert base_second == tara_second


class TestCountRuleMeasures:
    def test_counts_against_manual(self, small_windows):
        transactions = small_windows.window(0)
        key = ((1,), (2,))
        result = count_rule_measures(transactions, [key])[key]
        n = len(transactions)
        antecedent_count = sum(1 for t in transactions if 1 in t.items)
        joint = sum(1 for t in transactions if {1, 2} <= set(t.items))
        if joint == 0:
            assert result is None
        else:
            assert result == (joint / n, joint / antecedent_count)

    def test_absent_rule_is_none(self, small_windows):
        key = ((998,), (999,))
        assert count_rule_measures(small_windows.window(0), [key])[key] is None

    def test_empty_transactions(self):
        key = ((1,), (2,))
        assert count_rule_measures([], [key])[key] is None
