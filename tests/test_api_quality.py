"""Library-wide API quality gates: documentation and export hygiene."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
]


@pytest.mark.parametrize("module_name", MODULES)
def test_every_module_has_a_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", MODULES)
def test_every_public_callable_is_documented(module_name):
    """Every public function/class defined in the package has a docstring."""
    module = importlib.import_module(module_name)
    undocumented = []
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(member) or inspect.isfunction(member)):
            continue
        if getattr(member, "__module__", None) != module_name:
            continue  # re-export; documented at its definition site
        if not (member.__doc__ and member.__doc__.strip()):
            undocumented.append(name)
    assert not undocumented, f"{module_name}: undocumented {undocumented}"


@pytest.mark.parametrize("module_name", MODULES)
def test_every_public_method_is_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for class_name, member in vars(module).items():
        if class_name.startswith("_") or not inspect.isclass(member):
            continue
        if getattr(member, "__module__", None) != module_name:
            continue
        for method_name, method in vars(member).items():
            if method_name.startswith("_"):
                continue
            if not (
                inspect.isfunction(method) or isinstance(method, property)
            ):
                continue
            target = method.fget if isinstance(method, property) else method
            if target is None or not (target.__doc__ and target.__doc__.strip()):
                undocumented.append(f"{class_name}.{method_name}")
    assert not undocumented, f"{module_name}: undocumented {undocumented}"


@pytest.mark.parametrize(
    "package_name",
    [
        "repro.common",
        "repro.core",
        "repro.data",
        "repro.datagen",
        "repro.maras",
        "repro.mining",
        "repro.baselines",
    ],
)
def test_all_exports_resolve(package_name):
    """Every name in a package's __all__ is actually importable."""
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", [])
    assert exported, f"{package_name} should define __all__"
    for name in exported:
        assert hasattr(package, name), f"{package_name}.{name} missing"


def test_version_is_pep440ish():
    parts = repro.__version__.split(".")
    assert len(parts) >= 2
    assert all(part.isdigit() for part in parts[:2])
