"""Transaction construction and containment."""

import pytest

from repro.common.errors import DataFormatError
from repro.data.transactions import Transaction


class TestCreate:
    def test_canonicalizes_items(self):
        transaction = Transaction.create([3, 1, 1], time=7)
        assert transaction.items == (1, 3)
        assert transaction.time == 7

    def test_empty_rejected(self):
        with pytest.raises(DataFormatError, match="at least one item"):
            Transaction.create([], time=0)

    @pytest.mark.parametrize("bad_time", [1.5, "3", None, True])
    def test_non_int_time_rejected(self, bad_time):
        with pytest.raises(DataFormatError):
            Transaction.create([1], time=bad_time)

    def test_negative_time_allowed(self):
        # The timeline is any linearly ordered int set; negatives are legal.
        assert Transaction.create([1], time=-5).time == -5

    def test_len_is_item_count(self):
        assert len(Transaction.create([4, 2, 9], time=0)) == 3

    def test_hashable_and_equal_by_value(self):
        a = Transaction.create([1, 2], 3)
        b = Transaction.create([2, 1], 3)
        assert a == b
        assert hash(a) == hash(b)


class TestContains:
    def test_subset_contained(self):
        transaction = Transaction.create([1, 2, 3], 0)
        assert transaction.contains((1, 3))
        assert transaction.contains(())

    def test_missing_item_not_contained(self):
        transaction = Transaction.create([1, 2, 3], 0)
        assert not transaction.contains((4,))
        assert not transaction.contains((1, 4))

    def test_larger_itemset_not_contained(self):
        transaction = Transaction.create([1], 0)
        assert not transaction.contains((1, 2))
