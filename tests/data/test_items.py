"""Item canonicalization, itemset algebra, and the vocabulary."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ValidationError
from repro.data.items import (
    ItemVocabulary,
    canonical_itemset,
    itemset_issubset,
    itemset_union,
)

item_sets = st.frozensets(st.integers(min_value=0, max_value=50), max_size=12)


class TestCanonicalItemset:
    def test_sorts_and_dedupes(self):
        assert canonical_itemset([3, 1, 3, 2]) == (1, 2, 3)

    def test_empty_allowed(self):
        assert canonical_itemset([]) == ()

    def test_accepts_any_iterable(self):
        assert canonical_itemset({5, 2}) == (2, 5)
        assert canonical_itemset(iter([9, 0])) == (0, 9)

    @pytest.mark.parametrize("bad", [[-1], [1.5], ["a"], [True]])
    def test_rejects_non_item_ids(self, bad):
        with pytest.raises(ValidationError):
            canonical_itemset(bad)

    @given(item_sets)
    def test_canonical_is_idempotent(self, items):
        once = canonical_itemset(items)
        assert canonical_itemset(once) == once

    @given(item_sets)
    def test_order_independent(self, items):
        forward = canonical_itemset(sorted(items))
        backward = canonical_itemset(sorted(items, reverse=True))
        assert forward == backward


class TestItemsetAlgebra:
    def test_union_merges_sorted(self):
        assert itemset_union((1, 3), (2, 3, 5)) == (1, 2, 3, 5)

    def test_union_with_empty(self):
        assert itemset_union((), (1, 2)) == (1, 2)
        assert itemset_union((1, 2), ()) == (1, 2)

    def test_issubset_basic(self):
        assert itemset_issubset((1, 3), (1, 2, 3))
        assert not itemset_issubset((1, 4), (1, 2, 3))

    def test_empty_is_subset_of_everything(self):
        assert itemset_issubset((), ())
        assert itemset_issubset((), (1,))

    def test_larger_never_subset_of_smaller(self):
        assert not itemset_issubset((1, 2), (1,))

    @given(item_sets, item_sets)
    def test_union_matches_set_union(self, left, right):
        expected = tuple(sorted(left | right))
        assert itemset_union(
            canonical_itemset(left), canonical_itemset(right)
        ) == expected

    @given(item_sets, item_sets)
    def test_issubset_matches_set_op(self, left, right):
        assert itemset_issubset(
            canonical_itemset(left), canonical_itemset(right)
        ) == (left <= right)


class TestItemVocabulary:
    def test_encode_assigns_dense_ids(self):
        vocab = ItemVocabulary()
        assert vocab.encode("milk") == 0
        assert vocab.encode("bread") == 1
        assert vocab.encode("milk") == 0  # idempotent
        assert len(vocab) == 2

    def test_constructor_preloads_names(self):
        vocab = ItemVocabulary(["a", "b"])
        assert vocab.id_of("b") == 1

    def test_id_of_unknown_raises(self):
        with pytest.raises(ValidationError, match="unknown item name"):
            ItemVocabulary().id_of("ghost")

    def test_name_of_roundtrip(self):
        vocab = ItemVocabulary(["x", "y"])
        assert vocab.name_of(vocab.id_of("y")) == "y"

    def test_name_of_out_of_range_raises(self):
        with pytest.raises(ValidationError, match="unknown item id"):
            ItemVocabulary(["x"]).name_of(5)

    def test_encode_many_returns_canonical(self):
        vocab = ItemVocabulary()
        assert vocab.encode_many(["c", "a", "c"]) == (0, 1)  # ids by first-seen

    def test_decode_preserves_order(self):
        vocab = ItemVocabulary(["a", "b", "c"])
        assert vocab.decode((2, 0)) == ("c", "a")

    def test_contains_and_iter(self):
        vocab = ItemVocabulary(["p", "q"])
        assert "p" in vocab
        assert "z" not in vocab
        assert list(vocab) == ["p", "q"]

    @pytest.mark.parametrize("bad", ["", None, 3])
    def test_rejects_bad_names(self, bad):
        with pytest.raises(ValidationError):
            ItemVocabulary().encode(bad)
