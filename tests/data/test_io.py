"""FIMI and report-TSV I/O roundtrips and error handling."""

import pytest

from repro.common.errors import DataFormatError
from repro.data.database import TransactionDatabase
from repro.data.io import read_fimi, read_reports, write_fimi, write_reports
from repro.data.items import ItemVocabulary
from repro.maras.reports import Report, ReportDatabase


@pytest.fixture
def db() -> TransactionDatabase:
    return TransactionDatabase.from_itemlists(
        [[3, 1], [2], [5, 0, 9]], times=[10, 20, 20]
    )


class TestFimiRoundtrip:
    def test_timed_roundtrip(self, db, tmp_path):
        path = tmp_path / "data.fimi"
        assert write_fimi(db, path) == 3
        restored = read_fimi(path)
        assert [(t.items, t.time) for t in restored] == [
            (t.items, t.time) for t in db
        ]

    def test_plain_roundtrip_gets_dense_clock(self, db, tmp_path):
        path = tmp_path / "plain.fimi"
        write_fimi(db, path, include_times=False)
        restored = read_fimi(path)
        assert [t.items for t in restored] == [t.items for t in db]
        assert [t.time for t in restored] == [0, 1, 2]

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.fimi"
        path.write_text("1 2\n\n3\n")
        assert len(read_fimi(path)) == 2

    def test_standard_fimi_file_readable(self, tmp_path):
        """A file in the exact format of fimi.uantwerpen.be downloads."""
        path = tmp_path / "retail.dat"
        path.write_text("0 1 2 3\n30 31 32\n33 34 35\n")
        restored = read_fimi(path)
        assert restored[0].items == (0, 1, 2, 3)


class TestFimiErrors:
    def test_mixed_formats_rejected(self, tmp_path):
        path = tmp_path / "mixed.fimi"
        path.write_text("1: 2 3\n4 5\n")
        with pytest.raises(DataFormatError, match="mixed"):
            read_fimi(path)

    def test_garbage_items_rejected(self, tmp_path):
        path = tmp_path / "bad.fimi"
        path.write_text("1 two 3\n")
        with pytest.raises(DataFormatError, match="malformed"):
            read_fimi(path)

    def test_empty_transaction_rejected(self, tmp_path):
        path = tmp_path / "empty_tx.fimi"
        path.write_text("5:\n")
        with pytest.raises(DataFormatError, match="empty transaction"):
            read_fimi(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.fimi"
        path.write_text("\n\n")
        with pytest.raises(DataFormatError, match="no transactions"):
            read_fimi(path)


@pytest.fixture
def reports() -> ReportDatabase:
    drug_vocab = ItemVocabulary(["aspirin", "warfarin"])
    adr_vocab = ItemVocabulary(["bleeding", "nausea"])
    return ReportDatabase(
        [
            Report.create([0, 1], [0], 1),
            Report.create([0], [1], 2),
        ],
        drug_vocabulary=drug_vocab,
        adr_vocabulary=adr_vocab,
    )


class TestReportRoundtrip:
    def test_roundtrip_preserves_content_by_name(self, reports, tmp_path):
        path = tmp_path / "reports.tsv"
        assert write_reports(reports, path) == 2
        restored = read_reports(path)
        assert len(restored) == 2
        # Names survive; ids may be re-assigned in first-seen order.
        first = restored.reports[0]
        names = {restored.drug_name(d) for d in first.drugs}
        assert names == {"aspirin", "warfarin"}
        assert restored.adr_name(first.adrs[0]) == "bleeding"

    def test_counts_survive_roundtrip(self, reports, tmp_path):
        path = tmp_path / "reports.tsv"
        write_reports(reports, path)
        restored = read_reports(path)
        aspirin = restored.drug_vocabulary.id_of("aspirin")
        assert restored.count([aspirin]) == 2

    def test_times_preserved(self, reports, tmp_path):
        path = tmp_path / "reports.tsv"
        write_reports(reports, path)
        restored = read_reports(path)
        assert [r.time for r in restored] == [1, 2]


class TestReportErrors:
    def test_wrong_field_count(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("1\taspirin\n")
        with pytest.raises(DataFormatError, match="3 tab-separated"):
            read_reports(path)

    def test_bad_timestamp(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("soon\taspirin\tnausea\n")
        with pytest.raises(DataFormatError, match="bad timestamp"):
            read_reports(path)

    def test_missing_side(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("1\taspirin\t\n")
        with pytest.raises(DataFormatError, match="needs drugs and ADRs"):
            read_reports(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.tsv"
        path.write_text("")
        with pytest.raises(DataFormatError, match="no reports"):
            read_reports(path)
