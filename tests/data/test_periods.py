"""Time periods, period specs, and the window-aligned period algebra."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import QueryError, ValidationError
from repro.data.periods import (
    PeriodSpec,
    TimePeriod,
    align_period_to_windows,
    coarsen,
    refine,
    windows_to_period,
)


class TestTimePeriod:
    def test_contains_endpoints(self):
        period = TimePeriod(5, 10)
        assert 5 in period and 10 in period
        assert 4 not in period and 11 not in period

    def test_length(self):
        assert TimePeriod(3, 3).length == 1
        assert TimePeriod(0, 9).length == 10

    def test_reversed_bounds_rejected(self):
        with pytest.raises(ValidationError):
            TimePeriod(5, 4)

    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ((0, 5), (5, 9), True),
            ((0, 4), (5, 9), False),
            ((0, 9), (3, 4), True),
        ],
    )
    def test_overlaps(self, a, b, expected):
        assert TimePeriod(*a).overlaps(TimePeriod(*b)) is expected

    def test_merge_overlapping(self):
        assert TimePeriod(0, 5).merge(TimePeriod(3, 9)) == TimePeriod(0, 9)

    def test_merge_adjacent(self):
        assert TimePeriod(0, 4).merge(TimePeriod(5, 9)) == TimePeriod(0, 9)

    def test_merge_disjoint_rejected(self):
        with pytest.raises(ValidationError):
            TimePeriod(0, 3).merge(TimePeriod(5, 9))


class TestPeriodSpec:
    def test_sorts_and_dedupes(self):
        assert PeriodSpec([3, 1, 3]).windows == (1, 3)

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            PeriodSpec([])

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            PeriodSpec([-1])

    def test_single_and_range_constructors(self):
        assert PeriodSpec.single(4).windows == (4,)
        assert PeriodSpec.window_range(2, 4).windows == (2, 3, 4)

    def test_window_range_rejects_reversed(self):
        with pytest.raises(ValidationError):
            PeriodSpec.window_range(4, 2)

    def test_latest(self):
        assert PeriodSpec.latest(10).windows == (9,)
        assert PeriodSpec.latest(10, span=3).windows == (7, 8, 9)

    def test_latest_bad_span(self):
        with pytest.raises(ValidationError):
            PeriodSpec.latest(3, span=4)

    def test_contiguity(self):
        assert PeriodSpec([2, 3, 4]).is_contiguous()
        assert not PeriodSpec([2, 4]).is_contiguous()

    def test_runs(self):
        assert PeriodSpec([0, 1, 4, 5, 9]).runs() == [(0, 1), (4, 5), (9, 9)]

    def test_union(self):
        assert PeriodSpec([1]).union(PeriodSpec([0, 1])).windows == (0, 1)

    def test_restrict_to_drops_out_of_range(self):
        assert PeriodSpec([0, 5, 9]).restrict_to(6).windows == (0, 5)

    def test_restrict_to_all_out_of_range_raises(self):
        with pytest.raises(QueryError):
            PeriodSpec([8, 9]).restrict_to(5)

    def test_equality_and_hash(self):
        assert PeriodSpec([1, 2]) == PeriodSpec([2, 1])
        assert hash(PeriodSpec([1, 2])) == hash(PeriodSpec([2, 1]))
        assert PeriodSpec([1]) != PeriodSpec([2])


class TestAlignment:
    def test_align_exact_windows(self):
        # window width 10: [0..9] is window 0, [10..19] window 1.
        assert align_period_to_windows(TimePeriod(0, 9), 10).windows == (0,)
        assert align_period_to_windows(TimePeriod(10, 19), 10).windows == (1,)

    def test_align_straddling_period(self):
        assert align_period_to_windows(TimePeriod(5, 25), 10).windows == (0, 1, 2)

    def test_align_with_origin(self):
        assert align_period_to_windows(
            TimePeriod(100, 119), 10, origin=100
        ).windows == (0, 1)

    def test_align_before_origin_rejected(self):
        with pytest.raises(QueryError):
            align_period_to_windows(TimePeriod(0, 5), 10, origin=50)

    def test_bad_width_rejected(self):
        with pytest.raises(ValidationError):
            align_period_to_windows(TimePeriod(0, 5), 0)

    def test_windows_to_period_inverse(self):
        spec = PeriodSpec.window_range(1, 2)
        assert windows_to_period(spec, 10) == TimePeriod(10, 29)

    @given(
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=1, max_value=20),
    )
    def test_alignment_covers_period(self, start, extra, width):
        """Every timestamp of the period falls inside the aligned windows."""
        period = TimePeriod(start, start + extra)
        spec = align_period_to_windows(period, width)
        covering = windows_to_period(spec, width)
        assert covering.start <= period.start
        assert covering.end >= period.end


class TestRollupAlgebra:
    def test_coarsen(self):
        assert coarsen(PeriodSpec([0, 1, 2, 5]), 2).windows == (0, 1, 2)

    def test_coarsen_bad_factor(self):
        with pytest.raises(ValidationError):
            coarsen(PeriodSpec([0]), 0)

    def test_refine(self):
        assert refine(PeriodSpec([1]), 3, window_count=10).windows == (3, 4, 5)

    def test_refine_clamps_to_window_count(self):
        assert refine(PeriodSpec([1]), 3, window_count=5).windows == (3, 4)

    def test_refine_fully_out_of_range_raises(self):
        with pytest.raises(QueryError):
            refine(PeriodSpec([5]), 3, window_count=5)

    @given(
        st.sets(st.integers(min_value=0, max_value=30), min_size=1),
        st.integers(min_value=1, max_value=5),
    )
    def test_refine_then_coarsen_is_identity(self, windows, factor):
        spec = PeriodSpec(windows)
        window_count = (max(windows) + 1) * factor
        refined = refine(spec, factor, window_count)
        assert coarsen(refined, factor) == spec
