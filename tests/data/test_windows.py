"""Tumbling-window partitioning of the evolving database."""

import pytest

from repro.common.errors import UnknownWindowError, ValidationError
from repro.data.database import TransactionDatabase
from repro.data.periods import PeriodSpec, TimePeriod
from repro.data.windows import WindowedDatabase


@pytest.fixture
def db() -> TransactionDatabase:
    # 10 transactions at times 0..9, each carrying its own time as an item.
    return TransactionDatabase.from_itemlists([[t] for t in range(10)])


class TestPartitionByTime:
    def test_windows_and_periods(self, db):
        windows = WindowedDatabase.partition_by_time(db, window_width=4)
        assert windows.window_count == 3
        assert windows.window_size(0) == 4
        assert windows.window_size(1) == 4
        assert windows.window_size(2) == 2
        assert windows.window_period(0) == TimePeriod(0, 3)
        assert windows.window_period(2) == TimePeriod(8, 11)

    def test_interior_empty_window_kept(self):
        database = TransactionDatabase.from_itemlists([[1], [2]], times=[0, 25])
        windows = WindowedDatabase.partition_by_time(database, window_width=10)
        assert windows.window_count == 3
        assert windows.window_size(1) == 0

    def test_bad_width_rejected(self, db):
        with pytest.raises(ValidationError):
            WindowedDatabase.partition_by_time(db, window_width=0)

    def test_empty_database_rejected(self):
        with pytest.raises(ValidationError):
            WindowedDatabase.partition_by_time(TransactionDatabase(), 5)

    def test_origin_shift(self):
        database = TransactionDatabase.from_itemlists([[1], [2]], times=[100, 105])
        windows = WindowedDatabase.partition_by_time(
            database, window_width=5, origin=100
        )
        assert windows.window_count == 2
        assert windows.window_period(0) == TimePeriod(100, 104)

    def test_data_before_origin_rejected(self, db):
        with pytest.raises(ValidationError):
            WindowedDatabase.partition_by_time(db, window_width=5, origin=5)


class TestPartitionByCount:
    def test_equal_batches(self, db):
        windows = WindowedDatabase.partition_by_count(db, 5)
        assert windows.window_count == 5
        assert all(windows.window_size(i) == 2 for i in range(5))

    def test_remainder_goes_to_last_batch(self, db):
        windows = WindowedDatabase.partition_by_count(db, 3)
        assert [windows.window_size(i) for i in range(3)] == [3, 3, 4]

    def test_periods_cover_batch_times(self, db):
        windows = WindowedDatabase.partition_by_count(db, 2)
        assert windows.window_period(0) == TimePeriod(0, 4)
        assert windows.window_period(1) == TimePeriod(5, 9)

    def test_too_many_batches_rejected(self, db):
        with pytest.raises(ValidationError):
            WindowedDatabase.partition_by_count(db, 11)

    def test_zero_batches_rejected(self, db):
        with pytest.raises(ValidationError):
            WindowedDatabase.partition_by_count(db, 0)


class TestAccessors:
    def test_out_of_range_window(self, db):
        windows = WindowedDatabase.partition_by_count(db, 2)
        with pytest.raises(UnknownWindowError):
            windows.window(2)
        with pytest.raises(UnknownWindowError):
            windows.window_size(-1)

    def test_all_windows_spec(self, db):
        windows = WindowedDatabase.partition_by_count(db, 4)
        assert windows.all_windows() == PeriodSpec([0, 1, 2, 3])

    def test_transactions_for_spec(self, db):
        windows = WindowedDatabase.partition_by_count(db, 5)
        transactions = windows.transactions_for(PeriodSpec([0, 4]))
        assert [t.time for t in transactions] == [0, 1, 8, 9]

    def test_total_size(self, db):
        windows = WindowedDatabase.partition_by_count(db, 5)
        assert windows.total_size(PeriodSpec([1, 2])) == 4

    def test_iteration_yields_all_windows(self, db):
        windows = WindowedDatabase.partition_by_count(db, 2)
        assert len(list(windows)) == 2

    def test_partition_preserves_every_transaction(self, db):
        windows = WindowedDatabase.partition_by_time(db, window_width=3)
        total = sum(windows.window_size(i) for i in range(windows.window_count))
        assert total == len(db)
