"""TransactionDatabase: the F(X, D, [t_i, t_j]) primitive and bookkeeping."""

import pytest

from repro.common.errors import DataFormatError, ValidationError
from repro.data.database import TransactionDatabase
from repro.data.periods import TimePeriod
from repro.data.transactions import Transaction


@pytest.fixture
def db() -> TransactionDatabase:
    return TransactionDatabase.from_itemlists(
        [[1, 2], [2, 3], [1, 2, 3], [3], [1]],
        times=[0, 1, 2, 5, 9],
    )


class TestConstruction:
    def test_from_itemlists_default_clock(self):
        database = TransactionDatabase.from_itemlists([[1], [2]])
        assert [t.time for t in database] == [0, 1]

    def test_from_itemlists_explicit_times(self, db):
        assert [t.time for t in db] == [0, 1, 2, 5, 9]

    def test_mismatched_times_rejected(self):
        with pytest.raises(DataFormatError):
            TransactionDatabase.from_itemlists([[1]], times=[0, 1])

    def test_constructor_sorts_by_time(self):
        database = TransactionDatabase(
            [Transaction.create([1], 5), Transaction.create([2], 1)]
        )
        assert [t.time for t in database] == [1, 5]

    def test_append_in_order(self, db):
        db2 = TransactionDatabase.from_itemlists([[1]], times=[3])
        db2.append(Transaction.create([2], 3))  # equal time allowed
        db2.append(Transaction.create([3], 4))
        assert len(db2) == 3

    def test_append_out_of_order_rejected(self, db):
        with pytest.raises(DataFormatError, match="out-of-order"):
            db.append(Transaction.create([1], 0))

    def test_extend(self):
        database = TransactionDatabase.from_itemlists([[1]], times=[0])
        database.extend([Transaction.create([2], 1), Transaction.create([3], 2)])
        assert len(database) == 3


class TestAccessors:
    def test_len_iter_getitem(self, db):
        assert len(db) == 5
        assert db[0].items == (1, 2)
        assert sum(1 for _ in db) == 5

    def test_time_span(self, db):
        assert db.time_span == TimePeriod(0, 9)

    def test_time_span_empty_raises(self):
        with pytest.raises(ValidationError):
            TransactionDatabase().time_span

    def test_unique_items(self, db):
        assert db.unique_items() == {1, 2, 3}

    def test_average_transaction_length(self, db):
        assert db.average_transaction_length() == pytest.approx(9 / 5)

    def test_average_length_empty(self):
        assert TransactionDatabase().average_transaction_length() == 0.0

    def test_item_frequencies(self, db):
        assert db.item_frequencies() == {1: 3, 2: 3, 3: 3}

    def test_item_frequencies_in_period(self, db):
        assert db.item_frequencies(TimePeriod(0, 1)) == {1: 1, 2: 2, 3: 1}


class TestSelection:
    def test_slice_by_period(self, db):
        assert len(db.slice(TimePeriod(0, 2))) == 3
        assert len(db.slice(TimePeriod(3, 4))) == 0
        assert len(db.slice(TimePeriod(5, 9))) == 2

    def test_count_empty_itemset_is_range_size(self, db):
        assert db.count((), TimePeriod(0, 9)) == 5
        assert db.count((), TimePeriod(0, 2)) == 3

    def test_count_itemset(self, db):
        assert db.count((1, 2), TimePeriod(0, 9)) == 2
        assert db.count((3,), TimePeriod(0, 9)) == 3
        assert db.count((1, 2, 3), TimePeriod(0, 1)) == 0

    def test_matching_returns_transactions(self, db):
        matched = db.matching((2, 3), TimePeriod(0, 9))
        assert [t.time for t in matched] == [1, 2]

    def test_support(self, db):
        assert db.support((3,), TimePeriod(0, 9)) == pytest.approx(3 / 5)
        assert db.support((1,), TimePeriod(5, 9)) == pytest.approx(1 / 2)

    def test_support_of_empty_range_is_zero(self, db):
        assert db.support((1,), TimePeriod(100, 200)) == 0.0

    def test_count_accepts_unsorted_itemset(self, db):
        assert db.count((2, 1), TimePeriod(0, 9)) == 2
