"""The segmented v2 container: writer/reader round-trips and corruption.

The adversarial half of this file is the storage layer's safety
contract: a truncated or bit-flipped container must either load with
fully consistent data or raise :class:`DataFormatError` — never a bare
``struct.error`` / ``IndexError`` crash, and never a silent partial
load.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
import pytest

from repro.common.errors import (
    CodecError,
    DataFormatError,
    UnknownRuleError,
    UnknownWindowError,
    ValidationError,
)
from repro.core.storage import (
    MAGIC,
    ShardedSeriesSource,
    encode_series,
    write_container,
)


def write_sample(path, series_by_rule, window_entries, shard_size=2):
    """Write a container from ``{rule_id: [entry, ...]}`` decoded series."""
    return write_container(
        path,
        meta={"counts": {"rules": len(series_by_rule)}},
        window_entries=window_entries,
        series=[
            (rule_id, encode_series(entries))
            for rule_id, entries in series_by_rule.items()
        ],
        shard_size=shard_size,
    )


SAMPLE_SERIES = {
    0: [(0, 3, 5, 4), (2, 1, 1, 1)],
    3: [(1, 2, 2, 9)],
    7: [(0, 1, 6, 1), (1, 4, 4, 5), (2, 2, 3, 2)],
    8: [],
    100: [(2, 7, 9, 8)],
}

SAMPLE_WINDOWS = [
    [(0, 3, 5, 4), (7, 1, 6, 1)],
    [(3, 2, 2, 9), (7, 4, 4, 5)],
    [(0, 1, 1, 1), (7, 2, 3, 2), (100, 7, 9, 8)],
]


@pytest.fixture
def sample_path(tmp_path):
    path = tmp_path / "kb.tara2"
    write_sample(path, SAMPLE_SERIES, SAMPLE_WINDOWS)
    return path


class TestRoundTrip:
    def test_series_decode_matches_input(self, sample_path):
        with ShardedSeriesSource(sample_path) as source:
            for rule_id, entries in SAMPLE_SERIES.items():
                assert source.series_entries(rule_id) == entries

    def test_encoded_bytes_identical(self, sample_path):
        with ShardedSeriesSource(sample_path) as source:
            for rule_id, entries in SAMPLE_SERIES.items():
                assert source.encoded_series(rule_id) == encode_series(entries)

    def test_window_blocks_roundtrip(self, sample_path):
        with ShardedSeriesSource(sample_path) as source:
            assert source.window_count == len(SAMPLE_WINDOWS)
            for window, expected in enumerate(SAMPLE_WINDOWS):
                assert source.window_entries(window) == expected

    def test_membership_and_iteration(self, sample_path):
        with ShardedSeriesSource(sample_path) as source:
            assert len(source) == len(SAMPLE_SERIES)
            assert list(source.rule_ids()) == sorted(SAMPLE_SERIES)
            assert 7 in source
            assert 1 not in source
            assert -3 not in source
            assert "7" not in source

    def test_unknown_rule_and_window_raise(self, sample_path):
        with ShardedSeriesSource(sample_path) as source:
            with pytest.raises(UnknownRuleError):
                source.encoded_series(4)
            with pytest.raises(UnknownRuleError):
                source.series_entries(4)
            with pytest.raises(UnknownWindowError):
                source.window_entries(3)
            with pytest.raises(UnknownWindowError):
                source.window_entries(-1)

    def test_single_rule_shards(self, tmp_path):
        path = tmp_path / "kb.tara2"
        summary = write_sample(
            path, SAMPLE_SERIES, SAMPLE_WINDOWS, shard_size=1
        )
        assert summary["shard_count"] == len(SAMPLE_SERIES)
        with ShardedSeriesSource(path) as source:
            for rule_id, entries in SAMPLE_SERIES.items():
                assert source.series_entries(rule_id) == entries

    def test_empty_container(self, tmp_path):
        path = tmp_path / "kb.tara2"
        write_sample(path, {}, [])
        with ShardedSeriesSource(path) as source:
            assert len(source) == 0
            assert list(source.rule_ids()) == []
            assert source.window_count == 0

    def test_shards_decode_lazily(self, sample_path):
        with ShardedSeriesSource(sample_path) as source:
            assert source.counters()["shards_decoded"] == 0
            source.series_entries(0)
            assert source.counters()["shards_decoded"] == 1

    def test_budget_bounds_decoded_cache(self, sample_path):
        # A budget big enough for roughly one decoded series forces
        # eviction traffic while every answer stays correct.
        with ShardedSeriesSource(sample_path, memory_budget=400) as source:
            for _ in range(3):
                for rule_id, entries in SAMPLE_SERIES.items():
                    assert source.series_entries(rule_id) == entries
            counters = source.counters()
            assert counters["cache_evictions"] > 0
            assert counters["cache_current_bytes"] <= 400

    def test_close_is_idempotent(self, sample_path):
        source = ShardedSeriesSource(sample_path)
        source.series_entries(0)
        source.close()
        source.close()

    def test_deterministic_writes(self, tmp_path):
        first = tmp_path / "a.tara2"
        second = tmp_path / "b.tara2"
        write_sample(first, SAMPLE_SERIES, SAMPLE_WINDOWS)
        write_sample(second, SAMPLE_SERIES, SAMPLE_WINDOWS)
        assert first.read_bytes() == second.read_bytes()


class TestWriterValidation:
    def test_rejects_nonpositive_shard_size(self, tmp_path):
        with pytest.raises(ValidationError):
            write_sample(tmp_path / "x", SAMPLE_SERIES, [], shard_size=0)

    def test_rejects_duplicate_rule_ids(self, tmp_path):
        with pytest.raises(ValidationError):
            write_container(
                tmp_path / "x",
                meta={},
                window_entries=[],
                series=[(1, b""), (1, b"")],
            )

    def test_rejects_negative_rule_ids(self, tmp_path):
        with pytest.raises(ValidationError):
            write_container(
                tmp_path / "x", meta={}, window_entries=[], series=[(-1, b"")]
            )

    def test_rejects_unsorted_window_entries(self, tmp_path):
        with pytest.raises(ValidationError):
            write_container(
                tmp_path / "x",
                meta={},
                window_entries=[[(5, 1, 1, 1), (2, 1, 1, 1)]],
                series=[],
            )

    def test_rejects_margins_below_rule_count(self, tmp_path):
        with pytest.raises(ValidationError):
            write_container(
                tmp_path / "x",
                meta={},
                window_entries=[[(0, 5, 3, 5)]],
                series=[],
            )


class TestCorruption:
    def test_not_a_container(self, tmp_path):
        path = tmp_path / "garbage"
        path.write_bytes(b"this is not a container at all")
        with pytest.raises(DataFormatError):
            ShardedSeriesSource(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty"
        path.write_bytes(b"")
        with pytest.raises(DataFormatError):
            ShardedSeriesSource(path)

    def test_magic_alone(self, tmp_path):
        path = tmp_path / "stub"
        path.write_bytes(MAGIC)
        with pytest.raises(DataFormatError):
            ShardedSeriesSource(path)

    def test_every_truncation_raises_data_format_error(self, sample_path):
        # Directory spans are validated eagerly against the file size,
        # so *every* proper prefix must be rejected at open — no
        # truncation may survive into a partially loaded container.
        payload = sample_path.read_bytes()
        truncated_path = sample_path.parent / "truncated"
        for length in range(len(payload)):
            truncated_path.write_bytes(payload[:length])
            with pytest.raises(DataFormatError):
                ShardedSeriesSource(truncated_path)

    def test_every_byte_flip_fails_loudly_or_stays_consistent(
        self, sample_path
    ):
        # Bit flips anywhere — header, meta JSON, directories, blocks —
        # must either surface as DataFormatError or leave a container
        # that reads back fully (a flip inside a count payload can be
        # indistinguishable from valid data; crashing with IndexError /
        # struct.error / KeyError is the bug this guards against).
        payload = bytearray(sample_path.read_bytes())
        flipped_path = sample_path.parent / "flipped"
        for position in range(len(payload)):
            corrupted = bytearray(payload)
            corrupted[position] ^= 0xFF
            flipped_path.write_bytes(bytes(corrupted))
            try:
                with ShardedSeriesSource(flipped_path) as source:
                    for rule_id in list(source.rule_ids()):
                        source.series_entries(rule_id)
                    for window in range(source.window_count):
                        source.window_entries(window)
            except DataFormatError:
                continue

    def test_corrupt_cause_is_chained(self, sample_path):
        # Flip a byte inside a series blob so the varint decoder chokes:
        # the reader must wrap the CodecError, preserving it as __cause__
        # for post-mortems (rule R003).
        payload = bytearray(sample_path.read_bytes())
        with ShardedSeriesSource(sample_path) as source:
            blob = source.encoded_series(7)
        position = payload.rindex(blob)
        # A lone continuation byte at the end of the blob truncates the
        # final varint.
        payload[position + len(blob) - 1] |= 0x80
        corrupt_path = sample_path.parent / "chained"
        corrupt_path.write_bytes(bytes(payload))
        with ShardedSeriesSource(corrupt_path) as source:
            with pytest.raises(DataFormatError) as excinfo:
                source.series_entries(7)
        assert isinstance(excinfo.value.__cause__, CodecError)


# ----------------------------------------------------------------------
# property-based round-trips over adversarial series shapes
# ----------------------------------------------------------------------
def _series_strategy():
    """Decoded series with window gaps and arbitrary valid counts."""

    def to_entries(raw):
        entries = []
        window = -1
        for gap, rule_count, extra in raw:
            window += 1 + gap  # arbitrary gaps, strictly increasing
            entries.append(
                (window, rule_count, rule_count + extra, rule_count + gap)
            )
        return entries

    return st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=9),
            st.integers(min_value=0, max_value=300),
            st.integers(min_value=0, max_value=300),
        ),
        max_size=8,
    ).map(to_entries)


container_strategy = st.dictionaries(
    st.integers(min_value=0, max_value=10_000),
    _series_strategy(),
    max_size=12,
)


class TestContainerProperties:
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(series_by_rule=container_strategy, shard_size=st.integers(1, 7))
    def test_roundtrip_is_exact(self, tmp_path, series_by_rule, shard_size):
        path = tmp_path / "prop.tara2"
        write_sample(path, series_by_rule, [], shard_size=shard_size)
        with ShardedSeriesSource(path) as source:
            assert list(source.rule_ids()) == sorted(series_by_rule)
            for rule_id, entries in series_by_rule.items():
                assert source.series_entries(rule_id) == entries
                assert source.encoded_series(rule_id) == encode_series(entries)

    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(series_by_rule=container_strategy)
    def test_writes_are_canonical(self, tmp_path, series_by_rule):
        # Same logical content in any iteration order -> identical bytes.
        first = tmp_path / "a.tara2"
        second = tmp_path / "b.tara2"
        write_sample(first, series_by_rule, [])
        write_sample(
            second,
            dict(sorted(series_by_rule.items(), reverse=True)),
            [],
        )
        assert first.read_bytes() == second.read_bytes()
