"""The byte-budgeted LRU behind the lazy read path."""

import pytest

from repro.common.errors import ValidationError
from repro.core.storage import ByteBudgetLRU, series_cost
from repro.core.storage.lru import DECODED_ENTRY_COST, SERIES_BASE_COST


class TestSeriesCost:
    def test_linear_in_entry_count(self):
        assert series_cost(0) == SERIES_BASE_COST
        assert series_cost(7) == SERIES_BASE_COST + 7 * DECODED_ENTRY_COST

    def test_deterministic(self):
        # Budgets must mean the same thing on every run: the charge is a
        # model, not a live measurement.
        assert series_cost(3) == series_cost(3)


class TestByteBudgetLRU:
    def test_get_put_roundtrip(self):
        cache = ByteBudgetLRU(budget_bytes=1000)
        cache.put("a", [1, 2, 3], 100)
        assert cache.get("a") == [1, 2, 3]
        assert cache.get("b") is None

    def test_eviction_is_lru_ordered(self):
        cache = ByteBudgetLRU(budget_bytes=300)
        cache.put("a", "A", 100)
        cache.put("b", "B", 100)
        cache.put("c", "C", 100)
        # Touch "a" so "b" becomes least recently used.
        assert cache.get("a") == "A"
        cache.put("d", "D", 100)
        assert cache.get("b") is None
        assert cache.get("a") == "A"
        assert cache.get("c") == "C"
        assert cache.get("d") == "D"

    def test_evicts_until_within_budget(self):
        cache = ByteBudgetLRU(budget_bytes=250)
        cache.put("a", "A", 100)
        cache.put("b", "B", 100)
        cache.put("big", "BIG", 200)
        # 200 fits only alone: both older entries must go.
        assert len(cache) == 1
        assert cache.get("big") == "BIG"
        assert cache.counters()["evictions"] == 2

    def test_oversize_entry_rejected_not_cached(self):
        cache = ByteBudgetLRU(budget_bytes=100)
        cache.put("a", "A", 60)
        cache.put("huge", "H", 101)
        # The oversize value is dropped; the existing entry survives.
        assert cache.get("huge") is None
        assert cache.get("a") == "A"
        counters = cache.counters()
        assert counters["rejected"] == 1
        assert counters["evictions"] == 0

    def test_replace_recharges_cost(self):
        cache = ByteBudgetLRU(budget_bytes=1000)
        cache.put("a", "small", 100)
        cache.put("a", "bigger", 300)
        counters = cache.counters()
        assert counters["entries"] == 1
        assert counters["current_bytes"] == 300
        assert cache.get("a") == "bigger"

    def test_counters_track_hits_misses_and_peak(self):
        cache = ByteBudgetLRU(budget_bytes=500)
        cache.put("a", "A", 200)
        cache.put("b", "B", 200)
        cache.get("a")
        cache.get("a")
        cache.get("missing")
        counters = cache.counters()
        assert counters["hits"] == 2
        assert counters["misses"] == 1
        assert counters["current_bytes"] == 400
        assert counters["peak_bytes"] == 400
        assert counters["budget_bytes"] == 500

    def test_unbounded_cache_never_evicts(self):
        cache = ByteBudgetLRU(budget_bytes=None)
        for index in range(100):
            cache.put(index, index, 10**6)
        assert len(cache) == 100
        assert cache.counters()["evictions"] == 0

    def test_clear_preserves_counters(self):
        cache = ByteBudgetLRU(budget_bytes=500)
        cache.put("a", "A", 100)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        counters = cache.counters()
        assert counters["current_bytes"] == 0
        assert counters["hits"] == 1
        # Peak survives the clear: it is a lifetime high-water mark.
        assert counters["peak_bytes"] == 100

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ValidationError):
            ByteBudgetLRU(budget_bytes=0)
        with pytest.raises(ValidationError):
            ByteBudgetLRU(budget_bytes=-5)

    def test_negative_cost_rejected(self):
        cache = ByteBudgetLRU(budget_bytes=100)
        with pytest.raises(ValidationError):
            cache.put("a", "A", -1)
