"""Count-native EPS construction ≡ the Fraction-keyed reference path.

The offline build groups locations by raw integer count pairs and
resolves query settings through float-bisected axes
(:func:`repro.core.locations.group_by_counts`,
:func:`repro.core.locations.count_axes`,
:meth:`repro.core.regions.WindowSlice.from_count_groups`,
:func:`repro.core.regions._axis_rank`).  These properties pin the
equivalence with the exact ``Fraction``-keyed reference implementations
they replaced, including the adversarial boundary cases: exact axis
hits, near-collision rationals that agree in float space, and
generation-threshold edges.
"""

from bisect import bisect_left
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ValidationError
from repro.core.locations import (
    count_axes,
    group_by_counts,
    group_by_location,
    location_of,
)
from repro.core.regions import ParameterSetting, WindowSlice, _axis_rank
from repro.mining.rules import Rule, ScoredRule

RULE = Rule((1,), (2,))


def scored(rule_id, rule_count, antecedent_count, window_size):
    return ScoredRule(
        rule_id=rule_id,
        rule=RULE,
        support=rule_count / window_size,
        confidence=rule_count / antecedent_count,
        rule_count=rule_count,
        antecedent_count=antecedent_count,
        window_size=window_size,
    )


@st.composite
def scored_window(draw):
    """A window of random scored rules sharing one window size."""
    window_size = draw(st.integers(min_value=1, max_value=400))
    count_pairs = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=window_size),
                st.integers(min_value=1, max_value=window_size),
            ).filter(lambda pair: pair[0] <= pair[1]),
            min_size=0,
            max_size=60,
        )
    )
    return [
        scored(rule_id, rule_count, antecedent_count, window_size)
        for rule_id, (rule_count, antecedent_count) in enumerate(count_pairs)
    ]


class TestGroupingEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(scored_window())
    def test_count_grouping_matches_fraction_grouping(self, rules):
        """Property (a): integer count-pair grouping ≡ group_by_location."""
        by_location = group_by_location(rules)
        by_counts = group_by_counts(rules)
        assert len(by_counts) == len(by_location)
        if rules:
            window_size = rules[0].window_size
            translated = {
                (Fraction(rule_count, window_size), Fraction(p, q)): rule_ids
                for (rule_count, p, q), rule_ids in by_counts.items()
            }
            assert translated == {
                (location.support, location.confidence): rule_ids
                for location, rule_ids in by_location.items()
            }

    @settings(max_examples=100, deadline=None)
    @given(scored_window())
    def test_count_native_slice_equals_reference_slice(self, rules):
        """The hot-path constructor produces an identical WindowSlice."""
        setting = ParameterSetting(0.0, 0.0)
        reference = WindowSlice(
            3, group_by_location(rules), generation_setting=setting
        )
        window_size = rules[0].window_size if rules else 1
        native = WindowSlice.from_count_groups(
            3, window_size, group_by_counts(rules), generation_setting=setting
        )
        assert native.supports == reference.supports
        assert native.confidences == reference.confidences
        assert native.location_count == reference.location_count
        assert native.rule_count == reference.rule_count
        assert sorted(native.locations()) == sorted(reference.locations())

    def test_zero_count_rules_share_one_confidence(self):
        """0/3 and 0/7 are the same exact confidence (key normalizes)."""
        rules = [
            scored(0, rule_count=0, antecedent_count=3, window_size=10),
            scored(1, rule_count=0, antecedent_count=7, window_size=10),
        ]
        assert group_by_counts(rules) == {(0, 0, 1): [0, 1]}
        assert len(group_by_location(rules)) == 1

    def test_empty_window_rejected(self):
        with pytest.raises(ValidationError):
            group_by_counts(
                [ScoredRule(0, RULE, 0.0, 0.0, 0, 1, 0)]
            )
        with pytest.raises(ValidationError):
            location_of(ScoredRule(0, RULE, 0.0, 0.0, 0, 1, 0))

    def test_out_of_range_counts_rejected_at_axis_boundary(self):
        with pytest.raises(ValidationError):
            count_axes(5, {(7, 7, 10)})  # support 7/5 > 1
        with pytest.raises(ValidationError):
            count_axes(5, {(2, 3, 2)})  # confidence 3/2 > 1


class TestCountAxes:
    @settings(max_examples=200, deadline=None)
    @given(scored_window())
    def test_axes_and_ranks_match_reference(self, rules):
        """count_axes reproduces distinct_axes order with correct ranks."""
        groups = group_by_counts(rules)
        window_size = rules[0].window_size if rules else 1
        supports, confidences, support_rank, confidence_rank = count_axes(
            window_size, groups
        )
        locations = [location_of(s) for s in rules]
        assert supports == sorted({loc.support for loc in locations})
        assert confidences == sorted({loc.confidence for loc in locations})
        for rule_count, rank in support_rank.items():
            assert supports[rank] == Fraction(rule_count, window_size)
        for (p, q), rank in confidence_rank.items():
            assert confidences[rank] == Fraction(p, q)

    def test_near_collision_rationals_stay_distinct(self):
        """Pairs that collide in float space keep their exact order."""
        # 1/3 and 333333333333/10**12 round to the same float but are
        # distinct rationals; 333333333333/10**12 < 1/3 exactly.
        groups = {
            (1, 1, 3),
            (2, 333333333333, 10**12),
            (3, 333333333334, 10**12),
        }
        _, confidences, _, confidence_rank = count_axes(10, groups)
        assert confidences == sorted(confidences)
        assert len(confidences) == 3
        assert confidence_rank[(333333333333, 10**12)] == 0
        assert confidence_rank[(1, 3)] == 1
        assert confidence_rank[(333333333334, 10**12)] == 2


def reference_rank(axis, value):
    """The old Fraction-based rank: the exact semantics _axis_rank keeps."""
    return bisect_left(axis, Fraction(value).limit_denominator(10**12))


axis_fraction = st.fractions(
    min_value=0, max_value=1, max_denominator=10**13
)


class TestAxisRank:
    @settings(max_examples=300, deadline=None)
    @given(
        st.lists(axis_fraction, min_size=0, max_size=40, unique=True),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_random_queries_match_fraction_bisect(self, values, query):
        """Property (b): float-bisect rank ≡ old Fraction-based rank."""
        axis = sorted(values)
        axis_float = [float(v) for v in axis]
        assert _axis_rank(axis, axis_float, query) == reference_rank(axis, query)

    @settings(max_examples=200, deadline=None)
    @given(st.lists(axis_fraction, min_size=1, max_size=40, unique=True), st.data())
    def test_exact_boundary_hits(self, values, data):
        """Queries sitting exactly on a float axis value resolve exactly."""
        axis = sorted(values)
        axis_float = [float(v) for v in axis]
        query = data.draw(st.sampled_from(axis_float))
        assert _axis_rank(axis, axis_float, query) == reference_rank(axis, query)

    def test_near_collision_axis_values(self):
        """Adjacent rationals closer than float resolution still rank right."""
        axis = sorted(
            [
                Fraction(333333333333, 10**12),
                Fraction(1, 3),
                Fraction(333333333334, 10**12),
            ]
        )
        axis_float = [float(v) for v in axis]
        for query in (1 / 3, 0.333333333333, 0.333333333334, 0.0, 1.0):
            assert _axis_rank(axis, axis_float, query) == reference_rank(
                axis, query
            )

    def test_generation_threshold_edges(self):
        """Queries at/just past the generation thresholds stay consistent."""
        axis = [Fraction(1, 100), Fraction(3, 100), Fraction(30, 100)]
        axis_float = [float(v) for v in axis]
        for query in (0.01, 0.3, 0.010000000000000002, 0.29999999999999993):
            assert _axis_rank(axis, axis_float, query) == reference_rank(
                axis, query
            )

    @settings(max_examples=200, deadline=None)
    @given(scored_window(), st.floats(0.0, 1.0), st.floats(0.0, 1.0))
    def test_cut_ranks_match_old_semantics_end_to_end(self, rules, supp, conf):
        """WindowSlice._cut_ranks ≡ the old per-query Fraction bisects."""
        setting = ParameterSetting(0.0, 0.0)
        window_size = rules[0].window_size if rules else 1
        window_slice = WindowSlice.from_count_groups(
            0, window_size, group_by_counts(rules), generation_setting=setting
        )
        query = ParameterSetting(supp, conf)
        si, ci = window_slice.region_ranks(query)
        assert si == reference_rank(window_slice.supports, supp)
        assert ci == reference_rank(window_slice.confidences, conf)
