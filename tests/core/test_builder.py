"""Offline knowledge-base construction."""

import pytest

from repro.common.errors import UnknownWindowError, ValidationError
from repro.core.builder import (
    PHASE_ARCHIVE,
    PHASE_EPS,
    PHASE_ITEMSETS,
    PHASE_RULES,
    GenerationConfig,
    TaraBuilder,
    build_knowledge_base,
)
from repro.data.periods import PeriodSpec
from repro.mining.apriori import mine_apriori
from repro.mining.rules import derive_rules


class TestGenerationConfig:
    def test_valid(self):
        config = GenerationConfig(0.01, 0.1)
        assert config.miner == "vertical"
        assert config.setting.min_support == 0.01

    def test_unknown_miner_rejected(self):
        with pytest.raises(ValidationError, match="unknown miner"):
            GenerationConfig(0.01, 0.1, miner="magic")

    def test_bad_threshold_rejected(self):
        with pytest.raises(Exception):
            GenerationConfig(-0.1, 0.1)

    @pytest.mark.parametrize(
        "miner", ["apriori", "eclat", "fpgrowth", "hmine", "vertical"]
    )
    def test_all_miners_accepted(self, miner):
        assert GenerationConfig(0.01, 0.1, miner=miner).miner == miner


class TestBuild:
    def test_window_count_and_sizes(self, small_windows, small_kb):
        assert small_kb.window_count == small_windows.window_count
        assert small_kb.window_sizes == [
            small_windows.window_size(i)
            for i in range(small_windows.window_count)
        ]

    def test_archive_matches_direct_mining(self, small_windows, small_kb):
        """Every archived (rule, window) entry reproduces direct counts."""
        config = small_kb.config
        window = 2
        scored = derive_rules(
            mine_apriori(small_windows.window(window), config.min_support),
            config.min_confidence,
        )
        for s in scored:
            rule_id = small_kb.catalog.find(s.rule.antecedent, s.rule.consequent)
            assert rule_id is not None
            measure = small_kb.archive.measure_at(rule_id, window)
            assert measure is not None
            assert measure.rule_count == s.rule_count
            assert measure.antecedent_count == s.antecedent_count

    def test_rules_in_window_matches_slice(self, small_kb):
        for window in range(small_kb.window_count):
            via_slice = small_kb.slice(window).collect(small_kb.config.setting)
            assert via_slice == small_kb.rules_in_window[window]

    def test_timer_has_all_four_phases(self, small_kb):
        breakdown = small_kb.timer.breakdown()
        for phase in (PHASE_ITEMSETS, PHASE_RULES, PHASE_ARCHIVE, PHASE_EPS):
            assert phase in breakdown
            assert breakdown[phase] > 0.0
        assert small_kb.timer.counts[PHASE_ITEMSETS] == small_kb.window_count

    def test_slice_out_of_range(self, small_kb):
        with pytest.raises(UnknownWindowError):
            small_kb.slice(small_kb.window_count)

    def test_candidate_rules_union(self, small_kb):
        all_windows = small_kb.candidate_rules(small_kb.all_windows())
        single = small_kb.candidate_rules(PeriodSpec([0]))
        assert set(single) <= set(all_windows)
        assert all_windows == sorted(set(all_windows))

    def test_candidate_rules_unknown_window(self, small_kb):
        with pytest.raises(UnknownWindowError):
            small_kb.candidate_rules(PeriodSpec([99]))

    def test_archive_sealed_after_build(self, small_kb):
        # Sealed archive still serves reads.
        some_rule = next(iter(small_kb.archive.rule_ids()))
        assert small_kb.archive.series(some_rule)


class TestMinerEquivalence:
    def test_all_miners_build_identical_knowledge(self, small_windows):
        """The builder's miner knob must not change the knowledge content."""
        references = None
        for miner in ("apriori", "eclat", "fpgrowth", "hmine", "vertical"):
            config = GenerationConfig(0.03, 0.2, miner=miner)
            kb = build_knowledge_base(small_windows, config)
            content = [
                sorted(
                    (kb.catalog.get(rid).antecedent, kb.catalog.get(rid).consequent)
                    for rid in kb.rules_in_window[w]
                )
                for w in range(kb.window_count)
            ]
            if references is None:
                references = content
            else:
                assert content == references, miner

    def test_all_miners_build_bit_identical_knowledge(self, small_windows):
        """Stronger: rule ids, archive bytes, and EPS axes are identical
        whichever miner ran — the cross-miner fingerprint gate of
        ``repro bench``, pinned here on the small fixture."""
        from repro.bench.offline import knowledge_base_fingerprint

        fingerprints = {
            miner: knowledge_base_fingerprint(
                build_knowledge_base(
                    small_windows, GenerationConfig(0.03, 0.2, miner=miner)
                )
            )
            for miner in ("apriori", "eclat", "fpgrowth", "hmine", "vertical")
        }
        assert len(set(fingerprints.values())) == 1, fingerprints


class TestIncrementalEntryPoint:
    def test_add_window_grows_kb(self, small_windows):
        config = GenerationConfig(0.02, 0.1)
        builder = TaraBuilder(config)
        kb = build_knowledge_base(small_windows, config)
        partial = TaraBuilder(config).build(small_windows)
        assert partial.window_count == kb.window_count

    def test_item_index_only_when_requested(self, small_windows):
        config = GenerationConfig(0.05, 0.2, build_item_index=False)
        kb = build_knowledge_base(small_windows, config)
        assert not kb.slice(0).has_item_index
        config2 = GenerationConfig(0.05, 0.2, build_item_index=True)
        kb2 = build_knowledge_base(small_windows, config2)
        assert kb2.slice(0).has_item_index

    def test_max_itemset_size_respected(self, small_windows):
        config = GenerationConfig(0.02, 0.0, max_itemset_size=2)
        kb = build_knowledge_base(small_windows, config)
        for rule in kb.catalog:
            assert len(rule.items) <= 2
