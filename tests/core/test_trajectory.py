"""Trajectory summaries: coverage, stability, std, trend."""

import pytest

from repro.common.errors import ValidationError
from repro.core.archive import WindowMeasure
from repro.core.trajectory import summarize_trajectory


def measure(window, rule_count, antecedent_count, window_size=100):
    return WindowMeasure(
        window=window,
        rule_count=rule_count,
        antecedent_count=antecedent_count,
        window_size=window_size,
    )


class TestCoverage:
    def test_full_coverage(self):
        summary = summarize_trajectory(
            0, [measure(0, 10, 20), measure(1, 10, 20)]
        )
        assert summary.coverage == 1.0
        assert summary.is_persistent

    def test_partial_coverage(self):
        summary = summarize_trajectory(0, [measure(0, 10, 20), None, None])
        assert summary.coverage == pytest.approx(1 / 3)
        assert not summary.is_persistent

    def test_absent_everywhere(self):
        summary = summarize_trajectory(0, [None, None])
        assert summary.coverage == 0.0
        assert summary.mean_support == 0.0
        assert summary.stability == 0.0

    def test_empty_window_list_rejected(self):
        with pytest.raises(ValidationError):
            summarize_trajectory(0, [])


class TestStability:
    def test_constant_confidence_is_perfectly_stable(self):
        measures = [measure(w, 10, 20) for w in range(4)]
        summary = summarize_trajectory(0, measures)
        assert summary.stability == 1.0
        assert summary.confidence_std == 0.0

    def test_fluctuating_confidence_less_stable(self):
        stable = summarize_trajectory(0, [measure(w, 10, 20) for w in range(4)])
        wobbly = summarize_trajectory(
            1,
            [
                measure(0, 10, 20),   # conf 0.5
                measure(1, 18, 20),   # conf 0.9
                measure(2, 2, 20),    # conf 0.1
                measure(3, 10, 20),   # conf 0.5
            ],
        )
        assert wobbly.stability < stable.stability
        assert wobbly.confidence_std > 0

    def test_stability_in_unit_interval(self):
        summary = summarize_trajectory(
            0, [measure(0, 1, 20), measure(1, 19, 20)]
        )
        assert 0 < summary.stability <= 1


class TestMeansAndStd:
    def test_mean_values(self):
        summary = summarize_trajectory(
            0, [measure(0, 10, 20), measure(1, 30, 40)]
        )
        assert summary.mean_support == pytest.approx((0.1 + 0.3) / 2)
        assert summary.mean_confidence == pytest.approx((0.5 + 0.75) / 2)

    def test_std_ignores_absent_windows(self):
        with_gap = summarize_trajectory(
            0, [measure(0, 10, 20), None, measure(2, 10, 20)]
        )
        assert with_gap.confidence_std == 0.0
        assert with_gap.mean_confidence == pytest.approx(0.5)


class TestTrend:
    def test_rising_confidence_positive_trend(self):
        measures = [measure(w, 10 + 5 * w, 40) for w in range(4)]
        assert summarize_trajectory(0, measures).trend > 0

    def test_falling_confidence_negative_trend(self):
        measures = [measure(w, 30 - 5 * w, 40) for w in range(4)]
        assert summarize_trajectory(0, measures).trend < 0

    def test_constant_zero_trend(self):
        measures = [measure(w, 10, 40) for w in range(4)]
        assert summarize_trajectory(0, measures).trend == 0.0

    def test_linear_slope_exact(self):
        # Confidence = 0.25, 0.5, 0.75 over windows 0,1,2: slope 0.25/window.
        measures = [measure(w, 10 * (w + 1), 40) for w in range(3)]
        assert summarize_trajectory(0, measures).trend == pytest.approx(0.25)

    def test_single_point_trend_zero(self):
        assert summarize_trajectory(0, [measure(0, 10, 20), None]).trend == 0.0

    def test_slope_degenerate_positions_exact(self):
        # Regression: the undetermined-slope guard compares an *integer*
        # denominator (n·Σx² − (Σx)²), not a float sum against 0.0.
        from repro.core.trajectory import _slope

        assert _slope([4, 4, 4], [0.1, 0.2, 0.3]) == 0.0
        assert _slope([7], [0.5]) == 0.0
        # Huge window indices one apart: the integer form stays exact.
        base = 10**8
        assert _slope([base, base + 1], [0.0, 1.0]) == 1.0

    def test_gap_positions_use_window_indexes(self):
        # Rising across windows 0 and 3 (gap in between): slope uses the
        # true spacing of 3 windows, not consecutive positions.
        measures = [measure(0, 10, 40), None, None, measure(3, 40, 40)]
        summary = summarize_trajectory(0, measures)
        assert summary.trend == pytest.approx((1.0 - 0.25) / 3)
