"""Property-based invariants of the online explorer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CompareQuery,
    GenerationConfig,
    ParameterSetting,
    RecommendQuery,
    TaraExplorer,
    TrajectoryQuery,
    build_knowledge_base,
)
from repro.data import TransactionDatabase, WindowedDatabase

transactions_strategy = st.lists(
    st.frozensets(st.integers(min_value=0, max_value=7), min_size=1, max_size=4),
    min_size=8,
    max_size=40,
)
threshold_strategy = st.floats(min_value=0.0, max_value=1.0)


def build(transactions):
    db = TransactionDatabase.from_itemlists([sorted(t) for t in transactions])
    windows = WindowedDatabase.partition_by_count(db, 2)
    kb = build_knowledge_base(windows, GenerationConfig(0.0, 0.0))
    return kb, TaraExplorer(kb)


@settings(max_examples=40, deadline=None)
@given(
    transactions_strategy,
    threshold_strategy,
    threshold_strategy,
    threshold_strategy,
    threshold_strategy,
)
def test_tighter_settings_shrink_rulesets(transactions, s1, c1, s2, c2):
    """Componentwise-looser settings always yield superset rulesets."""
    kb, explorer = build(transactions)
    loose = ParameterSetting(min(s1, s2), min(c1, c2))
    tight = ParameterSetting(max(s1, s2), max(c1, c2))
    for window in range(kb.window_count):
        loose_rules = set(explorer.ruleset(loose, window))
        tight_rules = set(explorer.ruleset(tight, window))
        assert tight_rules <= loose_rules


@settings(max_examples=30, deadline=None)
@given(transactions_strategy, threshold_strategy, threshold_strategy)
def test_region_boundary_consistency(transactions, supp, conf):
    """The region's cut location itself yields the region's ruleset, and
    any setting just past the cut yields strictly fewer rules (or the
    cut is the space's maximum)."""
    kb, explorer = build(transactions)
    setting = ParameterSetting(supp, conf)
    recommendation = explorer.execute(
        RecommendQuery(setting=setting, window=0)
    )
    region = recommendation.region
    reference = explorer.ruleset(setting, 0)
    assert region.ruleset_size == len(reference)
    if region.cut is not None:
        at_cut = explorer.ruleset(
            ParameterSetting(
                float(region.cut.support), float(region.cut.confidence)
            ),
            0,
        )
        assert at_cut == reference


@settings(max_examples=30, deadline=None)
@given(transactions_strategy, threshold_strategy, threshold_strategy)
def test_comparison_is_antisymmetric(transactions, supp, conf):
    """Swapping the compared settings swaps the two difference sides."""
    kb, explorer = build(transactions)
    first = ParameterSetting(supp, conf)
    second = ParameterSetting(min(supp + 0.1, 1.0), conf)
    forward = explorer.execute(CompareQuery(first=first, second=second))
    backward = explorer.execute(CompareQuery(first=second, second=first))
    assert forward.only_first == backward.only_second
    assert forward.only_second == backward.only_first


@settings(max_examples=30, deadline=None)
@given(transactions_strategy)
def test_mine_measures_meet_thresholds(transactions):
    kb, explorer = build(transactions)
    setting = ParameterSetting(0.1, 0.3)
    for window, mined in explorer.mine(setting).items():
        for rule in mined:
            assert rule.support >= setting.min_support - 1e-12
            assert rule.confidence >= setting.min_confidence - 1e-12


@settings(max_examples=25, deadline=None)
@given(transactions_strategy)
def test_trajectory_anchor_always_present(transactions):
    """A rule matched in the anchor window must have a measure there."""
    kb, explorer = build(transactions)
    setting = ParameterSetting(0.1, 0.2)
    anchor = kb.window_count - 1
    for trajectory in explorer.execute(
        TrajectoryQuery(setting=setting, anchor_window=anchor)
    ):
        assert trajectory.measures[anchor] is not None
