"""TAR Archive: recording, sealing, decoding, roll-up, storage accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import (
    UnknownRuleError,
    UnknownWindowError,
    ValidationError,
)
from repro.core.archive import TarArchive, _decode_series, _encode_series
from repro.data.periods import PeriodSpec
from repro.mining.rules import Rule, ScoredRule


def scored(rule_id, rule_count, antecedent_count, window_size, consequent_count=None):
    if consequent_count is None:
        consequent_count = min(window_size, 2 * rule_count + 1)
    return ScoredRule(
        rule_id=rule_id,
        rule=Rule((1,), (2,)),
        support=rule_count / window_size,
        confidence=rule_count / antecedent_count,
        rule_count=rule_count,
        antecedent_count=antecedent_count,
        window_size=window_size,
        consequent_count=consequent_count,
    )


@pytest.fixture
def archive() -> TarArchive:
    """Three windows; rule 0 in all, rule 1 in windows 0 and 2."""
    archive = TarArchive()
    archive.begin_window(100, 3)
    archive.record(0, [scored(0, 10, 20, 100), scored(1, 5, 10, 100)])
    archive.begin_window(200, 5)
    archive.record(1, [scored(0, 30, 40, 200)])
    archive.begin_window(100, 3)
    archive.record(2, [scored(0, 12, 24, 100), scored(1, 8, 8, 100)])
    return archive


class TestRecording:
    def test_window_bookkeeping(self, archive):
        assert archive.window_count == 3
        assert archive.window_size(1) == 200
        assert archive.missing_count_bound(2) == 3

    def test_record_into_stale_window_rejected(self, archive):
        with pytest.raises(UnknownWindowError):
            archive.record(0, [scored(9, 1, 1, 100)])

    def test_mismatched_window_size_rejected(self):
        archive = TarArchive()
        archive.begin_window(50, 2)
        with pytest.raises(ValidationError, match="window size"):
            archive.record(0, [scored(0, 1, 1, 99)])

    def test_double_record_same_rule_same_window_rejected(self):
        archive = TarArchive()
        archive.begin_window(50, 2)
        archive.record(0, [scored(0, 1, 1, 50)])
        with pytest.raises(ValidationError, match="already recorded"):
            archive.record(0, [scored(0, 2, 2, 50)])

    def test_negative_window_size_rejected(self):
        with pytest.raises(ValidationError):
            TarArchive().begin_window(-1, 0)


class TestReads:
    def test_series_roundtrip(self, archive):
        series = archive.series(0)
        assert [(m.window, m.rule_count, m.antecedent_count) for m in series] == [
            (0, 10, 20),
            (1, 30, 40),
            (2, 12, 24),
        ]
        assert series[0].support == pytest.approx(0.1)
        assert series[0].confidence == pytest.approx(0.5)
        assert series[1].window_size == 200

    def test_measure_at_present_window(self, archive):
        measure = archive.measure_at(1, 2)
        assert measure is not None
        assert measure.confidence == pytest.approx(1.0)

    def test_measure_at_absent_window_is_none(self, archive):
        assert archive.measure_at(1, 1) is None

    def test_measure_at_unknown_window_raises(self, archive):
        with pytest.raises(UnknownWindowError):
            archive.measure_at(0, 7)

    def test_unknown_rule_raises(self, archive):
        with pytest.raises(UnknownRuleError):
            archive.series(42)

    def test_windows_of(self, archive):
        assert archive.windows_of(0) == (0, 1, 2)
        assert archive.windows_of(1) == (0, 2)

    def test_contains_and_len(self, archive):
        assert 0 in archive and 1 in archive and 42 not in archive
        assert len(archive) == 2
        assert sorted(archive.rule_ids()) == [0, 1]


class TestSealing:
    def test_reads_identical_after_seal(self, archive):
        before = {rid: archive.series(rid) for rid in archive.rule_ids()}
        archive.seal()
        after = {rid: archive.series(rid) for rid in archive.rule_ids()}
        assert before == after

    def test_can_append_after_seal(self, archive):
        archive.seal()
        archive.begin_window(100, 3)
        archive.record(3, [scored(0, 7, 14, 100)])
        assert archive.windows_of(0) == (0, 1, 2, 3)

    def test_encoded_size_consistent_before_and_after_seal(self, archive):
        staged_estimate = archive.encoded_size_bytes()
        archive.seal()
        assert archive.encoded_size_bytes() == staged_estimate

    def test_encoding_compresses_vs_uncompressed(self, archive):
        assert archive.encoded_size_bytes() < archive.uncompressed_size_bytes()

    def test_entry_count(self, archive):
        assert archive.entry_count() == 5
        archive.seal()
        assert archive.entry_count() == 5


class TestCodec:
    def test_series_roundtrip_known(self):
        series = [(0, 10, 20, 15), (3, 8, 30, 12), (4, 9, 9, 9)]
        assert _decode_series(_encode_series(series)) == series

    def test_empty_series(self):
        assert _decode_series(_encode_series([])) == []

    def test_stable_series_is_tiny(self):
        # A rule with identical counts across 10 consecutive windows:
        # after the first entry every delta is (1, 0, 0, 0) = 4 bytes.
        series = [(w, 50, 100, 80) for w in range(10)]
        blob = _encode_series(series)
        assert len(blob) <= 5 + 9 * 4

    def test_antecedent_below_rule_count_rejected(self):
        with pytest.raises(Exception):
            _encode_series([(0, 5, 3, 5)])

    def test_consequent_below_rule_count_rejected(self):
        with pytest.raises(Exception):
            _encode_series([(0, 5, 5, 3)])

    def test_non_increasing_windows_rejected(self):
        with pytest.raises(Exception):
            _encode_series([(1, 5, 5, 5), (1, 6, 6, 6)])

    @settings(max_examples=80, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=5),  # window gaps
                st.integers(min_value=0, max_value=10_000),  # rule counts
                st.integers(min_value=0, max_value=10_000),  # antecedent margins
                st.integers(min_value=0, max_value=10_000),  # consequent margins
            ),
            max_size=30,
        )
    )
    def test_roundtrip_property(self, quads):
        window = -1
        series = []
        for gap, rule_count, margin, consequent_margin in quads:
            window += gap
            series.append(
                (window, rule_count, rule_count + margin,
                 rule_count + consequent_margin)
            )
        assert _decode_series(_encode_series(series)) == series


class TestRolledUp:
    def test_exact_when_all_windows_present(self, archive):
        measure = archive.rolled_up(0, PeriodSpec([0, 1, 2]))
        assert measure.is_exact
        assert measure.rule_count == 52
        assert measure.total_size == 400
        assert measure.support == pytest.approx(52 / 400)
        assert measure.confidence == pytest.approx(52 / 84)
        assert measure.support_low == measure.support_high == measure.support

    def test_bounds_when_windows_missing(self, archive):
        measure = archive.rolled_up(1, PeriodSpec([0, 1, 2]))
        assert not measure.is_exact
        assert measure.windows_missing == (1,)
        # Missing window 1 can hide at most bound-1 = 4 occurrences.
        assert measure.rule_count == 13
        assert measure.support_high == pytest.approx((13 + 4) / 400)
        assert measure.support_low == pytest.approx(13 / 400)
        # Confidence interval brackets the point estimate.
        assert measure.confidence_low <= measure.confidence <= measure.confidence_high

    def test_subset_of_windows(self, archive):
        measure = archive.rolled_up(0, PeriodSpec([0, 2]))
        assert measure.rule_count == 22
        assert measure.total_size == 200
        assert measure.is_exact

    def test_unknown_window_in_spec_raises(self, archive):
        with pytest.raises(UnknownWindowError):
            archive.rolled_up(0, PeriodSpec([5]))

    def test_single_window_rollup_equals_measure_at(self, archive):
        rolled = archive.rolled_up(0, PeriodSpec([1]))
        direct = archive.measure_at(0, 1)
        assert rolled.support == pytest.approx(direct.support)
        assert rolled.confidence == pytest.approx(direct.confidence)
