"""The online explorer: every query class against direct-mining oracles."""

import pytest

from repro.common.errors import QueryError
from repro.core import (
    CompareQuery,
    ContentQuery,
    MatchMode,
    ParameterSetting,
    RecommendQuery,
    RollupQuery,
    TaraExplorer,
    TrajectoryQuery,
)
from repro.data.periods import PeriodSpec
from repro.mining.apriori import mine_apriori
from repro.mining.rules import derive_rules


@pytest.fixture(scope="module")
def explorer(small_kb) -> TaraExplorer:
    return TaraExplorer(small_kb)


SETTING = ParameterSetting(0.05, 0.3)


def oracle_ruleset(small_windows, small_kb, setting, window):
    """Direct mining of one window at the query thresholds."""
    config = small_kb.config
    scored = derive_rules(
        mine_apriori(small_windows.window(window), config.min_support),
        config.min_confidence,
    )
    return sorted(
        small_kb.catalog.find(s.rule.antecedent, s.rule.consequent)
        for s in scored
        if s.support >= setting.min_support
        and s.confidence >= setting.min_confidence
    )


class TestMining:
    def test_ruleset_matches_oracle_every_window(
        self, explorer, small_windows, small_kb
    ):
        for window in range(small_kb.window_count):
            assert explorer.ruleset(SETTING, window) == oracle_ruleset(
                small_windows, small_kb, SETTING, window
            )

    def test_mine_returns_measures(self, explorer):
        answer = explorer.mine(SETTING, PeriodSpec([1]))
        assert set(answer) == {1}
        for mined in answer[1]:
            assert mined.support >= SETTING.min_support
            assert mined.confidence >= SETTING.min_confidence

    def test_mine_defaults_to_all_windows(self, explorer, small_kb):
        answer = explorer.mine(SETTING)
        assert set(answer) == set(range(small_kb.window_count))

    def test_mine_restricts_out_of_range_spec(self, explorer):
        answer = explorer.mine(SETTING, PeriodSpec([0, 99]))
        assert set(answer) == {0}

    def test_empty_knowledge_base_rejected(self, small_kb):
        from repro.core.builder import TaraKnowledgeBase
        from repro.core.archive import TarArchive
        from repro.mining.rules import RuleCatalog

        empty = TaraKnowledgeBase(
            config=small_kb.config, catalog=RuleCatalog(), archive=TarArchive()
        )
        with pytest.raises(QueryError):
            TaraExplorer(empty)


class TestTrajectories:
    def test_anchored_rules_match_ruleset(self, explorer):
        trajectories = explorer.execute(
            TrajectoryQuery(setting=SETTING, anchor_window=2)
        )
        assert sorted(t.rule_id for t in trajectories) == explorer.ruleset(
            SETTING, 2
        )

    def test_measures_cover_requested_spec(self, explorer, small_kb):
        spec = PeriodSpec([0, 3])
        trajectories = explorer.execute(
            TrajectoryQuery(setting=SETTING, anchor_window=3, spec=spec)
        )
        for trajectory in trajectories:
            assert set(trajectory.measures) == {0, 3}
            # The anchor window always has a measure (rule valid there).
            assert trajectory.measures[3] is not None

    def test_series_helpers(self, explorer):
        trajectory = explorer.execute(
            TrajectoryQuery(setting=SETTING, anchor_window=2)
        )[0]
        present = trajectory.present_windows()
        assert len(trajectory.support_series()) == len(present)
        assert len(trajectory.confidence_series()) == len(present)
        assert all(0 <= s <= 1 for s in trajectory.support_series())


class TestCompare:
    LOOSE = ParameterSetting(0.04, 0.25)
    TIGHT = ParameterSetting(0.08, 0.25)

    def test_per_window_diffs_match_rulesets(self, explorer, small_kb):
        result = explorer.execute(
            CompareQuery(first=self.LOOSE, second=self.TIGHT)
        )
        for diff in result.per_window:
            loose_rules = set(explorer.ruleset(self.LOOSE, diff.window))
            tight_rules = set(explorer.ruleset(self.TIGHT, diff.window))
            assert set(diff.only_first) == loose_rules - tight_rules
            assert set(diff.only_second) == tight_rules - loose_rules
            assert set(diff.common) == loose_rules & tight_rules

    def test_tighter_setting_is_subset(self, explorer):
        result = explorer.execute(
            CompareQuery(first=self.LOOSE, second=self.TIGHT)
        )
        assert result.only_second == ()  # tight ⊆ loose always

    def test_single_vs_exact_mode(self, explorer, small_kb):
        single = explorer.execute(
            CompareQuery(
                first=self.LOOSE, second=self.TIGHT, mode=MatchMode.SINGLE
            )
        )
        exact = explorer.execute(
            CompareQuery(
                first=self.LOOSE, second=self.TIGHT, mode=MatchMode.EXACT
            )
        )
        assert set(exact.only_first) <= set(single.only_first)
        # EXACT keeps only rules differing in every window.
        window_count = small_kb.window_count
        votes = {}
        for diff in single.per_window:
            for rule_id in diff.only_first:
                votes[rule_id] = votes.get(rule_id, 0) + 1
        expected_exact = sorted(r for r, v in votes.items() if v == window_count)
        assert list(exact.only_first) == expected_exact

    def test_identical_settings_no_difference(self, explorer):
        result = explorer.execute(
            CompareQuery(first=self.LOOSE, second=self.LOOSE)
        )
        assert result.difference_size == 0


class TestRecommend:
    def test_region_contains_setting(self, explorer):
        recommendation = explorer.execute(
            RecommendQuery(setting=SETTING, window=1)
        )
        assert recommendation.region.contains(SETTING)
        assert recommendation.window == 1

    def test_defaults_to_latest_window(self, explorer, small_kb):
        recommendation = explorer.execute(RecommendQuery(setting=SETTING))
        assert recommendation.window == small_kb.window_count - 1

    def test_region_size_equals_ruleset(self, explorer):
        recommendation = explorer.execute(
            RecommendQuery(setting=SETTING, window=0)
        )
        assert recommendation.region.ruleset_size == len(
            explorer.ruleset(SETTING, 0)
        )

    def test_ruleset_delta_signs(self, explorer):
        recommendation = explorer.execute(
            RecommendQuery(setting=SETTING, window=0)
        )
        looser = recommendation.ruleset_delta("looser_support")
        if looser is not None:
            assert looser >= 0
        tighter = recommendation.ruleset_delta("tighter_support")
        if tighter is not None:
            assert tighter <= 0
        assert recommendation.ruleset_delta("no_such_direction") is None


class TestTopRules:
    def test_ranked_by_stability_descending(self, explorer):
        tops = explorer.top_rules(SETTING, 2, key="stability", k=5)
        values = [t.stability for t in tops]
        assert values == sorted(values, reverse=True)

    def test_ascending_order(self, explorer):
        tops = explorer.top_rules(
            SETTING, 2, key="confidence_std", k=5, descending=False
        )
        values = [t.confidence_std for t in tops]
        assert values == sorted(values)

    def test_k_limits_results(self, explorer):
        assert len(explorer.top_rules(SETTING, 2, k=3)) <= 3

    def test_unknown_key_rejected(self, explorer):
        with pytest.raises(QueryError, match="unknown trajectory measure"):
            explorer.top_rules(SETTING, 2, key="nope")

    def test_bad_k_rejected(self, explorer):
        with pytest.raises(QueryError):
            explorer.top_rules(SETTING, 2, k=0)


class TestContent:
    def test_content_rules_mention_item(self, explorer, small_kb):
        answer = explorer.execute(
            ContentQuery(setting=SETTING, items=(3,), spec=PeriodSpec([1]))
        )
        for rule_id in answer[1]:
            assert 3 in small_kb.catalog.get(rule_id).items

    def test_content_subset_of_ruleset(self, explorer):
        answer = explorer.execute(
            ContentQuery(setting=SETTING, items=(3,), spec=PeriodSpec([1]))
        )
        assert set(answer[1]) <= set(explorer.ruleset(SETTING, 1))

    def test_empty_items_rejected(self, explorer):
        with pytest.raises(QueryError):
            explorer.execute(ContentQuery(setting=SETTING, items=()))


class TestSummarize:
    def test_summary_consistent_with_archive(self, explorer, small_kb):
        rule_id = explorer.ruleset(SETTING, 0)[0]
        summary = explorer.summarize(rule_id)
        windows_present = len(small_kb.archive.windows_of(rule_id))
        assert summary.windows_present == windows_present
        assert summary.windows_requested == small_kb.window_count
        assert summary.coverage == pytest.approx(
            windows_present / small_kb.window_count
        )


class TestDeprecatedMethodShims:
    """The legacy named methods warn, then answer exactly like execute()."""

    def test_each_shim_warns_and_matches_execute(self, explorer):
        other = ParameterSetting(0.08, 0.4)
        with pytest.warns(DeprecationWarning, match="TrajectoryQuery"):
            legacy = explorer.trajectories(SETTING, anchor_window=0)
        assert legacy == explorer.execute(
            TrajectoryQuery(setting=SETTING, anchor_window=0)
        )
        with pytest.warns(DeprecationWarning, match="CompareQuery"):
            legacy = explorer.compare(SETTING, other, mode=MatchMode.EXACT)
        assert legacy == explorer.execute(
            CompareQuery(first=SETTING, second=other, mode=MatchMode.EXACT)
        )
        with pytest.warns(DeprecationWarning, match="RecommendQuery"):
            legacy = explorer.recommend(SETTING, window=1)
        assert legacy == explorer.execute(
            RecommendQuery(setting=SETTING, window=1)
        )
        with pytest.warns(DeprecationWarning, match="ContentQuery"):
            legacy = explorer.content(SETTING, [3])
        assert legacy == explorer.execute(
            ContentQuery(setting=SETTING, items=(3,))
        )
        with pytest.warns(DeprecationWarning, match="RollupQuery"):
            legacy = explorer.mine_rolled_up(SETTING, PeriodSpec([0, 1]))
        assert legacy == explorer.execute(
            RollupQuery(setting=SETTING, spec=PeriodSpec([0, 1]))
        )


class TestExecuteDispatch:
    def test_unknown_request_type_rejected(self, explorer):
        with pytest.raises(QueryError, match="unknown"):
            explorer.execute(SETTING)  # a setting is not a request
