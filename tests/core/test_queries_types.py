"""The query/result value objects of the online explorer."""

import pytest

from repro.core.archive import WindowMeasure
from repro.core.queries import (
    ComparisonResult,
    MatchMode,
    MinedRule,
    RollupAnswer,
    RuleTrajectory,
    WindowDiff,
)
from repro.core.regions import ParameterSetting
from repro.mining.rules import Rule


def measure(window, rule_count=10, antecedent_count=20, window_size=100):
    return WindowMeasure(
        window=window,
        rule_count=rule_count,
        antecedent_count=antecedent_count,
        window_size=window_size,
        consequent_count=rule_count,
    )


class TestRuleTrajectory:
    def test_present_windows_sorted_and_filtered(self):
        trajectory = RuleTrajectory(
            rule_id=0,
            rule=Rule((1,), (2,)),
            measures={2: measure(2), 0: None, 1: measure(1)},
        )
        assert trajectory.present_windows() == (1, 2)

    def test_series_align_with_present_windows(self):
        trajectory = RuleTrajectory(
            rule_id=0,
            rule=Rule((1,), (2,)),
            measures={
                0: measure(0, rule_count=10),
                1: None,
                2: measure(2, rule_count=15, antecedent_count=20),
            },
        )
        assert trajectory.support_series() == [0.1, 0.15]
        assert trajectory.confidence_series() == [0.5, 0.75]

    def test_all_absent(self):
        trajectory = RuleTrajectory(
            rule_id=0, rule=Rule((1,), (2,)), measures={0: None}
        )
        assert trajectory.present_windows() == ()
        assert trajectory.support_series() == []


class TestComparisonResult:
    def test_difference_size(self):
        result = ComparisonResult(
            first=ParameterSetting(0.1, 0.1),
            second=ParameterSetting(0.2, 0.2),
            mode=MatchMode.SINGLE,
            per_window=(
                WindowDiff(window=0, only_first=(1, 2), only_second=(), common=(3,)),
            ),
            only_first=(1, 2),
            only_second=(9,),
        )
        assert result.difference_size == 3


class TestMatchMode:
    def test_values(self):
        assert MatchMode("exact") is MatchMode.EXACT
        assert MatchMode("single") is MatchMode.SINGLE


class TestMinedRule:
    def test_frozen(self):
        mined = MinedRule(
            rule_id=1, rule=Rule((1,), (2,)), support=0.1, confidence=0.5
        )
        with pytest.raises(AttributeError):
            mined.support = 0.9  # type: ignore[misc]


class TestRollupAnswer:
    def test_is_exact_when_sets_match(self):
        answer = RollupAnswer(
            setting=ParameterSetting(0.1, 0.1),
            windows=(0, 1),
            certain=(),
            possible=(),
            max_support_error=0.01,
        )
        assert answer.is_exact
