"""Lift support through the archive — the 'other measures' plug point."""

import pytest

from repro.core import GenerationConfig, build_knowledge_base
from repro.mining.apriori import mine_apriori
from repro.mining.measures import ContingencyCounts, get_measure
from repro.mining.rules import derive_rules


class TestScoredRuleLift:
    def test_lift_matches_measure_registry(self, small_windows):
        transactions = small_windows.window(0)
        itemsets = mine_apriori(transactions, 0.02)
        for scored in derive_rules(itemsets, 0.1)[:50]:
            expected = get_measure("lift")(
                ContingencyCounts(
                    n_xy=scored.rule_count,
                    n_x=scored.antecedent_count,
                    n_y=scored.consequent_count,
                    n=scored.window_size,
                )
            )
            assert scored.lift == pytest.approx(expected)

    def test_consequent_count_is_itemset_count(self, small_windows):
        transactions = small_windows.window(0)
        itemsets = mine_apriori(transactions, 0.02)
        for scored in derive_rules(itemsets, 0.1)[:50]:
            assert scored.consequent_count == itemsets.count(
                scored.rule.consequent
            )


class TestArchivedLift:
    def test_archive_reproduces_lift_per_window(self, small_kb, small_windows):
        """Decoded WindowMeasure.lift equals the direct computation."""
        checked = 0
        window = 1
        transactions = small_windows.window(window)
        itemsets = mine_apriori(transactions, small_kb.config.min_support)
        for scored in derive_rules(itemsets, small_kb.config.min_confidence)[:40]:
            rule_id = small_kb.catalog.find(
                scored.rule.antecedent, scored.rule.consequent
            )
            measure = small_kb.archive.measure_at(rule_id, window)
            assert measure is not None
            assert measure.lift == pytest.approx(scored.lift)
            checked += 1
        assert checked > 0

    def test_lift_zero_when_consequent_count_missing(self):
        from repro.core.archive import WindowMeasure

        measure = WindowMeasure(
            window=0,
            rule_count=5,
            antecedent_count=10,
            window_size=100,
            consequent_count=0,
        )
        assert measure.lift == 0.0

    def test_independent_rule_has_unit_lift(self):
        from repro.core.archive import WindowMeasure

        # P(XY) = 0.1 = P(X) * P(Y) = 0.5 * 0.2
        measure = WindowMeasure(
            window=0,
            rule_count=10,
            antecedent_count=50,
            window_size=100,
            consequent_count=20,
        )
        assert measure.lift == pytest.approx(1.0)
