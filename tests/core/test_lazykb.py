"""The lazy v2 knowledge base: answer parity, laziness, and read-only rules.

``test_persistence`` proves save/load fidelity; this file exercises the
lazy machinery itself — what gets materialized when, what the LRU does
under a budget, and how the read-only sharded archive refuses writes.
"""

import pytest

from repro.common.errors import UnknownWindowError, ValidationError
from repro.core import (
    CompareQuery,
    ContentQuery,
    LazyTaraKnowledgeBase,
    ParameterSetting,
    RecommendQuery,
    RollupQuery,
    TaraExplorer,
    TaraKnowledgeBase,
    TrajectoryQuery,
    load_knowledge_base,
    save_knowledge_base,
)
from repro.data import PeriodSpec
from repro.service import TaraService


@pytest.fixture
def lazy_kb(small_kb, tmp_path):
    path = tmp_path / "kb.tara2"
    save_knowledge_base(small_kb, path)
    knowledge_base = load_knowledge_base(path)
    assert isinstance(knowledge_base, LazyTaraKnowledgeBase)
    yield knowledge_base
    knowledge_base.close()


def all_queries(knowledge_base):
    last = knowledge_base.window_count - 1
    setting = ParameterSetting(0.2, 0.3)
    return [
        TrajectoryQuery(setting=setting, anchor_window=last),
        CompareQuery(first=setting, second=ParameterSetting(0.3, 0.5)),
        RecommendQuery(setting=setting, window=last),
        RollupQuery(
            setting=setting,
            spec=PeriodSpec(range(knowledge_base.window_count)),
        ),
        ContentQuery(setting=setting, items=(0,)),
    ]


class TestAnswerParity:
    def test_slices_match_eager(self, small_kb, lazy_kb):
        for window in range(small_kb.window_count):
            eager = small_kb.slice(window)
            lazy = lazy_kb.slice(window)
            assert lazy.window == eager.window
            assert lazy.location_count == eager.location_count
            assert lazy.supports == eager.supports
            assert lazy.confidences == eager.confidences

    def test_candidate_rules_match_eager(self, small_kb, lazy_kb):
        spec = small_kb.all_windows()
        assert lazy_kb.candidate_rules(spec) == small_kb.candidate_rules(spec)
        single = PeriodSpec.single(0)
        assert (
            lazy_kb.candidate_rules(single)
            == small_kb.candidate_rules(single)
        )

    def test_candidate_rules_out_of_range(self, lazy_kb):
        with pytest.raises(UnknownWindowError):
            lazy_kb.candidate_rules(PeriodSpec([lazy_kb.window_count]))

    def test_every_query_answer_identical(self, small_kb, lazy_kb):
        eager_explorer = TaraExplorer(small_kb)
        lazy_explorer = TaraExplorer(lazy_kb)
        for query in all_queries(small_kb):
            assert repr(lazy_explorer.execute(query)) == repr(
                eager_explorer.execute(query)
            )


class TestLaziness:
    def test_nothing_materialized_at_load(self, lazy_kb):
        counters = lazy_kb.storage_counters()
        assert counters["slices_materialized"] == 0
        assert counters["shards_decoded"] == 0

    def test_slice_materializes_once(self, lazy_kb):
        counters = lazy_kb.storage_counters()
        assert counters["slices_materialized"] == 0
        first = lazy_kb.slice(0)
        assert lazy_kb.storage_counters()["slices_materialized"] == 1
        assert lazy_kb.slice(0) is first

    def test_single_window_query_stays_partial(self, small_kb, lazy_kb):
        explorer = TaraExplorer(lazy_kb)
        explorer.execute(
            RecommendQuery(setting=ParameterSetting(0.2, 0.3), window=0)
        )
        counters = lazy_kb.storage_counters()
        assert 0 < counters["slices_materialized"] < small_kb.window_count

    def test_memory_budget_reaches_reader(self, small_kb, tmp_path):
        path = tmp_path / "kb.tara2"
        save_knowledge_base(small_kb, path)
        knowledge_base = load_knowledge_base(path, memory_budget=1024)
        try:
            counters = knowledge_base.storage_counters()
            assert counters["cache_budget_bytes"] == 1024
        finally:
            knowledge_base.close()

    def test_answers_survive_eviction_pressure(self, small_kb, tmp_path):
        path = tmp_path / "kb.tara2"
        save_knowledge_base(small_kb, path)
        # A budget of one decoded series: every rule lookup evicts the
        # previous one, yet every answer must stay byte-equal.
        knowledge_base = load_knowledge_base(path, memory_budget=400)
        try:
            eager_explorer = TaraExplorer(small_kb)
            lazy_explorer = TaraExplorer(knowledge_base)
            for _ in range(2):
                for query in all_queries(small_kb):
                    assert repr(lazy_explorer.execute(query)) == repr(
                        eager_explorer.execute(query)
                    )
        finally:
            knowledge_base.close()


class TestReadOnlyArchive:
    def test_begin_window_refused(self, lazy_kb):
        with pytest.raises(ValidationError, match="read-only"):
            lazy_kb.archive.begin_window(10, 5)

    def test_record_refused(self, lazy_kb):
        with pytest.raises(ValidationError, match="read-only"):
            lazy_kb.archive.record(0, [])

    def test_seal_is_noop(self, lazy_kb):
        lazy_kb.archive.seal()


class TestClone:
    def test_clone_is_eager_and_equivalent(self, small_kb, lazy_kb):
        clone = lazy_kb.clone()
        assert type(clone) is TaraKnowledgeBase
        assert clone.window_count == small_kb.window_count
        explorer = TaraExplorer(clone)
        eager_explorer = TaraExplorer(small_kb)
        for query in all_queries(small_kb):
            assert repr(explorer.execute(query)) == repr(
                eager_explorer.execute(query)
            )

    def test_clone_survives_source_close(self, lazy_kb):
        clone = lazy_kb.clone()
        lazy_kb.close()
        assert clone.slice(0).location_count > 0


class TestServiceIntegration:
    def test_metrics_snapshot_samples_storage_gauges(self, lazy_kb):
        service = TaraService(lazy_kb)
        service.execute(RecommendQuery(
            setting=ParameterSetting(0.2, 0.3), window=0
        ))
        snapshot = service.metrics_snapshot()
        assert snapshot["storage"]["slices_materialized"] >= 1
        assert "cache_hits" in snapshot["storage"]

    def test_eager_kb_has_empty_storage_section(self, small_kb):
        service = TaraService(small_kb)
        assert service.metrics_snapshot()["storage"] == {}
