"""Panorama text rendering: exact grids, sparklines, bars."""

import pytest

from repro.common.errors import QueryError, ValidationError
from repro.core import ParameterSetting
from repro.core.archive import WindowMeasure
from repro.core.panorama import (
    render_slice,
    render_trajectory,
    render_window_sizes,
    rule_count_grid,
)


def measure(window, rule_count, antecedent_count=None, window_size=100):
    if antecedent_count is None:
        antecedent_count = 2 * rule_count
    return WindowMeasure(
        window=window,
        rule_count=rule_count,
        antecedent_count=antecedent_count,
        window_size=window_size,
        consequent_count=rule_count,
    )


class TestRuleCountGrid:
    def test_cells_match_collect(self, small_kb):
        """Every grid cell equals an exact collect() at its corner."""
        window_slice = small_kb.slice(0)
        grid = rule_count_grid(window_slice, width=6, height=5)
        gen = window_slice.generation_setting
        supp_hi = float(window_slice.supports[-1])
        conf_hi = float(window_slice.confidences[-1])
        for row in range(5):
            conf = gen.min_confidence + (conf_hi - gen.min_confidence) * (
                (5 - 1 - row) / 4
            )
            for col in range(6):
                supp = gen.min_support + (supp_hi - gen.min_support) * col / 5
                expected = len(
                    window_slice.collect(
                        ParameterSetting(min(supp, 1.0), min(conf, 1.0))
                    )
                )
                assert grid[row][col] == expected, (row, col)

    def test_monotone_along_axes(self, small_kb):
        """Loosening either threshold can only add rules."""
        grid = rule_count_grid(small_kb.slice(1), width=8, height=6)
        for row in grid:
            for left, right in zip(row, row[1:]):
                assert left >= right  # support grows left -> right
        for upper, lower in zip(grid, grid[1:]):
            for up, down in zip(upper, lower):
                assert up <= down  # confidence grows bottom -> top

    def test_bottom_left_is_full_ruleset(self, small_kb):
        window_slice = small_kb.slice(2)
        grid = rule_count_grid(window_slice, width=4, height=4)
        assert grid[-1][0] == window_slice.rule_count

    def test_bad_dimensions(self, small_kb):
        with pytest.raises(ValidationError):
            rule_count_grid(small_kb.slice(0), width=0, height=3)


class TestRenderSlice:
    def test_renders_all_rows(self, small_kb):
        art = render_slice(small_kb.slice(0), width=10, height=6)
        lines = art.splitlines()
        assert len(lines) == 1 + 6 + 1  # header + rows + footer
        assert "supp:" in lines[-1]

    def test_densest_cell_marked(self, small_kb):
        art = render_slice(small_kb.slice(0), width=10, height=6)
        assert "@" in art


class TestRenderTrajectory:
    def test_gaps_marked(self):
        line = render_trajectory([measure(0, 10), None, measure(2, 20)])
        assert len(line) == 3
        assert line[1] == "·"

    def test_rising_series_rises(self):
        measures = [measure(w, 10 + 10 * w, 100) for w in range(4)]
        line = render_trajectory(measures)
        assert line[0] < line[-1]  # block glyphs sort by height

    def test_constant_series_is_flat(self):
        measures = [measure(w, 10, 100) for w in range(3)]
        line = render_trajectory(measures)
        assert len(set(line)) == 1

    def test_all_absent(self):
        assert render_trajectory([None, None]) == "··"

    def test_metric_selection(self):
        measures = [measure(0, 10), measure(1, 10)]
        assert render_trajectory(measures, metric="support")
        assert render_trajectory(measures, metric="lift")
        with pytest.raises(QueryError):
            render_trajectory(measures, metric="zeal")


class TestRenderWindowSizes:
    def test_one_bar_per_window(self, small_kb):
        text = render_window_sizes(small_kb, ParameterSetting(0.05, 0.3))
        assert len(text.splitlines()) == 1 + small_kb.window_count

    def test_sizes_match_collect(self, small_kb):
        setting = ParameterSetting(0.05, 0.3)
        text = render_window_sizes(small_kb, setting)
        for window, line in enumerate(text.splitlines()[1:]):
            expected = len(small_kb.slice(window).collect(setting))
            assert line.rstrip().endswith(str(expected))

    def test_bad_bar_width(self, small_kb):
        with pytest.raises(ValidationError):
            render_window_sizes(
                small_kb, ParameterSetting(0.05, 0.3), bar_width=0
            )
