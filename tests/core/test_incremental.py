"""Incremental publication must equal the from-scratch build."""

import pytest

from repro.common.errors import BuildInFlightError, ValidationError
from repro.core import GenerationConfig, IncrementalTara, build_knowledge_base
from repro.core.regions import ParameterSetting


@pytest.fixture(scope="module")
def config() -> GenerationConfig:
    return GenerationConfig(0.02, 0.1)


class TestEquivalenceWithBatchBuild:
    def test_same_rulesets_per_window(self, small_windows, config):
        batch_kb = build_knowledge_base(small_windows, config)
        incremental = IncrementalTara(config)
        for index in range(small_windows.window_count):
            incremental.publish([small_windows.window(index)])
        inc_kb = incremental.knowledge_base
        assert inc_kb.window_count == batch_kb.window_count
        setting = ParameterSetting(0.05, 0.3)
        for window in range(batch_kb.window_count):
            batch_rules = {
                (batch_kb.catalog.get(r).antecedent, batch_kb.catalog.get(r).consequent)
                for r in batch_kb.slice(window).collect(setting)
            }
            inc_rules = {
                (inc_kb.catalog.get(r).antecedent, inc_kb.catalog.get(r).consequent)
                for r in inc_kb.slice(window).collect(setting)
            }
            assert batch_rules == inc_rules

    def test_same_archive_content(self, small_windows, config):
        batch_kb = build_knowledge_base(small_windows, config)
        incremental = IncrementalTara(config)
        incremental.publish(
            [
                small_windows.window(i)
                for i in range(small_windows.window_count)
            ]
        )
        inc_kb = incremental.knowledge_base
        for rule in batch_kb.catalog:
            batch_id = batch_kb.catalog.id_of(rule)
            inc_id = inc_kb.catalog.find(rule.antecedent, rule.consequent)
            assert inc_id is not None
            batch_series = [
                (m.window, m.rule_count, m.antecedent_count)
                for m in batch_kb.archive.series(batch_id)
            ]
            inc_series = [
                (m.window, m.rule_count, m.antecedent_count)
                for m in inc_kb.archive.series(inc_id)
            ]
            assert batch_series == inc_series


class TestIncrementalBehaviour:
    def test_explorer_is_always_current(self, small_windows, config):
        incremental = IncrementalTara(config)
        incremental.publish([small_windows.window(0)])
        assert incremental.explorer().knowledge_base.window_count == 1
        incremental.publish([small_windows.window(1)])
        assert incremental.explorer().knowledge_base.window_count == 2

    def test_window_count_tracks_batches(self, small_windows, config):
        incremental = IncrementalTara(config)
        assert incremental.window_count == 0
        snapshot = incremental.publish(
            [small_windows.window(i) for i in range(3)]
        )
        assert incremental.window_count == 3
        assert snapshot.epoch == 3
        assert [s.window for s in snapshot.knowledge_base.slices] == [0, 1, 2]

    def test_empty_publish_rejected(self, config):
        with pytest.raises(ValidationError):
            IncrementalTara(config).publish([])

    def test_empty_batch_rejected(self, config):
        with pytest.raises(ValidationError):
            IncrementalTara(config).publish([[]])

    def test_unsorted_batch_rejected(self, small_windows, config):
        incremental = IncrementalTara(config)
        incremental.publish([small_windows.window(0)])
        shuffled = list(reversed(small_windows.window(1)))
        with pytest.raises(ValidationError, match="time-sorted"):
            incremental.publish([shuffled])

    def test_failed_publish_keeps_the_current_snapshot(
        self, small_windows, config
    ):
        incremental = IncrementalTara(config)
        incremental.publish([small_windows.window(0)])
        before = incremental.current
        with pytest.raises(ValidationError):
            incremental.publish([[]])
        assert incremental.current is before
        assert not incremental.snapshot_stats()["building"]
        # The publisher recovers: the next valid publish lands normally.
        incremental.publish([small_windows.window(1)])
        assert incremental.window_count == 2

    def test_only_new_window_is_mined(self, small_windows, config):
        """The per-phase counters show one mining run per published batch."""
        from repro.core.builder import PHASE_ITEMSETS

        incremental = IncrementalTara(config)
        incremental.publish([small_windows.window(0)])
        timer = incremental.knowledge_base.timer
        assert timer.counts[PHASE_ITEMSETS] == 1
        incremental.publish([small_windows.window(1)])
        assert timer.counts[PHASE_ITEMSETS] == 2


class TestPublishSnapshots:
    def test_publish_returns_the_installed_snapshot(
        self, small_windows, config
    ):
        incremental = IncrementalTara(config)
        first = incremental.publish([small_windows.window(0)])
        assert first is incremental.current
        second = incremental.publish([small_windows.window(1)])
        assert second is incremental.current
        assert (first.epoch, second.epoch) == (1, 2)

    def test_predecessor_kb_is_never_mutated(self, small_windows, config):
        incremental = IncrementalTara(config)
        with incremental.snapshot() as genesis:
            assert genesis.epoch == 0
            incremental.publish([small_windows.window(0)])
            # The pinned predecessor still sees zero windows: the
            # publish built against a private clone.
            assert genesis.knowledge_base.window_count == 0
        assert incremental.window_count == 1

    def test_build_in_flight_is_conflict(
        self, small_windows, config, monkeypatch
    ):
        import repro.core.incremental as incremental_module

        incremental = IncrementalTara(config)
        original = incremental_module.TaraBuilder.add_windows

        def reentrant_add(builder, kb, batches):
            with pytest.raises(BuildInFlightError, match="in flight"):
                incremental.publish([small_windows.window(1)])
            return original(builder, kb, batches)

        monkeypatch.setattr(
            incremental_module.TaraBuilder, "add_windows", reentrant_add
        )
        incremental.publish([small_windows.window(0)])
        assert incremental.window_count == 1


class TestDeprecatedShims:
    """The PR-7 mutation surface still works, but warns once per key."""

    def test_append_batch_warns_and_publishes(self, small_windows, config):
        incremental = IncrementalTara(config)
        with pytest.warns(DeprecationWarning, match="publish"):
            slice_ = incremental.append_batch(small_windows.window(0))
        assert slice_.window == 0
        assert incremental.window_count == 1

    def test_append_batches_warns_and_returns_new_slices(
        self, small_windows, config
    ):
        incremental = IncrementalTara(config)
        with pytest.warns(DeprecationWarning, match="publish"):
            slices = incremental.append_batches(
                small_windows.window(i) for i in range(2)
            )
        assert [s.window for s in slices] == [0, 1]
        # Same key, same process: the second call stays silent.
        assert incremental.append_batches([]) == []

    def test_subscribe_warns_and_still_notifies(self, small_windows, config):
        incremental = IncrementalTara(config)
        observed = []
        with pytest.warns(DeprecationWarning, match="snapshot"):
            incremental.subscribe(observed.append)
        incremental.publish([small_windows.window(0)])
        incremental.publish([small_windows.window(1)])
        assert observed == [1, 2]
