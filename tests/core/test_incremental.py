"""Incremental construction must equal the from-scratch build."""

import pytest

from repro.common.errors import ValidationError
from repro.core import GenerationConfig, IncrementalTara, build_knowledge_base
from repro.core.regions import ParameterSetting


@pytest.fixture(scope="module")
def config() -> GenerationConfig:
    return GenerationConfig(0.02, 0.1)


class TestEquivalenceWithBatchBuild:
    def test_same_rulesets_per_window(self, small_windows, config):
        batch_kb = build_knowledge_base(small_windows, config)
        incremental = IncrementalTara(config)
        for index in range(small_windows.window_count):
            incremental.append_batch(small_windows.window(index))
        inc_kb = incremental.knowledge_base
        assert inc_kb.window_count == batch_kb.window_count
        setting = ParameterSetting(0.05, 0.3)
        for window in range(batch_kb.window_count):
            batch_rules = {
                (batch_kb.catalog.get(r).antecedent, batch_kb.catalog.get(r).consequent)
                for r in batch_kb.slice(window).collect(setting)
            }
            inc_rules = {
                (inc_kb.catalog.get(r).antecedent, inc_kb.catalog.get(r).consequent)
                for r in inc_kb.slice(window).collect(setting)
            }
            assert batch_rules == inc_rules

    def test_same_archive_content(self, small_windows, config):
        batch_kb = build_knowledge_base(small_windows, config)
        incremental = IncrementalTara(config)
        incremental.append_batches(
            small_windows.window(i) for i in range(small_windows.window_count)
        )
        inc_kb = incremental.knowledge_base
        for rule in batch_kb.catalog:
            batch_id = batch_kb.catalog.id_of(rule)
            inc_id = inc_kb.catalog.find(rule.antecedent, rule.consequent)
            assert inc_id is not None
            batch_series = [
                (m.window, m.rule_count, m.antecedent_count)
                for m in batch_kb.archive.series(batch_id)
            ]
            inc_series = [
                (m.window, m.rule_count, m.antecedent_count)
                for m in inc_kb.archive.series(inc_id)
            ]
            assert batch_series == inc_series


class TestIncrementalBehaviour:
    def test_explorer_is_always_current(self, small_windows, config):
        incremental = IncrementalTara(config)
        incremental.append_batch(small_windows.window(0))
        assert incremental.explorer().knowledge_base.window_count == 1
        incremental.append_batch(small_windows.window(1))
        assert incremental.explorer().knowledge_base.window_count == 2

    def test_window_count_tracks_batches(self, small_windows, config):
        incremental = IncrementalTara(config)
        assert incremental.window_count == 0
        slices = incremental.append_batches(
            small_windows.window(i) for i in range(3)
        )
        assert incremental.window_count == 3
        assert [s.window for s in slices] == [0, 1, 2]

    def test_empty_batch_rejected(self, config):
        with pytest.raises(ValidationError):
            IncrementalTara(config).append_batch([])

    def test_unsorted_batch_rejected(self, small_windows, config):
        incremental = IncrementalTara(config)
        incremental.append_batch(small_windows.window(0))
        shuffled = list(reversed(small_windows.window(1)))
        with pytest.raises(ValidationError, match="time-sorted"):
            incremental.append_batch(shuffled)

    def test_only_new_window_is_mined(self, small_windows, config):
        """The per-phase counters show one mining run per appended batch."""
        from repro.core.builder import PHASE_ITEMSETS

        incremental = IncrementalTara(config)
        incremental.append_batch(small_windows.window(0))
        timer = incremental.knowledge_base.timer
        assert timer.counts[PHASE_ITEMSETS] == 1
        incremental.append_batch(small_windows.window(1))
        assert timer.counts[PHASE_ITEMSETS] == 2


class TestSubscribe:
    def test_listener_sees_every_append(self, small_windows, config):
        incremental = IncrementalTara(config)
        observed = []
        incremental.subscribe(observed.append)
        incremental.append_batch(small_windows.window(0))
        incremental.append_batch(small_windows.window(1))
        assert observed == [1, 2]

    def test_append_batches_notifies_once(self, small_windows, config):
        """Bulk appends coalesce to one notification at the final count."""
        incremental = IncrementalTara(config)
        observed = []
        incremental.subscribe(observed.append)
        incremental.append_batches(
            small_windows.window(i) for i in range(small_windows.window_count)
        )
        assert observed == [small_windows.window_count]

    def test_late_subscriber_only_sees_future_appends(self, small_windows, config):
        incremental = IncrementalTara(config)
        incremental.append_batch(small_windows.window(0))
        observed = []
        incremental.subscribe(observed.append)
        incremental.append_batch(small_windows.window(1))
        assert observed == [2]
