"""Serial-equivalence of the parallel offline build.

The tentpole guarantee (docs/performance.md): a build under any executor
strategy produces a knowledge base *bit-identical* to the serial build —
same rule ids, same encoded archive bytes, same EPS region
decomposition.  These tests compare full structural snapshots across
``serial`` / ``thread`` / ``process`` on a seeded datagen workload and
on the edge cases (single window, empty middle window).

``max_workers=2`` is passed explicitly so the parallel merge path is
exercised even on single-CPU runners (the builder picks the merge path
by strategy, not by how many workers the pool actually got).
"""

from __future__ import annotations

from typing import Any, Dict

import pytest

from repro.common.executors import EXECUTOR_STRATEGIES, ExecutorConfig
from repro.core import (
    GenerationConfig,
    IncrementalTara,
    ParameterSetting,
    RecommendQuery,
    TaraExplorer,
    TaraKnowledgeBase,
    build_knowledge_base,
)
from repro.core.builder import PHASE_MERGE, PHASE_WORKERS
from repro.data import TransactionDatabase, WindowedDatabase
from repro.datagen import retail_dataset

PARALLEL = [s for s in EXECUTOR_STRATEGIES if s != "serial"]


def _config(strategy: str, **overrides: Any) -> GenerationConfig:
    defaults: Dict[str, Any] = dict(min_support=0.02, min_confidence=0.2)
    defaults.update(overrides)
    return GenerationConfig(
        executor=ExecutorConfig(strategy=strategy, max_workers=2), **defaults
    )


def snapshot(kb: TaraKnowledgeBase) -> Dict[str, Any]:
    """Everything the offline phase produces, in comparable form."""
    archive = kb.archive
    return {
        "rules": [
            (rid, kb.catalog.get(rid).antecedent, kb.catalog.get(rid).consequent)
            for rid in range(len(kb.catalog))
        ],
        # Byte-level: the varint-encoded per-rule archive series.
        "series": {rid: archive.encoded_series(rid) for rid in archive.rule_ids()},
        "window_sizes": [
            archive.window_size(w) for w in range(archive.window_count)
        ],
        "missing_bounds": [
            archive.missing_count_bound(w) for w in range(archive.window_count)
        ],
        # The EPS region decomposition: each window's distinct support and
        # confidence axes define the stable-region grid.
        "axes": [
            (s.window, tuple(s.supports), tuple(s.confidences)) for s in kb.slices
        ],
        "rules_in_window": kb.rules_in_window,
    }


@pytest.fixture(scope="module")
def retail_windows() -> WindowedDatabase:
    """Seeded datagen workload: 600 retail transactions in 6 windows."""
    database = retail_dataset(transaction_count=600, seed=7)
    return WindowedDatabase.partition_by_count(database, 6)


@pytest.fixture(scope="module")
def serial_kb(retail_windows) -> TaraKnowledgeBase:
    return build_knowledge_base(retail_windows, _config("serial"))


class TestExecutorDeterminism:
    @pytest.mark.parametrize("strategy", PARALLEL)
    def test_identical_to_serial(self, retail_windows, serial_kb, strategy):
        parallel_kb = build_knowledge_base(retail_windows, _config(strategy))
        assert snapshot(parallel_kb) == snapshot(serial_kb)

    @pytest.mark.parametrize("strategy", PARALLEL)
    def test_identical_region_recommendation(
        self, retail_windows, serial_kb, strategy
    ):
        parallel_kb = build_knowledge_base(retail_windows, _config(strategy))
        setting = ParameterSetting(0.03, 0.3)
        expected = TaraExplorer(serial_kb).execute(RecommendQuery(setting=setting))
        actual = TaraExplorer(parallel_kb).execute(RecommendQuery(setting=setting))
        assert actual.region == expected.region
        assert actual.neighbors == expected.neighbors

    @pytest.mark.parametrize("strategy", EXECUTOR_STRATEGIES)
    def test_single_window(self, strategy):
        database = retail_dataset(transaction_count=120, seed=3)
        windows = WindowedDatabase.partition_by_count(database, 1)
        kb = build_knowledge_base(windows, _config(strategy))
        serial = build_knowledge_base(windows, _config("serial"))
        assert kb.window_count == 1
        assert snapshot(kb) == snapshot(serial)

    @pytest.mark.parametrize("strategy", EXECUTOR_STRATEGIES)
    def test_empty_middle_window(self, strategy):
        # A timestamp gap leaves window 1 of the time partition empty;
        # an empty window is legal and must survive every strategy.
        itemlists = [[0, 1], [0, 1], [1, 2], [0, 2], [0, 1], [1, 2]]
        times = [0, 1, 2, 20, 21, 22]  # width 10 -> windows 0, 1 (empty), 2
        database = TransactionDatabase.from_itemlists(itemlists, times)
        windows = WindowedDatabase.partition_by_time(database, window_width=10)
        assert windows.window_count == 3
        assert windows.window_size(1) == 0
        config = _config(strategy, min_support=0.3, min_confidence=0.3)
        kb = build_knowledge_base(windows, config)
        serial = build_knowledge_base(
            windows, _config("serial", min_support=0.3, min_confidence=0.3)
        )
        assert kb.window_count == 3
        assert kb.rules_in_window[1] == []
        assert snapshot(kb) == snapshot(serial)

    @pytest.mark.parametrize("strategy", PARALLEL)
    def test_parallel_phase_accounting(self, retail_windows, strategy):
        kb = build_knowledge_base(retail_windows, _config(strategy))
        breakdown = kb.timer.breakdown()
        assert PHASE_MERGE in breakdown
        assert PHASE_WORKERS in breakdown
        # Pool wall-clock overlaps the worker-measured phases, so it must
        # stay out of the Figure 9 total.
        assert kb.timer.is_informational(PHASE_WORKERS)
        assert not kb.timer.is_informational(PHASE_MERGE)
        assert kb.timer.total >= breakdown[PHASE_MERGE]


class TestIncrementalParallelAppend:
    @pytest.mark.parametrize("strategy", PARALLEL)
    def test_publishes_match_serial_publishes(self, retail_windows, strategy):
        batches = [retail_windows.window(i) for i in range(retail_windows.window_count)]

        serial = IncrementalTara(_config("serial"))
        for batch in batches:
            serial.publish([batch])

        parallel = IncrementalTara(_config(strategy))
        # Two calls so the second exercises appends onto existing windows.
        parallel.publish(batches[:2])
        snapshot_after = parallel.publish(batches[2:])

        assert snapshot_after.epoch == len(batches)
        assert parallel.window_count == serial.window_count
        assert snapshot(parallel.knowledge_base) == snapshot(serial.knowledge_base)
