"""Parametric locations: exact coordinates and Lemma 2 grouping."""

from fractions import Fraction

import pytest

from repro.common.errors import ValidationError
from repro.core.locations import (
    Location,
    distinct_axes,
    group_by_location,
    location_of,
)
from repro.mining.rules import Rule, ScoredRule


def scored(rule_id, rule_count, antecedent_count, window_size, items=((1,), (2,))):
    return ScoredRule(
        rule_id=rule_id,
        rule=Rule(*items),
        support=rule_count / window_size,
        confidence=rule_count / antecedent_count,
        rule_count=rule_count,
        antecedent_count=antecedent_count,
        window_size=window_size,
    )


class TestLocation:
    def test_exact_fraction_coordinates(self):
        location = Location(Fraction(1, 3), Fraction(2, 3))
        assert location.support_float == pytest.approx(1 / 3)
        assert location.confidence_float == pytest.approx(2 / 3)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            Location(Fraction(3, 2), Fraction(1, 2))

    def test_dominates_is_componentwise_leq(self):
        weaker = Location(Fraction(1, 10), Fraction(1, 10))
        stronger = Location(Fraction(1, 5), Fraction(1, 2))
        assert weaker.dominates(stronger)
        assert not stronger.dominates(weaker)
        assert weaker.dominates(weaker)

    def test_incomparable_locations(self):
        a = Location(Fraction(1, 10), Fraction(1, 2))
        b = Location(Fraction(1, 5), Fraction(1, 10))
        assert not a.dominates(b)
        assert not b.dominates(a)


class TestLocationOf:
    def test_uses_exact_counts(self):
        s = scored(0, rule_count=2, antecedent_count=4, window_size=11)
        location = location_of(s)
        assert location.support == Fraction(2, 11)
        assert location.confidence == Fraction(1, 2)

    def test_empty_window_rejected(self):
        s = ScoredRule(
            rule_id=0,
            rule=Rule((1,), (2,)),
            support=0.0,
            confidence=0.0,
            rule_count=0,
            antecedent_count=0,
            window_size=0,
        )
        with pytest.raises(ValidationError):
            location_of(s)


class TestGrouping:
    def test_equal_ratios_share_location(self):
        # 2/10 and 2/10 support; confidences 2/4 and 3/6 are both 1/2 --
        # different counts, identical exact values: one location.
        first = scored(0, 2, 4, 10)
        second = scored(1, 2, 6, 10)  # conf 1/3 -> different location
        third = scored(2, 2, 4, 10)
        groups = group_by_location([first, second, third])
        assert len(groups) == 2
        location = location_of(first)
        assert groups[location] == [0, 2]

    def test_reduced_fractions_group(self):
        # 3/6 and 2/4 are the same confidence value.
        first = scored(0, 3, 6, 12)  # supp 1/4, conf 1/2
        second = scored(1, 2, 4, 8)  # supp 1/4, conf 1/2 (different window n!)
        # Same-window grouping is the real use; this checks pure value math.
        groups = group_by_location([first])
        groups2 = group_by_location([second])
        assert list(groups) == list(groups2)

    def test_rule_ids_sorted_within_location(self):
        rules = [scored(5, 2, 4, 10), scored(1, 2, 4, 10), scored(3, 2, 4, 10)]
        groups = group_by_location(rules)
        (ids,) = groups.values()
        assert ids == [1, 3, 5]


class TestDistinctAxes:
    def test_sorted_unique_axes(self):
        locations = [
            Location(Fraction(1, 5), Fraction(1, 2)),
            Location(Fraction(1, 10), Fraction(1, 2)),
            Location(Fraction(1, 5), Fraction(3, 4)),
        ]
        supports, confidences = distinct_axes(locations)
        assert supports == [Fraction(1, 10), Fraction(1, 5)]
        assert confidences == [Fraction(1, 2), Fraction(3, 4)]

    def test_empty(self):
        assert distinct_axes([]) == ([], [])
