"""Roll-up semantics: exactness on counts, soundness of the bounds."""

import pytest

from repro.core import GenerationConfig, ParameterSetting, build_knowledge_base
from repro.core.rollup import max_support_error, rolled_up_mine
from repro.data.database import TransactionDatabase
from repro.data.periods import PeriodSpec
from repro.data.windows import WindowedDatabase
from repro.mining.apriori import mine_apriori
from repro.mining.rules import derive_rules
from tests.conftest import random_itemlists


@pytest.fixture(scope="module")
def windows() -> WindowedDatabase:
    itemlists = random_itemlists(seed=77, count=800, item_count=12, max_len=5)
    db = TransactionDatabase.from_itemlists(itemlists)
    return WindowedDatabase.partition_by_count(db, 4)


@pytest.fixture(scope="module")
def kb(windows):
    return build_knowledge_base(windows, GenerationConfig(0.01, 0.05))


def merged_oracle(windows, spec, min_support, min_confidence):
    """Mine the union of the spec's windows directly from raw data."""
    transactions = windows.transactions_for(spec)
    scored = derive_rules(mine_apriori(transactions, min_support), min_confidence)
    return {
        (s.rule.antecedent, s.rule.consequent): (s.support, s.confidence)
        for s in scored
    }


class TestExactness:
    def test_certain_rules_match_oracle_measures(self, windows, kb):
        """Rolled-up point estimates of fully-archived rules are exact."""
        spec = PeriodSpec([0, 1, 2, 3])
        setting = ParameterSetting(0.05, 0.3)
        answer = rolled_up_mine(kb, setting, spec)
        oracle = merged_oracle(windows, spec, 0.0, 0.0)
        for entry in answer.certain:
            if not entry.measure.is_exact:
                continue
            key = (entry.rule.antecedent, entry.rule.consequent)
            true_support, true_confidence = oracle[key]
            assert entry.measure.support == pytest.approx(true_support)
            assert entry.measure.confidence == pytest.approx(true_confidence)

    def test_certain_subset_of_possible(self, kb):
        answer = rolled_up_mine(kb, ParameterSetting(0.03, 0.2), PeriodSpec([0, 1]))
        certain_ids = {e.rule_id for e in answer.certain}
        possible_ids = {e.rule_id for e in answer.possible}
        assert certain_ids <= possible_ids

    def test_single_window_rollup_equals_slice_collect(self, kb):
        """On a one-window spec there is nothing to approximate."""
        setting = ParameterSetting(0.05, 0.3)
        answer = rolled_up_mine(kb, setting, PeriodSpec([2]))
        direct = kb.slice(2).collect(setting)
        assert sorted(e.rule_id for e in answer.certain) == direct


class TestSoundness:
    def test_oracle_rules_inside_possible(self, windows, kb):
        """Every rule truly qualifying on the merged data (and archived
        somewhere) must appear in the optimistic answer."""
        spec = PeriodSpec([0, 1, 2, 3])
        setting = ParameterSetting(0.04, 0.3)
        answer = rolled_up_mine(kb, setting, spec)
        possible_keys = {
            (e.rule.antecedent, e.rule.consequent) for e in answer.possible
        }
        candidates = {
            (kb.catalog.get(rid).antecedent, kb.catalog.get(rid).consequent)
            for rid in kb.candidate_rules(spec)
        }
        oracle = merged_oracle(windows, spec, 0.0, 0.0)
        for key, (true_support, true_confidence) in oracle.items():
            if key not in candidates:
                continue  # never archived anywhere: outside TARA's contract
            if (
                true_support >= setting.min_support
                and true_confidence >= setting.min_confidence
            ):
                assert key in possible_keys, key

    def test_bounds_bracket_truth(self, windows, kb):
        """True merged measures always lie inside [low, high]."""
        spec = PeriodSpec([0, 1, 2, 3])
        answer = rolled_up_mine(kb, ParameterSetting(0.01, 0.05), spec)
        oracle = merged_oracle(windows, spec, 0.0, 0.0)
        checked = 0
        for entry in answer.possible:
            key = (entry.rule.antecedent, entry.rule.consequent)
            if key not in oracle:
                continue
            true_support, true_confidence = oracle[key]
            measure = entry.measure
            assert measure.support_low <= true_support + 1e-12
            assert true_support <= measure.support_high + 1e-12
            assert measure.confidence_low <= true_confidence + 1e-12
            assert true_confidence <= measure.confidence_high + 1e-12
            checked += 1
        assert checked > 0

    def test_point_estimate_never_overestimates_support(self, windows, kb):
        """Archived counts are a lower bound on the true merged counts."""
        spec = PeriodSpec([0, 1, 2, 3])
        answer = rolled_up_mine(kb, ParameterSetting(0.01, 0.05), spec)
        oracle = merged_oracle(windows, spec, 0.0, 0.0)
        for entry in answer.possible:
            key = (entry.rule.antecedent, entry.rule.consequent)
            if key in oracle:
                assert entry.measure.support <= oracle[key][0] + 1e-12


class TestErrorBound:
    def test_max_error_formula(self, kb):
        spec = PeriodSpec([0, 1])
        expected = sum(
            max(kb.archive.missing_count_bound(w) - 1, 0) for w in spec
        ) / sum(kb.archive.window_size(w) for w in spec)
        assert max_support_error(kb.archive, spec) == pytest.approx(expected)

    def test_error_bounded_by_generation_thresholds(self, kb):
        error = max_support_error(kb.archive, PeriodSpec([0, 1, 2, 3]))
        assert error <= max(kb.config.min_support, kb.config.min_confidence) + 1e-9

    def test_answer_carries_bound(self, kb):
        answer = rolled_up_mine(kb, ParameterSetting(0.05, 0.3), PeriodSpec([0, 1]))
        assert answer.max_support_error == max_support_error(
            kb.archive, PeriodSpec([0, 1])
        )

    def test_is_exact_flag(self, kb):
        answer = rolled_up_mine(
            kb, ParameterSetting(0.2, 0.6), PeriodSpec([0, 1, 2, 3])
        )
        assert answer.is_exact == (
            {e.rule_id for e in answer.certain}
            == {e.rule_id for e in answer.possible}
        )
