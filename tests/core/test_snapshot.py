"""MVCC snapshot lifecycle: pinning, retirement, and view isolation."""

import json
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import QueryError, RetiredSnapshotError
from repro.core import (
    GenerationConfig,
    IncrementalTara,
    ParameterSetting,
    TrajectoryQuery,
    build_knowledge_base,
)
from repro.core.snapshot import Snapshot
from repro.data import TransactionDatabase, WindowedDatabase
from repro.serve.protocol import encode_answer

CONFIG = GenerationConfig(0.02, 0.1)
SETTING = ParameterSetting(0.05, 0.3)


@pytest.fixture()
def publisher(small_windows) -> IncrementalTara:
    incremental = IncrementalTara(CONFIG)
    incremental.publish([small_windows.window(0), small_windows.window(1)])
    return incremental


class TestPinLifecycle:
    def test_handle_pins_and_releases(self, publisher):
        snapshot = publisher.current
        assert snapshot.refs == 1  # the publisher's standing pin
        with publisher.snapshot() as pinned:
            assert pinned is snapshot
            assert snapshot.refs == 2
        assert snapshot.refs == 1
        assert not snapshot.retired

    def test_handle_release_is_idempotent(self, publisher):
        handle = publisher.snapshot()
        handle.release()
        handle.release()
        assert publisher.current.refs == 1

    def test_pin_after_retire_raises(self, publisher, small_windows):
        superseded = publisher.current
        publisher.publish([small_windows.window(2)])
        assert superseded.retired
        with pytest.raises(RetiredSnapshotError, match="retired"):
            superseded.pin()
        with pytest.raises(RetiredSnapshotError, match="retired"):
            superseded.explorer()

    def test_release_without_pin_raises(self, publisher, small_windows):
        superseded = publisher.current
        publisher.publish([small_windows.window(2)])
        with pytest.raises(RetiredSnapshotError, match="without a pin"):
            superseded.release()

    def test_epoch_zero_snapshot_has_no_explorer(self):
        incremental = IncrementalTara(CONFIG)
        with incremental.snapshot() as genesis:
            assert genesis.epoch == 0
            with pytest.raises(QueryError):
                genesis.explorer()


class TestRetirement:
    def test_segment_dies_with_the_snapshot(self, publisher, small_windows):
        snapshot = publisher.current
        snapshot.store((1, 2, 3), "answer")
        assert snapshot.cached((1, 2, 3)).value == "answer"
        assert snapshot.segment_info() == (1, 0)
        publisher.publish([small_windows.window(2)])
        assert snapshot.retired
        assert snapshot.cached((1, 2, 3)) is None
        assert snapshot.segment_info() == (0, 0)

    def test_store_after_retire_is_dropped(self, publisher, small_windows):
        snapshot = publisher.current
        publisher.publish([small_windows.window(2)])
        assert snapshot.store((1, 2, 3), "late answer") == 0
        assert snapshot.cached((1, 2, 3)) is None

    def test_reader_pin_defers_retirement(self, publisher, small_windows):
        handle = publisher.snapshot()
        superseded = handle.snapshot
        publisher.publish([small_windows.window(2)])
        # The publisher dropped its standing pin, but the reader's pin
        # keeps the superseded view fully queryable.
        assert not superseded.retired
        assert superseded.window_count == 2
        assert superseded.explorer().ruleset(SETTING, 0)
        handle.release()
        assert superseded.retired
        assert superseded.retire_count == 1

    def test_release_storm_retires_exactly_once(self, publisher, small_windows):
        handles = [publisher.snapshot() for _ in range(32)]
        superseded = handles[0].snapshot
        publisher.publish([small_windows.window(2)])
        barrier = threading.Barrier(8)

        def drain(chunk):
            barrier.wait()
            for handle in chunk:
                handle.release()

        threads = [
            threading.Thread(target=drain, args=(handles[i::8],))
            for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert superseded.retired
        assert superseded.retire_count == 1

    def test_retirement_callback_reports_dropped_entries(self, small_windows):
        dropped = []
        kb = build_knowledge_base(
            WindowedDatabase.partition_by_count(
                TransactionDatabase.from_itemlists(
                    [[0, 1], [0, 1], [1, 2], [0, 2]]
                ),
                2,
            ),
            CONFIG,
        )
        snapshot = Snapshot(2, kb, on_retire=dropped.append)
        snapshot.pin()
        snapshot.store((1,), "a")
        snapshot.store((2,), "b")
        snapshot.release()
        assert dropped == [2]


class TestViewIsolation:
    def test_pinned_query_during_publish(self, publisher, small_windows):
        """A reader holding a pin answers from its frozen view even while
        the publisher is mid-build on the successor."""
        results = {}
        in_query = threading.Event()
        finish_query = threading.Event()

        def reader():
            with publisher.snapshot() as snapshot:
                explorer = snapshot.explorer()
                in_query.set()
                finish_query.wait(timeout=5.0)
                results["windows"] = snapshot.window_count
                results["rules"] = explorer.ruleset(SETTING, 1)

        thread = threading.Thread(target=reader)
        thread.start()
        assert in_query.wait(timeout=5.0)
        publisher.publish([small_windows.window(2)])
        finish_query.set()
        thread.join()
        assert results["windows"] == 2
        assert publisher.window_count == 3
        expected_kb = build_knowledge_base(
            WindowedDatabase.partition_by_count(
                TransactionDatabase(
                    tuple(small_windows.window(0)) + tuple(small_windows.window(1))
                ),
                2,
            ),
            CONFIG,
        )
        expected = [
            (expected_kb.catalog.get(r).antecedent, expected_kb.catalog.get(r).consequent)
            for r in expected_kb.slice(1).collect(SETTING)
        ]
        publisher_kb = publisher.knowledge_base
        got = [
            (publisher_kb.catalog.get(r).antecedent, publisher_kb.catalog.get(r).consequent)
            for r in results["rules"]
        ]
        assert got == expected


transactions_strategy = st.lists(
    st.frozensets(st.integers(min_value=0, max_value=7), min_size=1, max_size=4),
    min_size=12,
    max_size=36,
)


@settings(max_examples=15, deadline=None)
@given(transactions_strategy, st.integers(min_value=2, max_value=4))
def test_snapshot_answers_are_byte_identical_to_serial_rebuild(
    transactions, window_count
):
    """The mid-ingest guarantee, property-tested: after any prefix of
    publishes, the pinned snapshot's encoded answer equals a fresh
    single-threaded build over the same windows, byte for byte."""
    db = TransactionDatabase.from_itemlists([sorted(t) for t in transactions])
    windows = WindowedDatabase.partition_by_count(db, window_count)
    config = GenerationConfig(0.0, 0.0)
    incremental = IncrementalTara(config)
    for index in range(windows.window_count):
        incremental.publish([windows.window(index)])
        with incremental.snapshot() as snapshot:
            query = TrajectoryQuery(
                setting=ParameterSetting(0.1, 0.2), anchor_window=index
            )
            served = json.dumps(
                encode_answer("Q1", snapshot.explorer().execute(query)),
                sort_keys=True,
            ).encode("utf-8")
        rebuilt_kb = build_knowledge_base(
            WindowedDatabase.partition_by_count(
                TransactionDatabase(
                    tuple(
                        t
                        for w in range(index + 1)
                        for t in windows.window(w)
                    )
                ),
                index + 1,
            ),
            config,
        )
        from repro.core import TaraExplorer

        rebuilt = json.dumps(
            encode_answer("Q1", TaraExplorer(rebuilt_kb).execute(query)),
            sort_keys=True,
        ).encode("utf-8")
        assert served == rebuilt
