"""Property-based archive validation against arithmetic oracles."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import CodecError
from repro.core.archive import TarArchive, _decode_series, _encode_series
from repro.data.periods import PeriodSpec
from repro.mining.rules import Rule, ScoredRule


def build_archive(per_window_entries, window_size=100, bound=5):
    """Archive from a list (per window) of {rule_id: (rc, ac, cc)}."""
    archive = TarArchive()
    for window, entries in enumerate(per_window_entries):
        archive.begin_window(window_size, bound)
        archive.record(
            window,
            [
                ScoredRule(
                    rule_id=rule_id,
                    rule=Rule((1,), (2,)),
                    support=rc / window_size,
                    confidence=rc / ac if ac else 0.0,
                    rule_count=rc,
                    antecedent_count=ac,
                    window_size=window_size,
                    consequent_count=cc,
                )
                for rule_id, (rc, ac, cc) in sorted(entries.items())
            ],
        )
    return archive


# Strategy: 1-6 windows, each containing a random subset of rules 0-4
# with consistent counts (rc <= ac, cc <= window size).
entry_strategy = st.tuples(
    st.integers(min_value=0, max_value=50),
    st.integers(min_value=0, max_value=50),
    st.integers(min_value=0, max_value=50),
).map(lambda t: (t[0], t[0] + t[1], t[0] + t[2]))

windows_strategy = st.lists(
    st.dictionaries(
        st.integers(min_value=0, max_value=4), entry_strategy, max_size=5
    ),
    min_size=1,
    max_size=6,
)


@settings(max_examples=60, deadline=None)
@given(windows_strategy)
def test_series_roundtrip_through_seal(per_window):
    archive = build_archive(per_window)
    before = {rid: archive.series(rid) for rid in archive.rule_ids()}
    archive.seal()
    after = {rid: archive.series(rid) for rid in archive.rule_ids()}
    assert before == after


@settings(max_examples=60, deadline=None)
@given(windows_strategy)
def test_rolled_up_counts_are_exact_sums(per_window):
    """For a fully-covered rule, roll-up equals the arithmetic sum."""
    archive = build_archive(per_window)
    spec = PeriodSpec(range(len(per_window)))
    for rule_id in archive.rule_ids():
        rolled = archive.rolled_up(rule_id, spec)
        expected_rc = sum(
            entries[rule_id][0] for entries in per_window if rule_id in entries
        )
        expected_ac = sum(
            entries[rule_id][1] for entries in per_window if rule_id in entries
        )
        assert rolled.rule_count == expected_rc
        assert rolled.antecedent_count == expected_ac
        present = [w for w, e in enumerate(per_window) if rule_id in e]
        assert rolled.windows_present == tuple(present)
        if len(present) == len(per_window):
            assert rolled.is_exact


@settings(max_examples=60, deadline=None)
@given(windows_strategy)
def test_bounds_bracket_point_estimates(per_window):
    archive = build_archive(per_window)
    spec = PeriodSpec(range(len(per_window)))
    for rule_id in archive.rule_ids():
        rolled = archive.rolled_up(rule_id, spec)
        assert rolled.support_low <= rolled.support <= rolled.support_high + 1e-12
        assert rolled.confidence_low <= rolled.confidence_high + 1e-12
        assert 0.0 <= rolled.support_high <= 1.0
        assert 0.0 <= rolled.confidence_high <= 1.0


class TestCorruptionHandling:
    """Failure injection: damaged sealed blobs must fail loudly."""

    def _valid_blob(self):
        return _encode_series([(0, 10, 20, 15), (2, 11, 21, 16)])

    def test_truncated_blob(self):
        blob = self._valid_blob()
        with pytest.raises(CodecError):
            _decode_series(blob[:-1])

    def test_random_bitflips_never_crash_silently(self):
        """Flipping bytes either decodes to *some* valid series or raises
        CodecError — never an unhandled exception or a negative count."""
        blob = bytearray(self._valid_blob())
        rng = random.Random(5)
        for _ in range(200):
            corrupted = bytearray(blob)
            position = rng.randrange(len(corrupted))
            corrupted[position] ^= 1 << rng.randrange(8)
            try:
                series = _decode_series(bytes(corrupted))
            except CodecError:
                continue
            for window, rc, ac, cc in series:
                assert rc >= 0 and ac >= rc and cc >= rc

    def test_garbage_blob(self):
        with pytest.raises(CodecError):
            # A lone continuation byte is a truncated varint.
            _decode_series(b"\x80")
