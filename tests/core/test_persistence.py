"""Knowledge-base persistence: save/load roundtrip fidelity, both formats."""

import json

import pytest

from repro.common.errors import DataFormatError
from repro.core import (
    ContentQuery,
    LazyTaraKnowledgeBase,
    ParameterSetting,
    RollupQuery,
    TaraExplorer,
)
from repro.core.persistence import (
    DEFAULT_FORMAT_VERSION,
    FORMAT_VERSION,
    load_knowledge_base,
    save_knowledge_base,
)
from repro.data import PeriodSpec

FORMATS = [FORMAT_VERSION, DEFAULT_FORMAT_VERSION]


def _save(kb, path, format_version):
    if format_version == FORMAT_VERSION:
        # Writing the legacy eager format warns (once per process; the
        # autouse registry reset makes that once per test).
        with pytest.warns(DeprecationWarning, match="v1 JSON format"):
            return save_knowledge_base(kb, path, format_version=format_version)
    return save_knowledge_base(kb, path, format_version=format_version)


@pytest.fixture(params=FORMATS, ids=["v1", "v2"])
def saved_path(request, small_kb, tmp_path):
    path = tmp_path / "kb.tara"
    _save(small_kb, path, request.param)
    return path


@pytest.fixture()
def saved_v1_path(small_kb, tmp_path):
    path = tmp_path / "kb.json"
    _save(small_kb, path, FORMAT_VERSION)
    return path


class TestRoundtrip:
    @pytest.mark.parametrize("format_version", FORMATS, ids=["v1", "v2"])
    def test_file_written(self, small_kb, tmp_path, format_version):
        path = tmp_path / "kb.tara"
        written = _save(small_kb, path, format_version)
        assert written == path.stat().st_size
        assert written > 0

    def test_default_write_format_is_v2(self, small_kb, tmp_path):
        path = tmp_path / "kb.tara"
        save_knowledge_base(small_kb, path)  # must not warn (v2 default)
        assert isinstance(load_knowledge_base(path), LazyTaraKnowledgeBase)

    def test_unknown_format_version_rejected(self, small_kb, tmp_path):
        with pytest.raises(DataFormatError, match="format version"):
            save_knowledge_base(small_kb, tmp_path / "kb.tara", format_version=7)

    def test_config_restored(self, small_kb, saved_path):
        loaded = load_knowledge_base(saved_path)
        assert loaded.config == small_kb.config

    def test_catalog_restored_in_order(self, small_kb, saved_path):
        loaded = load_knowledge_base(saved_path)
        assert len(loaded.catalog) == len(small_kb.catalog)
        for rule_id in range(len(small_kb.catalog)):
            assert loaded.catalog.get(rule_id) == small_kb.catalog.get(rule_id)

    def test_archive_series_identical(self, small_kb, saved_path):
        loaded = load_knowledge_base(saved_path)
        for rule_id in small_kb.archive.rule_ids():
            original = [
                (m.window, m.rule_count, m.antecedent_count)
                for m in small_kb.archive.series(rule_id)
            ]
            restored = [
                (m.window, m.rule_count, m.antecedent_count)
                for m in loaded.archive.series(rule_id)
            ]
            assert original == restored

    def test_encoded_series_byte_identical(self, small_kb, saved_path):
        loaded = load_knowledge_base(saved_path)
        assert sorted(loaded.archive.rule_ids()) == sorted(
            small_kb.archive.rule_ids()
        )
        for rule_id in small_kb.archive.rule_ids():
            assert loaded.archive.encoded_series(
                rule_id
            ) == small_kb.archive.encoded_series(rule_id)

    def test_every_query_answer_identical(self, small_kb, saved_path):
        loaded = load_knowledge_base(saved_path)
        original_explorer = TaraExplorer(small_kb)
        loaded_explorer = TaraExplorer(loaded)
        for supp, conf in [(0.02, 0.1), (0.05, 0.3), (0.1, 0.5)]:
            setting = ParameterSetting(supp, conf)
            for window in range(small_kb.window_count):
                assert original_explorer.ruleset(
                    setting, window
                ) == loaded_explorer.ruleset(setting, window)

    def test_item_index_rebuilt_when_configured(self, small_kb, saved_path):
        loaded = load_knowledge_base(saved_path)
        assert loaded.slice(0).has_item_index == small_kb.slice(0).has_item_index
        if loaded.slice(0).has_item_index:
            setting = ParameterSetting(0.05, 0.3)
            explorer = TaraExplorer(loaded)
            original = TaraExplorer(small_kb)
            query = ContentQuery(
                setting=setting, items=(3,), spec=PeriodSpec([1])
            )
            assert explorer.execute(query) == original.execute(query)

    def test_rollup_identical(self, small_kb, saved_path):
        loaded = load_knowledge_base(saved_path)
        spec = PeriodSpec(range(small_kb.window_count))
        setting = ParameterSetting(0.03, 0.2)
        query = RollupQuery(setting=setting, spec=spec)
        original = TaraExplorer(small_kb).execute(query)
        restored = TaraExplorer(loaded).execute(query)
        assert [e.rule_id for e in original.certain] == [
            e.rule_id for e in restored.certain
        ]
        assert original.max_support_error == restored.max_support_error

    def test_candidate_rules_identical(self, small_kb, saved_path):
        loaded = load_knowledge_base(saved_path)
        spec = PeriodSpec(range(small_kb.window_count))
        assert loaded.candidate_rules(spec) == small_kb.candidate_rules(spec)

    def test_convert_v1_to_v2_round_trip(self, small_kb, saved_v1_path, tmp_path):
        eager = load_knowledge_base(saved_v1_path)
        v2_path = tmp_path / "kb.tara2"
        save_knowledge_base(eager, v2_path)
        lazy = load_knowledge_base(v2_path)
        assert isinstance(lazy, LazyTaraKnowledgeBase)
        for rule_id in small_kb.archive.rule_ids():
            assert lazy.archive.encoded_series(
                rule_id
            ) == small_kb.archive.encoded_series(rule_id)


class TestErrorHandling:
    def test_missing_file(self, tmp_path):
        with pytest.raises(DataFormatError):
            load_knowledge_base(tmp_path / "nope.json")

    def test_missing_file_chains_cause(self, tmp_path):
        # R003 regression: the OSError must survive as __cause__ so the
        # operator sees *why* the file was unreadable, not just that it was.
        with pytest.raises(DataFormatError) as excinfo:
            load_knowledge_base(tmp_path / "nope.json")
        assert isinstance(excinfo.value.__cause__, OSError)

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("this is not json")
        with pytest.raises(DataFormatError):
            load_knowledge_base(path)

    def test_garbage_file_chains_cause(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("this is not json")
        with pytest.raises(DataFormatError) as excinfo:
            load_knowledge_base(path)
        assert isinstance(excinfo.value.__cause__, json.JSONDecodeError)

    def test_wrong_version(self, saved_v1_path):
        payload = json.loads(saved_v1_path.read_text())
        payload["format_version"] = 3
        saved_v1_path.write_text(json.dumps(payload))
        with pytest.raises(DataFormatError, match="format version"):
            load_knowledge_base(saved_v1_path)

    def test_inconsistent_windows(self, saved_v1_path):
        payload = json.loads(saved_v1_path.read_text())
        payload["window_sizes"] = payload["window_sizes"][:-1]
        saved_v1_path.write_text(json.dumps(payload))
        with pytest.raises(DataFormatError, match="inconsistent"):
            load_knowledge_base(saved_v1_path)

    def test_missing_config_key(self, saved_v1_path):
        payload = json.loads(saved_v1_path.read_text())
        del payload["config"]["miner"]
        saved_v1_path.write_text(json.dumps(payload))
        with pytest.raises(DataFormatError, match="config"):
            load_knowledge_base(saved_v1_path)
