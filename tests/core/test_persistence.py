"""Knowledge-base persistence: save/load roundtrip fidelity."""

import json

import pytest

from repro.common.errors import DataFormatError
from repro.core import (
    ContentQuery,
    ParameterSetting,
    RollupQuery,
    TaraExplorer,
)
from repro.core.persistence import (
    FORMAT_VERSION,
    load_knowledge_base,
    save_knowledge_base,
)
from repro.data import PeriodSpec


@pytest.fixture()
def saved_path(small_kb, tmp_path):
    path = tmp_path / "kb.json"
    save_knowledge_base(small_kb, path)
    return path


class TestRoundtrip:
    def test_file_written(self, small_kb, tmp_path):
        path = tmp_path / "kb.json"
        written = save_knowledge_base(small_kb, path)
        assert written == path.stat().st_size
        assert written > 0

    def test_config_restored(self, small_kb, saved_path):
        loaded = load_knowledge_base(saved_path)
        assert loaded.config == small_kb.config

    def test_catalog_restored_in_order(self, small_kb, saved_path):
        loaded = load_knowledge_base(saved_path)
        assert len(loaded.catalog) == len(small_kb.catalog)
        for rule_id in range(len(small_kb.catalog)):
            assert loaded.catalog.get(rule_id) == small_kb.catalog.get(rule_id)

    def test_archive_series_identical(self, small_kb, saved_path):
        loaded = load_knowledge_base(saved_path)
        for rule_id in small_kb.archive.rule_ids():
            original = [
                (m.window, m.rule_count, m.antecedent_count)
                for m in small_kb.archive.series(rule_id)
            ]
            restored = [
                (m.window, m.rule_count, m.antecedent_count)
                for m in loaded.archive.series(rule_id)
            ]
            assert original == restored

    def test_every_query_answer_identical(self, small_kb, saved_path):
        loaded = load_knowledge_base(saved_path)
        original_explorer = TaraExplorer(small_kb)
        loaded_explorer = TaraExplorer(loaded)
        for supp, conf in [(0.02, 0.1), (0.05, 0.3), (0.1, 0.5)]:
            setting = ParameterSetting(supp, conf)
            for window in range(small_kb.window_count):
                assert original_explorer.ruleset(
                    setting, window
                ) == loaded_explorer.ruleset(setting, window)

    def test_item_index_rebuilt_when_configured(self, small_kb, saved_path):
        loaded = load_knowledge_base(saved_path)
        assert loaded.slice(0).has_item_index == small_kb.slice(0).has_item_index
        if loaded.slice(0).has_item_index:
            setting = ParameterSetting(0.05, 0.3)
            explorer = TaraExplorer(loaded)
            original = TaraExplorer(small_kb)
            query = ContentQuery(
                setting=setting, items=(3,), spec=PeriodSpec([1])
            )
            assert explorer.execute(query) == original.execute(query)

    def test_rollup_identical(self, small_kb, saved_path):
        loaded = load_knowledge_base(saved_path)
        spec = PeriodSpec(range(small_kb.window_count))
        setting = ParameterSetting(0.03, 0.2)
        query = RollupQuery(setting=setting, spec=spec)
        original = TaraExplorer(small_kb).execute(query)
        restored = TaraExplorer(loaded).execute(query)
        assert [e.rule_id for e in original.certain] == [
            e.rule_id for e in restored.certain
        ]
        assert original.max_support_error == restored.max_support_error


class TestErrorHandling:
    def test_missing_file(self, tmp_path):
        with pytest.raises(DataFormatError):
            load_knowledge_base(tmp_path / "nope.json")

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("this is not json")
        with pytest.raises(DataFormatError):
            load_knowledge_base(path)

    def test_wrong_version(self, saved_path):
        payload = json.loads(saved_path.read_text())
        payload["format_version"] = FORMAT_VERSION + 1
        saved_path.write_text(json.dumps(payload))
        with pytest.raises(DataFormatError, match="format version"):
            load_knowledge_base(saved_path)

    def test_inconsistent_windows(self, saved_path):
        payload = json.loads(saved_path.read_text())
        payload["window_sizes"] = payload["window_sizes"][:-1]
        saved_path.write_text(json.dumps(payload))
        with pytest.raises(DataFormatError, match="inconsistent"):
            load_knowledge_base(saved_path)
