"""Stable regions and the WindowSlice index: collection, regions, neighbors."""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import QueryError
from repro.core.locations import Location, group_by_location
from repro.core.regions import ParameterSetting, WindowSlice
from repro.mining.apriori import mine_apriori
from repro.mining.rules import RuleCatalog, derive_rules


def build_slice(transactions, gen_supp=0.0, gen_conf=0.0, item_index=False):
    """Mine a transaction list and index the scored rules into a slice."""
    catalog = RuleCatalog()
    scored = derive_rules(mine_apriori(transactions, gen_supp), gen_conf, catalog=catalog)
    groups = group_by_location(scored)
    source = {s.rule_id: s.rule.items for s in scored} if item_index else None
    window_slice = WindowSlice(
        0,
        groups,
        generation_setting=ParameterSetting(gen_supp, gen_conf),
        item_index_source=source,
    )
    return window_slice, scored, catalog


TRANSACTIONS = [
    (1, 3, 4),
    (2, 3, 5),
    (1, 2, 3, 5),
    (2, 5),
    (1, 2, 3, 5),
    (1, 4),
    (3, 5),
    (2, 3),
]


def brute_collect(scored, setting):
    return sorted(
        s.rule_id
        for s in scored
        if s.support >= setting.min_support
        and s.confidence >= setting.min_confidence
    )


class TestParameterSetting:
    def test_valid(self):
        setting = ParameterSetting(0.1, 0.5)
        assert setting.min_support == 0.1

    @pytest.mark.parametrize("supp,conf", [(-0.1, 0.5), (0.5, 1.5), ("a", 0.5)])
    def test_invalid_rejected(self, supp, conf):
        with pytest.raises(Exception):
            ParameterSetting(supp, conf)


class TestCollect:
    @pytest.mark.parametrize(
        "supp,conf",
        [(0.0, 0.0), (0.125, 0.3), (0.25, 0.5), (0.25, 0.8), (0.5, 0.5), (0.9, 0.9)],
    )
    def test_matches_brute_force_filter(self, supp, conf):
        window_slice, scored, _ = build_slice(TRANSACTIONS)
        setting = ParameterSetting(supp, conf)
        assert window_slice.collect(setting) == brute_collect(scored, setting)

    def test_bfs_equals_scan(self):
        window_slice, scored, _ = build_slice(TRANSACTIONS)
        for supp, conf in [(0.0, 0.0), (0.2, 0.4), (0.3, 0.7), (1.0, 1.0)]:
            setting = ParameterSetting(supp, conf)
            assert window_slice.collect_bfs(setting) == window_slice.collect(setting)

    def test_query_below_generation_threshold_rejected(self):
        window_slice, _, _ = build_slice(TRANSACTIONS, gen_supp=0.2, gen_conf=0.3)
        with pytest.raises(QueryError, match="generation thresholds"):
            window_slice.collect(ParameterSetting(0.1, 0.5))
        with pytest.raises(QueryError):
            window_slice.collect(ParameterSetting(0.3, 0.1))

    def test_empty_window(self):
        window_slice = WindowSlice(
            0, {}, generation_setting=ParameterSetting(0.0, 0.0)
        )
        assert window_slice.collect(ParameterSetting(0.5, 0.5)) == []
        assert window_slice.rule_count == 0

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.frozensets(st.integers(min_value=0, max_value=6), min_size=1, max_size=4),
            min_size=2,
            max_size=25,
        ),
        st.floats(min_value=0, max_value=1),
        st.floats(min_value=0, max_value=1),
    )
    def test_collect_equals_filter_property(self, transactions, supp, conf):
        window_slice, scored, _ = build_slice(transactions)
        setting = ParameterSetting(supp, conf)
        assert window_slice.collect(setting) == brute_collect(scored, setting)
        assert window_slice.collect_bfs(setting) == brute_collect(scored, setting)


class TestStableRegion:
    def test_region_contains_its_setting(self):
        window_slice, _, _ = build_slice(TRANSACTIONS)
        setting = ParameterSetting(0.3, 0.6)
        region = window_slice.region_for(setting)
        assert region.contains(setting)

    def test_same_ruleset_anywhere_in_region(self):
        """The defining property (Definition 11): any setting inside the
        region produces the identical ruleset."""
        window_slice, scored, _ = build_slice(TRANSACTIONS)
        rng = random.Random(5)
        for _ in range(25):
            setting = ParameterSetting(rng.random(), rng.random())
            region = window_slice.region_for(setting)
            reference = window_slice.collect(setting)
            # Probe several points inside the region's half-open box.
            supp_hi = (
                float(region.cut.support) if region.cut else 1.0
            )
            conf_hi = (
                float(region.cut.confidence) if region.cut else 1.0
            )
            supp_lo = float(region.support_floor)
            conf_lo = float(region.confidence_floor)
            for alpha in (0.25, 0.75, 1.0):
                probe_supp = supp_lo + (supp_hi - supp_lo) * alpha
                probe_conf = conf_lo + (conf_hi - conf_lo) * alpha
                if probe_supp <= supp_lo or probe_conf <= conf_lo:
                    continue
                probe = ParameterSetting(min(probe_supp, 1.0), min(probe_conf, 1.0))
                assert window_slice.collect(probe) == reference

    def test_cut_location_on_grid(self):
        window_slice, _, _ = build_slice(TRANSACTIONS)
        region = window_slice.region_for(ParameterSetting(0.3, 0.4))
        assert region.cut is not None
        assert region.cut.support in window_slice.supports
        assert region.cut.confidence in window_slice.confidences

    def test_empty_region_above_all_locations(self):
        window_slice, _, _ = build_slice(TRANSACTIONS)
        region = window_slice.region_for(ParameterSetting(0.99, 0.99))
        assert region.is_empty
        assert region.ruleset_size == 0

    def test_ruleset_size_matches_collect(self):
        window_slice, _, _ = build_slice(TRANSACTIONS)
        for supp, conf in [(0.1, 0.2), (0.25, 0.5), (0.6, 0.3)]:
            setting = ParameterSetting(supp, conf)
            region = window_slice.region_for(setting)
            assert region.ruleset_size == len(window_slice.collect(setting))


class TestNeighborRegions:
    def test_looser_neighbors_grow_ruleset(self):
        window_slice, _, _ = build_slice(TRANSACTIONS)
        setting = ParameterSetting(0.3, 0.5)
        region = window_slice.region_for(setting)
        neighbors = window_slice.neighbor_regions(setting)
        for direction in ("looser_support", "looser_confidence"):
            if direction in neighbors:
                assert neighbors[direction].ruleset_size >= region.ruleset_size

    def test_tighter_neighbors_shrink_ruleset(self):
        window_slice, _, _ = build_slice(TRANSACTIONS)
        setting = ParameterSetting(0.2, 0.3)
        region = window_slice.region_for(setting)
        neighbors = window_slice.neighbor_regions(setting)
        for direction in ("tighter_support", "tighter_confidence"):
            if direction in neighbors:
                assert neighbors[direction].ruleset_size <= region.ruleset_size

    def test_no_looser_neighbor_at_space_edge(self):
        window_slice, _, _ = build_slice(TRANSACTIONS)
        # Below the smallest location on both axes: nothing looser exists.
        neighbors = window_slice.neighbor_regions(ParameterSetting(0.0, 0.0))
        assert "looser_support" not in neighbors
        assert "looser_confidence" not in neighbors

    def test_neighbors_step_exactly_one_rank(self):
        """Rank-native neighbors: each direction moves one grid step."""
        window_slice, _, _ = build_slice(TRANSACTIONS)
        setting = ParameterSetting(0.3, 0.5)
        si, ci = window_slice.region_ranks(setting)
        neighbors = window_slice.neighbor_regions(setting)
        expected = {
            "looser_support": (si - 1, ci),
            "tighter_support": (si + 1, ci),
            "looser_confidence": (si, ci - 1),
            "tighter_confidence": (si, ci + 1),
        }
        for direction, (nsi, nci) in expected.items():
            assert direction in neighbors
            assert neighbors[direction] == window_slice.region_at_ranks(nsi, nci)

    def test_neighbors_resolve_float_colliding_axis_values(self):
        """Adjacent axis values equal in float space stay distinct.

        The old implementation probed neighbors by round-tripping the
        axis value through a float setting, which cannot tell these two
        confidences apart; the rank-native construction can.
        """
        groups = {
            Location(Fraction(1, 2), Fraction(333333333333, 10**12)): [0],
            Location(Fraction(1, 2), Fraction(1, 3)): [1],
            Location(Fraction(3, 4), Fraction(1, 2)): [2],
        }
        window_slice = WindowSlice(
            0, groups, generation_setting=ParameterSetting(0.0, 0.0)
        )
        setting = ParameterSetting(0.5, 0.2)
        neighbors = window_slice.neighbor_regions(setting)
        tighter = neighbors["tighter_confidence"]
        assert tighter.cut is not None
        # One rank up from confidence rank 0 is exactly 1/3, not the
        # float-indistinguishable 333333333333/10**12 below it.
        assert tighter.cut.confidence == Fraction(1, 3)
        assert tighter.support_floor == Fraction(333333333333, 10**12) or (
            tighter.confidence_floor == Fraction(333333333333, 10**12)
        )

    def test_region_at_ranks_rejects_out_of_grid(self):
        window_slice, _, _ = build_slice(TRANSACTIONS)
        with pytest.raises(QueryError, match="cut ranks"):
            window_slice.region_at_ranks(-1, 0)
        with pytest.raises(QueryError, match="cut ranks"):
            window_slice.region_at_ranks(0, len(window_slice.confidences) + 1)


class TestItemIndex:
    def test_content_query_filters_by_item(self):
        window_slice, scored, catalog = build_slice(TRANSACTIONS, item_index=True)
        setting = ParameterSetting(0.2, 0.4)
        with_item = window_slice.collect_items(setting, [5])
        all_rules = window_slice.collect(setting)
        expected = [
            rid for rid in all_rules if 5 in catalog.get(rid).items
        ]
        assert with_item == expected

    def test_multiple_items_is_union(self):
        window_slice, scored, catalog = build_slice(TRANSACTIONS, item_index=True)
        setting = ParameterSetting(0.1, 0.2)
        both = set(window_slice.collect_items(setting, [1, 4]))
        only_1 = set(window_slice.collect_items(setting, [1]))
        only_4 = set(window_slice.collect_items(setting, [4]))
        assert both == only_1 | only_4

    def test_without_index_raises(self):
        window_slice, _, _ = build_slice(TRANSACTIONS, item_index=False)
        assert not window_slice.has_item_index
        with pytest.raises(QueryError, match="TARA-S"):
            window_slice.collect_items(ParameterSetting(0.1, 0.1), [1])

    def test_unknown_item_yields_empty(self):
        window_slice, _, _ = build_slice(TRANSACTIONS, item_index=True)
        assert window_slice.collect_items(ParameterSetting(0.1, 0.1), [999]) == []


class TestLocationsIterator:
    def test_every_rule_appears_exactly_once(self):
        window_slice, scored, _ = build_slice(TRANSACTIONS)
        seen = []
        for _, rule_ids in window_slice.locations():
            seen.extend(rule_ids)
        assert sorted(seen) == sorted(s.rule_id for s in scored)

    def test_locations_carry_exact_fractions(self):
        window_slice, scored, _ = build_slice(TRANSACTIONS)
        by_id = {s.rule_id: s for s in scored}
        for location, rule_ids in window_slice.locations():
            for rule_id in rule_ids:
                s = by_id[rule_id]
                assert location.support == Fraction(s.rule_count, s.window_size)
                assert location.confidence == Fraction(
                    s.rule_count, s.antecedent_count
                )


class TestRegionRulesetLookup:
    """collect() resolves through the memoized per-region ruleset."""

    def test_collect_matches_bfs_over_grid(self, small_kb):
        """Staircase scan and paper-literal BFS agree at every grid point."""
        for window in range(small_kb.window_count):
            window_slice = small_kb.slice(window)
            for min_support in (0.02, 0.03, 0.05, 0.08, 0.12):
                for min_confidence in (0.1, 0.3, 0.5, 0.7):
                    setting = ParameterSetting(min_support, min_confidence)
                    assert window_slice.collect(setting) == window_slice.collect_bfs(
                        setting
                    ), (window, setting)

    def test_region_ruleset_is_memoized(self, small_kb):
        window_slice = small_kb.slice(0)
        si, ci = window_slice.region_ranks(ParameterSetting(0.05, 0.3))
        first = window_slice.ruleset_for_region(si, ci)
        assert window_slice.ruleset_for_region(si, ci) is first

    def test_settings_in_one_region_share_the_memo(self, small_kb):
        window_slice = small_kb.slice(0)
        setting = ParameterSetting(0.05, 0.3)
        region = window_slice.region_for(setting)
        assert region.cut is not None
        nudged = ParameterSetting(
            float((region.support_floor + region.cut.support) / 2),
            float((region.confidence_floor + region.cut.confidence) / 2),
        )
        assert window_slice.region_ranks(nudged) == window_slice.region_ranks(setting)
        assert window_slice.collect(nudged) == window_slice.collect(setting)
