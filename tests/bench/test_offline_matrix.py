"""``run_matrix``'s fingerprint gates, unit-tested with stubbed cells."""

import pytest

from repro.bench import offline
from repro.common.errors import ValidationError


def _fake_cells(fingerprint_of):
    """A ``_run_cell`` stand-in whose fingerprint is computed per cell."""

    def fake_run_cell(dataset, miner, strategy, workers, repeat):
        return {
            "dataset": dataset,
            "transactions": 10,
            "windows": 2,
            "miner": miner,
            "strategy": strategy,
            "workers": 1,
            "wall_seconds": 1.0,
            "phases": {},
            "rules": 1,
            "archive_entries": 1,
            "archive_bytes": 1,
            "fingerprint": fingerprint_of(miner, strategy),
        }

    return fake_run_cell


def test_equal_fingerprints_pass(monkeypatch):
    monkeypatch.setattr(
        offline, "_run_cell", _fake_cells(lambda miner, strategy: "same")
    )
    results, speedups = offline.run_matrix(
        ["retail"], ["apriori", "vertical"], ["serial", "thread"], None, 1
    )
    assert len(results) == 4
    assert len(speedups) == 2


def test_cross_miner_divergence_aborts(monkeypatch):
    monkeypatch.setattr(
        offline, "_run_cell", _fake_cells(lambda miner, strategy: miner)
    )
    with pytest.raises(ValidationError, match="vertical build of retail diverged"):
        offline.run_matrix(
            ["retail"], ["apriori", "vertical"], ["serial"], None, 1
        )


def test_parallel_divergence_aborts_before_cross_miner_check(monkeypatch):
    monkeypatch.setattr(
        offline, "_run_cell", _fake_cells(lambda miner, strategy: strategy)
    )
    with pytest.raises(ValidationError, match="thread build of retail/apriori"):
        offline.run_matrix(
            ["retail"], ["apriori", "vertical"], ["serial", "thread"], None, 1
        )


def test_cross_miner_check_skipped_without_serial_cells(monkeypatch):
    """Without a serial twin there is no reference; the matrix still runs
    (this mirrors the existing behavior of the speedup computation)."""
    monkeypatch.setattr(
        offline, "_run_cell", _fake_cells(lambda miner, strategy: miner)
    )
    results, speedups = offline.run_matrix(
        ["retail"], ["apriori", "vertical"], ["thread"], None, 1
    )
    assert len(results) == 2
    assert speedups == []

class TestPhaseSummaryMarkdown:
    CELLS = [
        {
            "dataset": "retail",
            "miner": "vertical",
            "strategy": "serial",
            "wall_seconds": 1.23456,
            "phases": {
                "frequent itemset generation": 0.5,
                "rule derivation": 0.25,
                "EPS index update": 0.125,
            },
        },
        {
            "dataset": "retail",
            "miner": "vertical",
            "strategy": "thread",
            "wall_seconds": 0.9,
            "phases": {
                "frequent itemset generation": 0.4,
                "worker pool wall-clock": 0.3,
            },
        },
    ]

    def test_one_row_per_cell_one_column_per_phase(self):
        text = offline.phase_summary_markdown(self.CELLS)
        lines = text.splitlines()
        header = next(line for line in lines if line.startswith("| dataset"))
        # Union of phase names, first-seen order.
        assert header == (
            "| dataset | miner | strategy | wall | "
            "frequent itemset generation | rule derivation | "
            "EPS index update | worker pool wall-clock |"
        )
        rows = [line for line in lines if line.startswith("| retail")]
        assert rows[0] == (
            "| retail | vertical | serial | 1.2346 | "
            "0.5000 | 0.2500 | 0.1250 | — |"
        )
        assert rows[1] == (
            "| retail | vertical | thread | 0.9000 | "
            "0.4000 | — | — | 0.3000 |"
        )

    def test_empty_results_still_render(self):
        text = offline.phase_summary_markdown([])
        assert text.startswith("## repro bench")

    def test_summary_out_appends_markdown(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            offline, "_run_cell", _fake_cells(lambda miner, strategy: "same")
        )
        summary = tmp_path / "summary.md"
        summary.write_text("existing\n", encoding="utf-8")
        out = tmp_path / "bench.json"
        args = __import__("argparse").Namespace(
            quick=True,
            datasets=["retail"],
            out=str(out),
            repeat=1,
            workers=None,
            strategies=["serial"],
            miners=["vertical"],
            summary_out=str(summary),
        )
        assert offline.run_bench(args) == 0
        text = summary.read_text(encoding="utf-8")
        assert text.startswith("existing\n## repro bench")
        assert "| retail | vertical | serial |" in text
