"""``run_matrix``'s fingerprint gates, unit-tested with stubbed cells."""

import pytest

from repro.bench import offline
from repro.common.errors import ValidationError


def _fake_cells(fingerprint_of):
    """A ``_run_cell`` stand-in whose fingerprint is computed per cell."""

    def fake_run_cell(dataset, miner, strategy, workers, repeat):
        return {
            "dataset": dataset,
            "transactions": 10,
            "windows": 2,
            "miner": miner,
            "strategy": strategy,
            "workers": 1,
            "wall_seconds": 1.0,
            "phases": {},
            "rules": 1,
            "archive_entries": 1,
            "archive_bytes": 1,
            "fingerprint": fingerprint_of(miner, strategy),
        }

    return fake_run_cell


def test_equal_fingerprints_pass(monkeypatch):
    monkeypatch.setattr(
        offline, "_run_cell", _fake_cells(lambda miner, strategy: "same")
    )
    results, speedups = offline.run_matrix(
        ["retail"], ["apriori", "vertical"], ["serial", "thread"], None, 1
    )
    assert len(results) == 4
    assert len(speedups) == 2


def test_cross_miner_divergence_aborts(monkeypatch):
    monkeypatch.setattr(
        offline, "_run_cell", _fake_cells(lambda miner, strategy: miner)
    )
    with pytest.raises(ValidationError, match="vertical build of retail diverged"):
        offline.run_matrix(
            ["retail"], ["apriori", "vertical"], ["serial"], None, 1
        )


def test_parallel_divergence_aborts_before_cross_miner_check(monkeypatch):
    monkeypatch.setattr(
        offline, "_run_cell", _fake_cells(lambda miner, strategy: strategy)
    )
    with pytest.raises(ValidationError, match="thread build of retail/apriori"):
        offline.run_matrix(
            ["retail"], ["apriori", "vertical"], ["serial", "thread"], None, 1
        )


def test_cross_miner_check_skipped_without_serial_cells(monkeypatch):
    """Without a serial twin there is no reference; the matrix still runs
    (this mirrors the existing behavior of the speedup computation)."""
    monkeypatch.setattr(
        offline, "_run_cell", _fake_cells(lambda miner, strategy: miner)
    )
    results, speedups = offline.run_matrix(
        ["retail"], ["apriori", "vertical"], ["thread"], None, 1
    )
    assert len(results) == 2
    assert speedups == []
