"""Varint codec: roundtrips, wire-size guarantees, corruption handling."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import CodecError
from repro.common.varint import (
    decode_svarint,
    decode_uvarint,
    decode_uvarint_sequence,
    encode_svarint,
    encode_uvarint,
    encode_uvarint_sequence,
    unzigzag,
    zigzag,
)


class TestUvarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**14, 2**31, 2**63 - 1])
    def test_roundtrip(self, value):
        out = bytearray()
        encode_uvarint(value, out)
        decoded, offset = decode_uvarint(bytes(out), 0)
        assert decoded == value
        assert offset == len(out)

    def test_small_values_take_one_byte(self):
        for value in range(128):
            out = bytearray()
            encode_uvarint(value, out)
            assert len(out) == 1

    def test_128_takes_two_bytes(self):
        out = bytearray()
        encode_uvarint(128, out)
        assert len(out) == 2

    def test_negative_rejected(self):
        with pytest.raises(CodecError):
            encode_uvarint(-1, bytearray())

    def test_truncated_input_raises(self):
        out = bytearray()
        encode_uvarint(300, out)
        with pytest.raises(CodecError, match="truncated"):
            decode_uvarint(bytes(out[:-1]), 0)

    def test_overlong_input_raises(self):
        blob = bytes([0x80] * 10 + [0x01])
        with pytest.raises(CodecError, match="too long"):
            decode_uvarint(blob, 0)

    def test_overlong_input_raises_even_if_all_continuations(self):
        # A buffer of nothing but continuation bytes must terminate with
        # an error after the 10-byte cap, not scan the whole buffer.
        blob = bytes([0x80] * 10_000)
        with pytest.raises(CodecError, match="too long"):
            decode_uvarint(blob, 0)

    def test_uint64_boundary_roundtrips(self):
        out = bytearray()
        encode_uvarint(2**64 - 1, out)
        assert len(out) == 10
        assert decode_uvarint(bytes(out), 0) == (2**64 - 1, 10)

    def test_encode_rejects_values_beyond_64_bits(self):
        with pytest.raises(CodecError, match="64 bits"):
            encode_uvarint(2**64, bytearray())

    def test_decode_rejects_64_bit_overflow(self):
        # Ten bytes whose payloads decode past UINT64_MAX: a compliant
        # decoder must refuse rather than return a wrapped value.
        blob = bytes([0xFF] * 9 + [0x7F])
        with pytest.raises(CodecError, match="overflows"):
            decode_uvarint(blob, 0)

    @pytest.mark.parametrize("offset", [-1, -100, 1, 2, 50])
    def test_out_of_range_offset_rejected(self, offset):
        with pytest.raises(CodecError, match="offset"):
            decode_uvarint(b"\x05", offset)

    def test_empty_buffer_rejected(self):
        with pytest.raises(CodecError):
            decode_uvarint(b"", 0)

    @given(st.integers(min_value=0, max_value=2**63 - 1))
    def test_roundtrip_property(self, value):
        out = bytearray()
        encode_uvarint(value, out)
        decoded, _ = decode_uvarint(bytes(out), 0)
        assert decoded == value

    @given(st.binary(max_size=64), st.integers(min_value=-4, max_value=68))
    def test_fuzz_decode_never_hangs_or_escapes(self, blob, offset):
        # Decoding arbitrary bytes at an arbitrary offset either yields a
        # value with a sane next-offset or raises CodecError — never any
        # other exception, never an out-of-bounds cursor.
        try:
            value, next_offset = decode_uvarint(blob, offset)
        except CodecError:
            return
        assert 0 <= value <= 2**64 - 1
        assert offset < next_offset <= len(blob)
        assert next_offset - offset <= 10


class TestZigzag:
    @pytest.mark.parametrize(
        "signed,unsigned",
        [(0, 0), (-1, 1), (1, 2), (-2, 3), (2, 4), (-64, 127), (64, 128)],
    )
    def test_known_mapping(self, signed, unsigned):
        assert zigzag(signed) == unsigned
        assert unzigzag(unsigned) == signed

    @given(st.integers(min_value=-(2**62), max_value=2**62))
    def test_roundtrip_property(self, value):
        assert unzigzag(zigzag(value)) == value


class TestSvarint:
    @pytest.mark.parametrize("value", [0, -1, 1, -1000, 1000, -(2**40), 2**40])
    def test_roundtrip(self, value):
        out = bytearray()
        encode_svarint(value, out)
        decoded, offset = decode_svarint(bytes(out), 0)
        assert decoded == value
        assert offset == len(out)

    def test_small_magnitudes_take_one_byte(self):
        for value in range(-64, 64):
            out = bytearray()
            encode_svarint(value, out)
            assert len(out) == 1, value

    def test_int64_boundaries_roundtrip(self):
        for value in (-(2**63), 2**63 - 1):
            out = bytearray()
            encode_svarint(value, out)
            assert decode_svarint(bytes(out), 0) == (value, len(out))

    def test_beyond_int64_rejected(self):
        with pytest.raises(CodecError, match="64 bits"):
            encode_svarint(2**63, bytearray())

    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    def test_roundtrip_property_full_range(self, value):
        out = bytearray()
        encode_svarint(value, out)
        assert decode_svarint(bytes(out), 0) == (value, len(out))


class TestSequences:
    def test_roundtrip(self):
        values = [0, 5, 127, 128, 99999, 3]
        assert decode_uvarint_sequence(encode_uvarint_sequence(values)) == values

    def test_empty_sequence(self):
        assert decode_uvarint_sequence(b"") == []

    @given(st.lists(st.integers(min_value=0, max_value=2**40)))
    def test_roundtrip_property(self, values):
        assert decode_uvarint_sequence(encode_uvarint_sequence(values)) == values

    def test_concatenation_is_stream(self):
        # Two encodings concatenated decode as the concatenated lists.
        left = encode_uvarint_sequence([1, 200])
        right = encode_uvarint_sequence([300])
        assert decode_uvarint_sequence(left + right) == [1, 200, 300]
