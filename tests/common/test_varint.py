"""Varint codec: roundtrips, wire-size guarantees, corruption handling."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import CodecError
from repro.common.varint import (
    decode_svarint,
    decode_uvarint,
    decode_uvarint_sequence,
    encode_svarint,
    encode_uvarint,
    encode_uvarint_sequence,
    unzigzag,
    zigzag,
)


class TestUvarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**14, 2**31, 2**63 - 1])
    def test_roundtrip(self, value):
        out = bytearray()
        encode_uvarint(value, out)
        decoded, offset = decode_uvarint(bytes(out), 0)
        assert decoded == value
        assert offset == len(out)

    def test_small_values_take_one_byte(self):
        for value in range(128):
            out = bytearray()
            encode_uvarint(value, out)
            assert len(out) == 1

    def test_128_takes_two_bytes(self):
        out = bytearray()
        encode_uvarint(128, out)
        assert len(out) == 2

    def test_negative_rejected(self):
        with pytest.raises(CodecError):
            encode_uvarint(-1, bytearray())

    def test_truncated_input_raises(self):
        out = bytearray()
        encode_uvarint(300, out)
        with pytest.raises(CodecError, match="truncated"):
            decode_uvarint(bytes(out[:-1]), 0)

    def test_overlong_input_raises(self):
        blob = bytes([0x80] * 10 + [0x01])
        with pytest.raises(CodecError, match="too long"):
            decode_uvarint(blob, 0)

    @given(st.integers(min_value=0, max_value=2**63 - 1))
    def test_roundtrip_property(self, value):
        out = bytearray()
        encode_uvarint(value, out)
        decoded, _ = decode_uvarint(bytes(out), 0)
        assert decoded == value


class TestZigzag:
    @pytest.mark.parametrize(
        "signed,unsigned",
        [(0, 0), (-1, 1), (1, 2), (-2, 3), (2, 4), (-64, 127), (64, 128)],
    )
    def test_known_mapping(self, signed, unsigned):
        assert zigzag(signed) == unsigned
        assert unzigzag(unsigned) == signed

    @given(st.integers(min_value=-(2**62), max_value=2**62))
    def test_roundtrip_property(self, value):
        assert unzigzag(zigzag(value)) == value


class TestSvarint:
    @pytest.mark.parametrize("value", [0, -1, 1, -1000, 1000, -(2**40), 2**40])
    def test_roundtrip(self, value):
        out = bytearray()
        encode_svarint(value, out)
        decoded, offset = decode_svarint(bytes(out), 0)
        assert decoded == value
        assert offset == len(out)

    def test_small_magnitudes_take_one_byte(self):
        for value in range(-64, 64):
            out = bytearray()
            encode_svarint(value, out)
            assert len(out) == 1, value


class TestSequences:
    def test_roundtrip(self):
        values = [0, 5, 127, 128, 99999, 3]
        assert decode_uvarint_sequence(encode_uvarint_sequence(values)) == values

    def test_empty_sequence(self):
        assert decode_uvarint_sequence(b"") == []

    @given(st.lists(st.integers(min_value=0, max_value=2**40)))
    def test_roundtrip_property(self, values):
        assert decode_uvarint_sequence(encode_uvarint_sequence(values)) == values

    def test_concatenation_is_stream(self):
        # Two encodings concatenated decode as the concatenated lists.
        left = encode_uvarint_sequence([1, 200])
        right = encode_uvarint_sequence([300])
        assert decode_uvarint_sequence(left + right) == [1, 200, 300]
