"""Statistics helpers, including the paper's contrast_cv worked example."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ValidationError
from repro.common.stats import (
    coefficient_of_variation,
    mean,
    min_max,
    near_zero,
    population_std,
    population_variance,
    sample_std,
    sample_variance,
    z_score,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestMeanAndVariance:
    def test_mean_simple(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_raises(self):
        with pytest.raises(ValidationError):
            mean([])

    def test_population_variance_known(self):
        assert population_variance([2.0, 4.0]) == 1.0

    def test_population_std_known(self):
        assert population_std([0.2, 0.8]) == pytest.approx(0.3)

    def test_sample_variance_known(self):
        # ddof=1: [2, 4] -> ((−1)² + 1²) / 1 = 2
        assert sample_variance([2.0, 4.0]) == 2.0

    def test_sample_std_single_value_is_zero(self):
        assert sample_std([5.0]) == 0.0

    @given(st.lists(finite_floats, min_size=1, max_size=30))
    def test_variance_non_negative(self, values):
        assert population_variance(values) >= 0.0
        assert sample_variance(values) >= -1e-9

    @given(st.lists(finite_floats, min_size=2, max_size=30))
    def test_sample_variance_at_least_population(self, values):
        # n/(n-1) >= 1, so the sample estimate never undercuts.
        assert sample_variance(values) >= population_variance(values) - 1e-9


class TestCoefficientOfVariation:
    def test_paper_example_cluster_one(self):
        # Contextual confidences {0.2, 0.8}: sample std 0.4243, mean 0.5.
        cv = coefficient_of_variation([0.2, 0.8])
        assert cv == pytest.approx(math.sqrt(2) * 0.3 / 0.5, rel=1e-9)
        # This is the Cv that makes contrast_cv(C1) = 0.18 at theta=0.75.
        assert 0.5 * (1 - 0.75 * cv) == pytest.approx(0.18, abs=0.005)

    def test_paper_example_cluster_two(self):
        cv = coefficient_of_variation([0.5, 0.55])
        assert 0.475 * (1 - 0.75 * cv) == pytest.approx(0.45, abs=0.005)

    def test_constant_values_have_zero_cv(self):
        assert coefficient_of_variation([0.4, 0.4, 0.4]) == pytest.approx(
            0.0, abs=1e-12
        )

    def test_zero_mean_degrades_to_zero(self):
        assert coefficient_of_variation([0.0, 0.0]) == 0.0


class TestZScore:
    def test_centered_value(self):
        assert z_score(2.0, [1.0, 2.0, 3.0]) == 0.0

    def test_one_std_above(self):
        reference = [0.0, 2.0]  # mean 1, population std 1
        assert z_score(2.0, reference) == pytest.approx(1.0)

    def test_constant_reference_equal_value(self):
        assert z_score(3.0, [3.0, 3.0]) == 0.0

    def test_constant_reference_above(self):
        assert z_score(4.0, [3.0, 3.0]) == math.inf

    def test_constant_reference_below(self):
        assert z_score(2.0, [3.0, 3.0]) == -math.inf


class TestZeroGuardBoundaries:
    """Regression: the zero guards use epsilons, not float ``== 0.0``.

    ``population_std`` of a bit-for-bit constant sequence is *not*
    exactly zero (``[0.1]*3`` yields ~1.4e-17), so the old exact-zero
    guards mis-classified constant references; and a mean that rounds
    to ~1e-17 used to blow the coefficient of variation up to ~1e16.
    """

    def test_z_score_of_constant_float_reference_is_zero(self):
        # mean([0.1]*3) != 0.1 in binary; the old spread == 0.0 guard
        # missed this and returned ~-1.0 instead of 0.0.
        assert z_score(0.1, [0.1, 0.1, 0.1]) == 0.0

    def test_z_score_of_large_constant_reference_is_zero(self):
        assert z_score(1e6, [1e6, 1e6, 1e6]) == 0.0

    def test_z_score_above_near_constant_reference_is_inf(self):
        assert z_score(0.2, [0.1, 0.1, 0.1]) == math.inf

    def test_cv_with_cancelled_mean_degrades_to_zero(self):
        # The mean of these is ~5e-17, pure cancellation noise; dividing
        # by it would report a CV of ~1e16 instead of "no dispersion
        # ratio" (0.0).
        assert coefficient_of_variation([-0.5, 0.5, 1e-16]) == 0.0

    def test_cv_of_constant_floats_is_exactly_zero(self):
        assert coefficient_of_variation([0.1, 0.1, 0.1]) == pytest.approx(
            0.0, abs=1e-12
        )

    def test_near_zero_is_relative_to_scale(self):
        assert near_zero(1e-13)
        assert not near_zero(1e-10)
        assert near_zero(1e-7, scale=1e6)
        assert not near_zero(1e-7, scale=1.0)


class TestMinMax:
    def test_simple(self):
        assert min_max([3.0, 1.0, 2.0]) == (1.0, 3.0)

    def test_single(self):
        assert min_max([7.0]) == (7.0, 7.0)

    def test_empty_raises(self):
        with pytest.raises(ValidationError):
            min_max([])

    @given(st.lists(finite_floats, min_size=1, max_size=50))
    def test_matches_builtins(self, values):
        assert min_max(values) == (min(values), max(values))
