"""The exception hierarchy: single base class, stdlib compatibility."""

import pytest

from repro.common.errors import (
    CodecError,
    DataFormatError,
    NotBuiltError,
    QueryError,
    ReproError,
    UnknownRuleError,
    UnknownWindowError,
    ValidationError,
)

ALL_ERRORS = [
    CodecError,
    DataFormatError,
    NotBuiltError,
    QueryError,
    UnknownRuleError,
    UnknownWindowError,
    ValidationError,
]


@pytest.mark.parametrize("error_class", ALL_ERRORS)
def test_every_error_derives_from_repro_error(error_class):
    assert issubclass(error_class, ReproError)


@pytest.mark.parametrize("error_class", ALL_ERRORS)
def test_errors_are_catchable_as_repro_error(error_class):
    with pytest.raises(ReproError):
        raise error_class("boom")


def test_validation_error_is_a_value_error():
    with pytest.raises(ValueError):
        raise ValidationError("bad input")


def test_data_format_error_is_a_value_error():
    with pytest.raises(ValueError):
        raise DataFormatError("bad data")


def test_unknown_rule_error_is_a_key_error():
    with pytest.raises(KeyError):
        raise UnknownRuleError("missing")


def test_unknown_window_error_is_a_key_error():
    with pytest.raises(KeyError):
        raise UnknownWindowError("missing")


def test_not_built_error_is_a_runtime_error():
    with pytest.raises(RuntimeError):
        raise NotBuiltError("build first")
