"""PhaseTimer and stopwatch behaviour."""

import time

import pytest

from repro.common.errors import ValidationError
from repro.common.timing import PhaseTimer, stopwatch


class TestPhaseTimer:
    def test_single_phase_records_duration(self):
        timer = PhaseTimer()
        with timer.phase("work"):
            time.sleep(0.005)
        assert timer.totals["work"] >= 0.004
        assert timer.counts["work"] == 1

    def test_same_phase_accumulates(self):
        timer = PhaseTimer()
        for _ in range(3):
            with timer.phase("step"):
                pass
        assert timer.counts["step"] == 3
        assert timer.totals["step"] >= 0.0

    def test_total_sums_phases(self):
        timer = PhaseTimer()
        timer.add("a", 0.25)
        timer.add("b", 0.75)
        assert timer.total == 1.0

    def test_breakdown_preserves_first_seen_order(self):
        timer = PhaseTimer()
        timer.add("z-last-alphabetically-first-seen", 1.0)
        timer.add("a", 2.0)
        timer.add("z-last-alphabetically-first-seen", 3.0)
        assert list(timer.breakdown()) == ["z-last-alphabetically-first-seen", "a"]
        assert timer.breakdown()["z-last-alphabetically-first-seen"] == 4.0

    def test_merge_combines_totals_and_counts(self):
        first = PhaseTimer()
        first.add("x", 1.0)
        second = PhaseTimer()
        second.add("x", 2.0)
        second.add("y", 3.0)
        second.add("y", 1.0)
        first.merge(second)
        assert first.totals == {"x": 3.0, "y": 4.0}
        assert first.counts == {"x": 2, "y": 2}

    def test_phase_recorded_even_on_exception(self):
        timer = PhaseTimer()
        try:
            with timer.phase("failing"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert timer.counts["failing"] == 1

    def test_report_mentions_every_phase(self):
        timer = PhaseTimer()
        timer.add("mine", 0.1)
        timer.add("index", 0.2)
        report = timer.report("my title")
        assert "my title" in report
        assert "mine" in report
        assert "index" in report
        assert "total" in report

    def test_report_on_empty_timer(self):
        assert "total" in PhaseTimer().report()


class TestInformationalPhases:
    """Wall-clock attribution phases that must not distort the task stack."""

    def test_excluded_from_total(self):
        timer = PhaseTimer()
        timer.add("mining", 2.0)
        timer.add("pool wall", 1.5, informational=True)
        assert timer.total == 2.0
        assert timer.totals["pool wall"] == 1.5
        assert timer.is_informational("pool wall")
        assert not timer.is_informational("mining")

    def test_still_reported_in_breakdown_and_report(self):
        timer = PhaseTimer()
        timer.add("mining", 2.0)
        with timer.phase("pool wall", informational=True):
            pass
        assert "pool wall" in timer.breakdown()
        report = timer.report()
        assert "pool wall" in report
        assert "excluded from total" in report

    def test_flag_conflict_rejected(self):
        timer = PhaseTimer()
        timer.add("x", 1.0)
        with pytest.raises(ValidationError, match="already recorded"):
            timer.add("x", 1.0, informational=True)
        timer.add("wall", 1.0, informational=True)
        with pytest.raises(ValidationError, match="already recorded"):
            with timer.phase("wall"):
                pass

    def test_merge_carries_informational_flag(self):
        source = PhaseTimer()
        source.add("work", 1.0)
        source.add("wall", 5.0, informational=True)
        target = PhaseTimer()
        target.merge(source)
        assert target.total == 1.0
        assert target.is_informational("wall")


class TestStopwatch:
    def test_measures_elapsed_time(self):
        with stopwatch() as clock:
            time.sleep(0.005)
        assert clock.seconds >= 0.004
        assert clock.millis == clock.seconds * 1e3

    def test_measures_even_on_exception(self):
        try:
            with stopwatch() as clock:
                raise ValueError("boom")
        except ValueError:
            pass
        assert clock.seconds >= 0.0
