"""ExecutorConfig validation and run_ordered strategy behaviour."""

from __future__ import annotations

import math
import operator

import pytest

from repro.common.errors import ValidationError
from repro.common.executors import (
    EXECUTOR_STRATEGIES,
    ExecutorConfig,
    available_cpus,
    run_ordered,
)


class TestExecutorConfig:
    def test_default_is_serial(self):
        config = ExecutorConfig()
        assert config.strategy == "serial"
        assert not config.is_parallel

    @pytest.mark.parametrize("strategy", EXECUTOR_STRATEGIES)
    def test_known_strategies_accepted(self, strategy):
        config = ExecutorConfig(strategy=strategy)
        assert config.is_parallel == (strategy != "serial")

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValidationError, match="unknown executor strategy"):
            ExecutorConfig(strategy="gpu")

    @pytest.mark.parametrize("workers", (0, -1))
    def test_nonpositive_workers_rejected(self, workers):
        with pytest.raises(ValidationError, match="max_workers"):
            ExecutorConfig(strategy="thread", max_workers=workers)

    def test_nonpositive_chunk_rejected(self):
        with pytest.raises(ValidationError, match="chunk_size"):
            ExecutorConfig(strategy="process", chunk_size=0)

    def test_resolved_workers_capped_by_items_and_config(self):
        config = ExecutorConfig(strategy="process", max_workers=3)
        assert config.resolved_workers(8) == 3
        assert config.resolved_workers(2) == 2
        assert config.resolved_workers(0) == 1

    def test_resolved_workers_defaults_to_available_cpus(self):
        config = ExecutorConfig(strategy="process")
        assert config.resolved_workers(10_000) == min(10_000, available_cpus())

    def test_resolved_chunk_size_heuristic(self):
        config = ExecutorConfig(strategy="process")
        # ceil(items / (workers * 4)), never below 1.
        assert config.resolved_chunk_size(32, 4) == 2
        assert config.resolved_chunk_size(3, 4) == 1
        assert ExecutorConfig(
            strategy="process", chunk_size=7
        ).resolved_chunk_size(1000, 4) == 7


class TestAvailableCpus:
    def test_at_least_one(self):
        assert available_cpus() >= 1


class TestRunOrdered:
    @pytest.mark.parametrize("strategy", EXECUTOR_STRATEGIES)
    def test_results_in_submission_order(self, strategy):
        # operator.neg is a module-level picklable callable, so the same
        # call works under the process pool.
        config = ExecutorConfig(strategy=strategy, max_workers=2)
        items = list(range(17))
        assert run_ordered(operator.neg, items, config) == [-i for i in items]

    @pytest.mark.parametrize("strategy", EXECUTOR_STRATEGIES)
    def test_empty_batch(self, strategy):
        config = ExecutorConfig(strategy=strategy, max_workers=2)
        assert run_ordered(operator.neg, [], config) == []

    @pytest.mark.parametrize("strategy", EXECUTOR_STRATEGIES)
    def test_single_item_batch(self, strategy):
        config = ExecutorConfig(strategy=strategy, max_workers=2)
        assert run_ordered(math.factorial, [5], config) == [120]

    def test_none_config_means_serial(self):
        assert run_ordered(operator.neg, [1, 2, 3]) == [-1, -2, -3]

    def test_single_worker_runs_in_process(self):
        # max_workers=1 must take the in-process path: local closures are
        # unpicklable, so a real process pool would fail here.
        local_offset = 10
        config = ExecutorConfig(strategy="process", max_workers=1)
        result = run_ordered(lambda x: x + local_offset, [1, 2], config)
        assert result == [11, 12]

    def test_explicit_chunk_size_respected(self):
        config = ExecutorConfig(strategy="process", max_workers=2, chunk_size=3)
        items = list(range(10))
        assert run_ordered(operator.neg, items, config) == [-i for i in items]
