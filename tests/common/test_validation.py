"""Argument-validation helpers: accepted domains and rejection messages."""

import pytest

from repro.common.errors import ValidationError
from repro.common.validation import (
    check_fraction,
    check_non_empty,
    check_non_negative_int,
    check_positive_int,
    check_sorted_unique,
    require,
)


class TestRequire:
    def test_passes_silently_when_true(self):
        require(True, "never raised")

    def test_raises_with_message_when_false(self):
        with pytest.raises(ValidationError, match="custom message"):
            require(False, "custom message")


class TestCheckFraction:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0, 1, 0])
    def test_accepts_values_in_unit_interval(self, value):
        assert check_fraction(value, "p") == float(value)

    @pytest.mark.parametrize("value", [-0.01, 1.01, -5, 2])
    def test_rejects_out_of_range(self, value):
        with pytest.raises(ValidationError, match="p must be in"):
            check_fraction(value, "p")

    @pytest.mark.parametrize("value", [float("nan"), float("inf"), float("-inf")])
    def test_rejects_non_finite(self, value):
        with pytest.raises(ValidationError, match="finite"):
            check_fraction(value, "p")

    @pytest.mark.parametrize("value", ["0.5", None, True])
    def test_rejects_non_numbers(self, value):
        with pytest.raises(ValidationError):
            check_fraction(value, "p")

    def test_zero_rejected_when_disallowed(self):
        with pytest.raises(ValidationError):
            check_fraction(0.0, "p", allow_zero=False)

    def test_positive_accepted_when_zero_disallowed(self):
        assert check_fraction(0.3, "p", allow_zero=False) == 0.3


class TestIntChecks:
    def test_positive_int_accepts(self):
        assert check_positive_int(3, "n") == 3

    @pytest.mark.parametrize("value", [0, -1])
    def test_positive_int_rejects_non_positive(self, value):
        with pytest.raises(ValidationError):
            check_positive_int(value, "n")

    @pytest.mark.parametrize("value", [1.5, "3", True])
    def test_positive_int_rejects_non_ints(self, value):
        with pytest.raises(ValidationError):
            check_positive_int(value, "n")

    def test_non_negative_accepts_zero(self):
        assert check_non_negative_int(0, "n") == 0

    def test_non_negative_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_non_negative_int(-1, "n")


class TestCheckNonEmpty:
    def test_accepts_non_empty_list(self):
        check_non_empty([1], "xs")

    def test_rejects_empty_list(self):
        with pytest.raises(ValidationError, match="xs must not be empty"):
            check_non_empty([], "xs")

    def test_counts_plain_iterables(self):
        with pytest.raises(ValidationError):
            check_non_empty(iter(()), "xs")
        check_non_empty(iter([1, 2]), "xs")


class TestCheckSortedUnique:
    def test_accepts_strictly_increasing(self):
        check_sorted_unique([1, 2, 5], "xs")

    def test_accepts_empty_and_singleton(self):
        check_sorted_unique([], "xs")
        check_sorted_unique([7], "xs")

    def test_rejects_duplicates(self):
        with pytest.raises(ValidationError, match="strictly increasing"):
            check_sorted_unique([1, 1], "xs")

    def test_rejects_descending(self):
        with pytest.raises(ValidationError):
            check_sorted_unique([2, 1], "xs")
