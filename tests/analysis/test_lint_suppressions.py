"""Suppression-directive parsing: per-line, standalone, and per-file."""

from repro.analysis.suppressions import parse_suppressions


class TestLineDirectives:
    def test_trailing_directive_covers_its_line(self):
        index = parse_suppressions("x = 1\ny == 0.0  # repro-lint: disable=R001\n")
        assert index.is_suppressed("R001", 2)
        assert not index.is_suppressed("R001", 1)
        assert not index.is_suppressed("R002", 2)

    def test_multiple_rules_comma_separated(self):
        index = parse_suppressions("thing()  # repro-lint: disable=R001, R004\n")
        assert index.is_suppressed("R001", 1)
        assert index.is_suppressed("R004", 1)
        assert not index.is_suppressed("R003", 1)

    def test_standalone_comment_covers_next_line(self):
        source = "# repro-lint: disable=R004\n@dataclass\nclass C: ...\n"
        index = parse_suppressions(source)
        assert index.is_suppressed("R004", 2)
        assert not index.is_suppressed("R004", 3)

    def test_trailing_directive_does_not_leak_to_next_line(self):
        source = "a == 0.0  # repro-lint: disable=R001\nb == 0.0\n"
        index = parse_suppressions(source)
        assert index.is_suppressed("R001", 1)
        assert not index.is_suppressed("R001", 2)

    def test_disable_all_token(self):
        index = parse_suppressions("x()  # repro-lint: disable=all\n")
        assert index.is_suppressed("R001", 1)
        assert index.is_suppressed("R999", 1)


class TestFileDirectives:
    def test_disable_file_covers_every_line(self):
        source = "# repro-lint: disable-file=R005\n" + "x = 1\n" * 50
        index = parse_suppressions(source)
        assert index.is_suppressed("R005", 1)
        assert index.is_suppressed("R005", 51)
        assert not index.is_suppressed("R001", 10)

    def test_disable_file_anywhere_in_file(self):
        source = "x = 1\ny = 2\n# repro-lint: disable-file=R003\n"
        assert parse_suppressions(source).is_suppressed("R003", 1)


class TestRobustness:
    def test_no_directives(self):
        index = parse_suppressions("plain = 'code'\n")
        assert not index.is_suppressed("R001", 1)

    def test_whitespace_variants(self):
        index = parse_suppressions("x()  #  repro-lint:  disable = R001\n")
        assert index.is_suppressed("R001", 1)

    def test_unknown_rule_ids_are_tolerated(self):
        index = parse_suppressions("x()  # repro-lint: disable=R999\n")
        assert index.is_suppressed("R999", 1)
        assert not index.is_suppressed("R001", 1)
