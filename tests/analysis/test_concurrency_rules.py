"""Concurrency-contract rules (R006-R009), crash capture, index cache.

Each rule is exercised against on-disk fixture modules under
``fixtures/`` — a firing variant and a clean variant per rule — plus
suppression behaviour, the exit-3 crashed-rule contract, and the
``--index-cache`` round trip.
"""

import ast
import json
from pathlib import Path

import pytest

from repro.analysis.base import (
    ProjectRule,
    Rule,
    RuleScope,
    get_rule,
)
from repro.analysis.project import build_index, index_module
from repro.analysis.runner import lint_paths, lint_source

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def fixture_findings(rule_id, name, path):
    """Run one rule over a fixture file at a virtual logical path."""
    source = (FIXTURES / name).read_text("utf-8")
    return lint_source(source, path, [get_rule(rule_id)])


class TestR006LockDiscipline:
    PATH = "repro/service/fixture.py"

    def test_unguarded_accesses_fire(self):
        findings, _ = fixture_findings("R006", "r006_unguarded.py", self.PATH)
        assert [f.rule_id for f in findings] == ["R006"] * 3
        messages = " | ".join(f.message for f in findings)
        assert "Service.epoch" in messages  # public read
        assert "Service.advance" in messages  # public write
        assert "Service._bump" in messages  # private, unlocked call site

    def test_disciplined_class_is_clean(self):
        findings, _ = fixture_findings("R006", "r006_guarded.py", self.PATH)
        assert findings == []

    def test_init_is_exempt(self):
        source = (
            "import threading\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._state = 0  # repro-lint: guarded-by=_lock\n"
            "        self._state = self._state + 1\n"
        )
        findings, _ = lint_source(source, self.PATH, [get_rule("R006")])
        assert findings == []

    def test_guarded_by_unknown_lock_flagged(self):
        source = (
            "class S:\n"
            "    def __init__(self):\n"
            "        self._state = 0  # repro-lint: guarded-by=_lock\n"
        )
        findings, _ = lint_source(source, self.PATH, [get_rule("R006")])
        assert len(findings) == 1
        assert "never assigns self._lock" in findings[0].message

    def test_nested_def_resets_held_locks(self):
        source = (
            "import threading\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._state = 0  # repro-lint: guarded-by=_lock\n"
            "    def work(self):\n"
            "        with self._lock:\n"
            "            def later():\n"
            "                return self._state\n"
            "            return later\n"
        )
        findings, _ = lint_source(source, self.PATH, [get_rule("R006")])
        assert len(findings) == 1  # the deferred read runs lock-free

    def test_undeclared_nesting_flagged(self):
        source = (
            "import threading\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._a = threading.Lock()\n"
            "        self._b = threading.Lock()\n"
            "    def work(self):\n"
            "        with self._a:\n"
            "            with self._b:\n"
            "                pass\n"
        )
        findings, _ = lint_source(source, self.PATH, [get_rule("R006")])
        assert len(findings) == 1
        assert "no declared lock-order" in findings[0].message

    def test_declared_nesting_order_respected_and_violated(self):
        template = (
            "import threading\n"
            "# repro-lint: lock-order=S._a,S._b\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._a = threading.Lock()\n"
            "        self._b = threading.Lock()\n"
            "    def work(self):\n"
            "        with self.{outer}:\n"
            "            with self.{inner}:\n"
            "                pass\n"
        )
        ok, _ = lint_source(
            template.format(outer="_a", inner="_b"),
            self.PATH,
            [get_rule("R006")],
        )
        assert ok == []
        bad, _ = lint_source(
            template.format(outer="_b", inner="_a"),
            self.PATH,
            [get_rule("R006")],
        )
        assert len(bad) == 1
        assert "violates the declared lock order" in bad[0].message

    def test_suppression_applies(self):
        source = (
            "import threading\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._state = 0  # repro-lint: guarded-by=_lock\n"
            "    def peek(self):\n"
            "        return self._state  # repro-lint: disable=R006\n"
        )
        findings, suppressed = lint_source(
            source, self.PATH, [get_rule("R006")]
        )
        assert findings == [] and suppressed == 1


class TestR007PublishImmutability:
    PATH = "repro/service/fixture.py"

    def test_mutable_publish_fires(self):
        findings, _ = fixture_findings(
            "R007", "r007_mutable_publish.py", self.PATH
        )
        assert [f.rule_id for f in findings] == ["R007"] * 5
        messages = " | ".join(f.message for f in findings)
        assert "RegionKeyedCache.put" in messages  # list into the cache
        assert "publish boundary" in messages  # dict out of freeze()
        assert "frozen dataclass Answer" in messages  # Dict field
        assert "ResponseCache.put" in messages  # bytearray body
        assert "ResponseCache.put_gzip" in messages  # list body

    def test_frozen_publish_is_clean(self):
        findings, _ = fixture_findings(
            "R007", "r007_frozen_publish.py", self.PATH
        )
        assert findings == []

    def test_out_of_scope_module_is_skipped(self):
        findings, _ = fixture_findings(
            "R007", "r007_mutable_publish.py", "repro/mining/fixture.py"
        )
        assert findings == []

    def test_unknown_values_pass(self):
        source = (
            "class RegionKeyedCache:\n"
            "    def put(self, key, value, epoch):\n"
            "        return 0\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._cache = RegionKeyedCache()\n"
            "    def store(self, key, value):\n"
            "        self._cache.put(key, value, 1)\n"
        )
        findings, _ = lint_source(source, self.PATH, [get_rule("R007")])
        assert findings == []  # parameter origin is opaque, not provable


class TestR008EpochDiscipline:
    PATH = "repro/service/fixture.py"

    def test_inserting_listener_and_ordering_fire(self):
        findings, _ = fixture_findings(
            "R008", "r008_inserting_listener.py", self.PATH
        )
        assert [f.rule_id for f in findings] == ["R008"] * 2
        messages = " | ".join(f.message for f in findings)
        assert "ordering comparison" in messages
        assert "inserts via .put" in messages

    def test_purging_listener_is_clean(self):
        findings, _ = fixture_findings(
            "R008", "r008_purging_listener.py", self.PATH
        )
        assert findings == []

    def test_lambda_listener_is_walked(self):
        source = (
            "class S:\n"
            "    def __init__(self, source, cache):\n"
            "        source.subscribe(lambda n: cache.put(n, n, n))\n"
        )
        findings, _ = lint_source(source, self.PATH, [get_rule("R008")])
        assert len(findings) == 1
        assert "lambda listener" in findings[0].message

    def test_non_epoch_ordering_unaffected(self):
        source = "def f(a, b):\n    return a < b\n"
        findings, _ = lint_source(source, self.PATH, [get_rule("R008")])
        assert findings == []

    def test_cross_epoch_recheck_fires(self):
        findings, _ = fixture_findings(
            "R008", "r008_cross_epoch_recheck.py", self.PATH
        )
        assert [f.rule_id for f in findings] == ["R008"]
        assert "outside class Snapshot" in findings[0].message

    def test_snapshot_equality_and_sentinels_are_clean(self):
        findings, _ = fixture_findings(
            "R008", "r008_snapshot_equality.py", "repro/core/snapshot.py"
        )
        assert findings == []

    def test_single_epoch_equality_unaffected(self):
        # One epoch-valued operand against a plain value classifies an
        # entry; it is not a relationship between two epochs.
        source = "def f(entry, epoch):\n    return entry.tag == epoch\n"
        findings, _ = lint_source(source, self.PATH, [get_rule("R008")])
        assert findings == []


class TestR009ExecutorPicklability:
    PATH = "repro/core/fixture.py"

    def test_unpicklable_work_fires(self):
        findings, _ = fixture_findings(
            "R009", "r009_unpicklable.py", self.PATH
        )
        messages = " | ".join(f.message for f in findings)
        assert "lambda passed to run_ordered" in messages
        assert "bound method self.step" in messages
        assert "nested def 'step'" in messages
        assert "Task instances" in messages
        assert len(findings) == 4

    def test_picklable_work_is_clean(self):
        findings, _ = fixture_findings(
            "R009", "r009_picklable.py", self.PATH
        )
        assert findings == []

    def test_unresolvable_items_pass(self):
        source = (
            "from repro.common.executors import run_ordered\n"
            "def go(fn, items, config):\n"
            "    return run_ordered(fn, items, config)\n"
        )
        findings, _ = lint_source(source, self.PATH, [get_rule("R009")])
        assert findings == []


class _AlwaysCrashes(Rule):
    rule_id = "T900"
    title = "crashes on purpose"
    fix_hint = "n/a"
    scope = RuleScope()

    def check(self, tree, context):
        raise RuntimeError("deliberate per-file crash")


class _ProjectCrashes(ProjectRule):
    rule_id = "T901"
    title = "crashes on purpose (project)"
    fix_hint = "n/a"
    scope = RuleScope()

    def check_project(self, index):
        raise RuntimeError("deliberate project crash")


class TestCrashedRuleExitCode:
    def make_tree(self, tmp_path):
        (tmp_path / "repro").mkdir()
        (tmp_path / "repro" / "mod.py").write_text("x = 1\n")
        return tmp_path

    def test_crash_yields_exit_three_and_traceback(self, tmp_path):
        report = lint_paths([self.make_tree(tmp_path)], [_AlwaysCrashes()])
        assert report.exit_code == 3
        assert not report.is_clean
        crash = report.crashes[0]
        assert crash.rule_id == "T900"
        assert "deliberate per-file crash" in crash.error
        assert "RuntimeError" in crash.traceback
        assert "report incomplete" in report.format_text()

    def test_project_rule_crash_captured(self, tmp_path):
        report = lint_paths([self.make_tree(tmp_path)], [_ProjectCrashes()])
        assert report.exit_code == 3
        assert report.crashes[0].rule_id == "T901"
        assert report.crashes[0].path == "<project>"

    def test_crash_does_not_hide_other_rules(self, tmp_path):
        tree = tmp_path / "repro" / "core"
        tree.mkdir(parents=True)
        (tree / "bad.py").write_text("flag = value == 0.0\n")
        report = lint_paths(
            [tmp_path], [get_rule("R001"), _AlwaysCrashes()]
        )
        assert report.exit_code == 3  # crash dominates the findings exit
        assert [f.rule_id for f in report.findings] == ["R001"]

    def test_crash_serialized_in_json(self, tmp_path):
        report = lint_paths([self.make_tree(tmp_path)], [_AlwaysCrashes()])
        payload = json.loads(json.dumps(report.to_json()))
        assert payload["version"] == 2
        assert payload["clean"] is False
        assert payload["crashes"][0]["rule"] == "T900"
        assert "RuntimeError" in payload["crashes"][0]["traceback"]


class TestIndexCache:
    def make_tree(self, tmp_path):
        pkg = tmp_path / "repro" / "service"
        pkg.mkdir(parents=True)
        (pkg / "mod.py").write_text(
            "import threading\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._n = 0  # repro-lint: guarded-by=_lock\n"
            "    def peek(self):\n"
            "        return self._n\n"
        )
        return tmp_path, pkg / "mod.py"

    def test_cache_round_trip_preserves_report(self, tmp_path):
        tree, _module = self.make_tree(tmp_path)
        cache = tmp_path / "cache" / "index.pickle"
        cold = lint_paths([tree], index_cache=cache)
        assert cache.exists()
        warm = lint_paths([tree], index_cache=cache)
        assert warm.findings == cold.findings
        assert [f.rule_id for f in warm.findings] == ["R006"]

    def test_stale_cache_is_rebuilt(self, tmp_path):
        tree, module = self.make_tree(tmp_path)
        cache = tmp_path / "index.pickle"
        first = lint_paths([tree], index_cache=cache)
        assert [f.rule_id for f in first.findings] == ["R006"]
        fixed = module.read_text().replace(
            "        return self._n\n",
            "        with self._lock:\n            return self._n\n",
        )
        module.write_text(fixed)
        second = lint_paths([tree], index_cache=cache)
        assert second.findings == ()

    def test_corrupt_cache_is_ignored(self, tmp_path):
        tree, _module = self.make_tree(tmp_path)
        cache = tmp_path / "index.pickle"
        cache.write_bytes(b"not a pickle")
        report = lint_paths([tree], index_cache=cache)
        assert [f.rule_id for f in report.findings] == ["R006"]


class TestProjectIndex:
    def test_syntax_error_module_is_omitted(self):
        assert index_module("repro/x.py", "x.py", "def f(:\n") is None

    def test_cross_module_class_resolution(self):
        cache_src = (
            "class RegionKeyedCache:\n"
            "    def put(self, key, value, epoch):\n"
            "        return 0\n"
        )
        service_src = (
            "class S:\n"
            "    def __init__(self):\n"
            "        self._cache = RegionKeyedCache()\n"
        )
        index = build_index(
            [
                ("repro/service/cache.py", "cache.py", cache_src),
                ("repro/service/service.py", "service.py", service_src),
            ]
        )
        info = index.resolve_class("RegionKeyedCache")
        assert info is not None and "put" in info.methods
        owner = index.modules["repro/service/service.py"].classes["S"]
        assert owner.attr_classes["_cache"] == "RegionKeyedCache"

    def test_ambiguous_class_name_resolves_to_none(self):
        src = "class Dup:\n    pass\n"
        index = build_index(
            [
                ("repro/a.py", "a.py", src),
                ("repro/b.py", "b.py", src),
            ]
        )
        assert index.resolve_class("Dup") is None

    def test_directives_are_indexed(self):
        src = (
            "# repro-lint: lock-order=A._x,B._y\n"
            "import threading\n"
            "class A:\n"
            "    def __init__(self):\n"
            "        self._x = threading.Lock()\n"
            "        self._n = 0  # repro-lint: guarded-by=_x\n"
            "    # repro-lint: publish\n"
            "    def out(self):\n"
            "        return self._n\n"
        )
        module = index_module("repro/a.py", "a.py", src)
        assert module is not None
        assert module.lock_orders == (("A._x", "B._y"),)
        info = module.classes["A"]
        assert info.guarded == {"_n": "_x"}
        assert info.lock_attrs == frozenset({"_x"})
        out_line = info.methods["out"].lineno
        assert out_line in module.publish_lines
