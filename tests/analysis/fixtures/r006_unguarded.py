"""R006 positive fixture: guarded attributes touched without the lock."""

import threading


class Service:
    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._epoch = 0  # repro-lint: guarded-by=_lock

    def epoch(self) -> int:
        return self._epoch  # public read outside the lock -> finding

    def advance(self) -> None:
        self._epoch += 1  # public write outside the lock -> finding

    def _bump(self) -> None:
        # Private, but its only call site below does not hold the lock.
        self._epoch += 1

    def tick(self) -> None:
        self._bump()
