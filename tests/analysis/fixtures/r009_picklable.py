"""R009 negative fixture: module-level def over frozen work items."""

from dataclasses import dataclass


def run_ordered(function, items, config=None):
    return [function(item) for item in items]


@dataclass(frozen=True)
class Task:
    n: int


def step(task):
    return task.n


class Builder:
    def mine(self, config):
        tasks = [Task(n) for n in range(4)]
        return run_ordered(step, tasks, config)
