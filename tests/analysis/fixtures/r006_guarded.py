"""R006 negative fixture: every guarded access holds the declared lock."""

import threading


class Service:
    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._epoch = 0  # repro-lint: guarded-by=_lock

    def epoch(self) -> int:
        with self._lock:
            return self._epoch

    def advance(self) -> None:
        with self._lock:
            self._bump()

    def _bump(self) -> None:
        # Private helper: its only call site holds the lock.
        self._epoch += 1
