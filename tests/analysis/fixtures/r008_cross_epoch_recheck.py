"""R008 positive fixture: post-await epoch re-check outside Snapshot."""


class Gateway:
    def __init__(self, service) -> None:
        self._service = service

    async def query(self, canonical, supplier):
        pinned_epoch = self._service.epoch
        answer = await supplier()
        if pinned_epoch != self._service.epoch:  # cross-epoch -> finding
            answer = await supplier()
        return answer
