"""R008 negative fixture: append hook only purges; equality epochs."""


class Cache:
    def __init__(self) -> None:
        self._entries = {}

    def purge_scoped_except(self, epoch):
        stale = [
            key
            for key, (_, tag) in self._entries.items()
            if tag != -1 and tag != epoch
        ]
        for key in stale:
            del self._entries[key]
        return len(stale)


class Service:
    def __init__(self, source) -> None:
        self._cache = Cache()
        self._epoch = 0
        source.subscribe(self._on_append)

    def _on_append(self, count) -> None:
        if count == self._epoch:
            return
        self._epoch = count
        self._cache.purge_scoped_except(count)
