"""R007 negative fixture: publish sinks only receive frozen values."""

from dataclasses import dataclass
from typing import Mapping, Tuple


class RegionKeyedCache:
    def put(self, key, value, epoch):
        return 0


class ResponseCache:
    def put(self, key, value, epoch):
        return 0

    def put_gzip(self, key, value, epoch):
        return 0


@dataclass(frozen=True)
class Answer:
    rows: Tuple[int, ...]
    labels: Mapping[int, str]


class Service:
    def __init__(self) -> None:
        self._cache = RegionKeyedCache()

    def store(self, key, rows) -> None:
        staged = [tuple(row) for row in rows]
        value = tuple(staged)  # frozen before the sink
        self._cache.put(key, value, 3)

    # repro-lint: publish
    def freeze(self, rows):
        return tuple(tuple(row) for row in rows)


class Gateway:
    def __init__(self) -> None:
        self._respcache = ResponseCache()

    def store_body(self, key, chunks) -> None:
        value = b"".join(chunks)  # bytes are frozen before the sink
        self._respcache.put(key, value, 3)
        self._respcache.put_gzip(key, value, 3)
