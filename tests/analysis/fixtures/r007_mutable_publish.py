"""R007 positive fixture: mutable containers reach publish sinks."""

from dataclasses import dataclass
from typing import Dict


class RegionKeyedCache:
    def put(self, key, value, epoch):
        return 0


class ResponseCache:
    def put(self, key, value, epoch):
        return 0

    def put_gzip(self, key, value, epoch):
        return 0


@dataclass(frozen=True)
class Answer:
    # Mutable container inside a "frozen" published value -> finding.
    rows: Dict[int, str]


class Service:
    def __init__(self) -> None:
        self._cache = RegionKeyedCache()

    def store(self, key, rows) -> None:
        value = [tuple(row) for row in rows]
        self._cache.put(key, value, 3)  # list into the cache -> finding

    # repro-lint: publish
    def freeze(self, rows):
        return {row[0]: row for row in rows}  # dict published -> finding


class Gateway:
    def __init__(self) -> None:
        self._respcache = ResponseCache()

    def store_body(self, key, chunks) -> None:
        value = bytearray(b"".join(chunks))
        self._respcache.put(key, value, 3)  # bytearray body -> finding

    def store_variant(self, key, frames) -> None:
        value = list(frames)
        self._respcache.put_gzip(key, value, 3)  # list body -> finding
