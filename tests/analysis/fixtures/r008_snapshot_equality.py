"""R008 negative fixture: epoch identity inside Snapshot; sentinels."""

EPOCH_FREE = -1


class Snapshot:
    def __init__(self, epoch) -> None:
        self.epoch = epoch

    def accepts(self, entry_epoch) -> bool:
        # Inside Snapshot the epoch relationship is the point: a
        # segment entry is valid iff it was stored under this snapshot.
        return entry_epoch == self.epoch


class Service:
    def __init__(self, snapshot) -> None:
        self._snapshot = snapshot

    def scoped(self, query_epoch) -> bool:
        return query_epoch != EPOCH_FREE  # sentinel check stays legal
