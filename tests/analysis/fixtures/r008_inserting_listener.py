"""R008 positive fixture: append hook inserts; epoch compared by order."""


class Cache:
    def __init__(self) -> None:
        self._entries = {}

    def put(self, key, value, epoch):
        self._entries[key] = (value, epoch)

    def purge_scoped_except(self, epoch):
        return 0


class Service:
    def __init__(self, source) -> None:
        self._cache = Cache()
        self._epoch = 0
        source.subscribe(self._on_append)

    def _on_append(self, count) -> None:
        if count < self._epoch:  # ordering on an epoch tag -> finding
            return
        self._epoch = count
        self._cache.put(("sentinel",), "warm", count)  # insert -> finding
