"""R009 positive fixture: unpicklable work shipped to run_ordered."""


def run_ordered(function, items, config=None):
    return [function(item) for item in items]


class Task:
    def __init__(self, n) -> None:
        self.n = n


class Builder:
    def mine(self, config):
        tasks = [Task(n) for n in range(4)]  # mutable work units -> finding
        return run_ordered(lambda task: task.n, tasks, config)  # lambda -> finding

    def mine_bound(self, config, tasks):
        return run_ordered(self.step, tasks, config)  # bound method -> finding

    def mine_closure(self, config, tasks):
        def step(task):  # nested def -> finding when passed below
            return task

        return run_ordered(step, tasks, config)

    def step(self, task):
        return task
