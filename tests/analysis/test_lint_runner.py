"""Runner behaviour: walking, logical paths, aggregation, output modes."""

import json

import pytest

from repro.analysis.findings import Finding, LintReport
from repro.analysis.runner import (
    iter_python_files,
    lint_paths,
    lint_source,
    logical_path_of,
)
from repro.common.errors import ValidationError


class TestLogicalPaths:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("src/repro/core/archive.py", "repro/core/archive.py"),
            ("/site-packages/repro/cli.py", "repro/cli.py"),
            ("elsewhere/code.py", None),
        ],
    )
    def test_mapping(self, raw, expected, tmp_path):
        from pathlib import Path

        assert logical_path_of(Path(raw)) == expected

    def test_last_repro_component_wins(self):
        from pathlib import Path

        path = Path("repro/vendored/repro/core/x.py")
        assert logical_path_of(path) == "repro/core/x.py"


class TestWalk:
    def test_walks_tree_and_skips_caches(self, tmp_path):
        (tmp_path / "repro" / "core").mkdir(parents=True)
        (tmp_path / "repro" / "core" / "a.py").write_text("x = 1\n")
        cache = tmp_path / "repro" / "__pycache__"
        cache.mkdir()
        (cache / "junk.py").write_text("x = 1\n")
        files = list(iter_python_files([tmp_path]))
        assert [f.name for f in files] == ["a.py"]

    def test_missing_target_raises(self):
        with pytest.raises(ValidationError, match="does not exist"):
            list(iter_python_files(["definitely/not/here"]))

    def test_single_file_passes_through(self, tmp_path):
        target = tmp_path / "one.py"
        target.write_text("x = 1\n")
        assert list(iter_python_files([target])) == [target]


class TestLintPaths:
    def fixture_tree(self, tmp_path):
        core = tmp_path / "repro" / "core"
        core.mkdir(parents=True)
        (core / "bad.py").write_text("flag = value == 0.0\n")
        (core / "good.py").write_text("flag = value == 0\n")
        return tmp_path

    def test_aggregates_sorted_findings(self, tmp_path):
        report = lint_paths([self.fixture_tree(tmp_path)])
        assert report.files_checked == 2
        assert [f.rule_id for f in report.findings] == ["R001"]
        assert report.findings[0].path.endswith("bad.py")
        assert not report.is_clean
        assert report.exit_code == 1

    def test_clean_report(self, tmp_path):
        (tmp_path / "repro").mkdir()
        (tmp_path / "repro" / "ok.py").write_text("x = 1\n")
        report = lint_paths([tmp_path])
        assert report.is_clean and report.exit_code == 0
        assert "clean" in report.format_text()

    def test_out_of_tree_files_are_counted_not_checked(self, tmp_path):
        (tmp_path / "loose.py").write_text("x == 0.0\n")
        report = lint_paths([tmp_path])
        assert report.files_checked == 1
        assert report.is_clean

    def test_syntax_error_becomes_e001_finding(self, tmp_path):
        (tmp_path / "repro").mkdir()
        (tmp_path / "repro" / "broken.py").write_text("def f(:\n")
        report = lint_paths([tmp_path])
        assert [f.rule_id for f in report.findings] == ["E001"]
        assert report.exit_code == 1

    def test_json_payload_is_stable(self, tmp_path):
        report = lint_paths([self.fixture_tree(tmp_path)])
        payload = json.loads(json.dumps(report.to_json()))
        assert payload["version"] == 2
        assert payload["clean"] is False
        assert payload["counts"] == {"R001": 1}
        assert payload["crashes"] == []
        finding = payload["findings"][0]
        assert finding["rule"] == "R001"
        assert finding["line"] == 1


class TestFormatting:
    def test_finding_format_line(self):
        finding = Finding(
            path="repro/core/x.py",
            line=3,
            column=7,
            rule_id="R001",
            message="float == comparison",
            fix_hint="use counts",
        )
        assert finding.format() == (
            "repro/core/x.py:3:7: R001 float == comparison [fix: use counts]"
        )

    def test_report_counts_by_rule(self):
        findings = (
            Finding("a.py", 1, 1, "R001", "m"),
            Finding("a.py", 2, 1, "R001", "m"),
            Finding("b.py", 1, 1, "R004", "m"),
        )
        report = LintReport(findings=findings, files_checked=2)
        assert report.counts_by_rule() == {"R001": 2, "R004": 1}
        assert "R001=2" in report.format_text()


class TestSuppressionAccounting:
    def test_suppressed_counted_not_reported(self):
        source = "x == 0.0  # repro-lint: disable=R001\ny == 0.0\n"
        findings, suppressed = lint_source(source, "repro/core/f.py")
        assert len(findings) == 1 and findings[0].line == 2
        assert suppressed == 1
