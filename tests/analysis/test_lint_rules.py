"""Per-rule fixture corpus: positive, negative, and suppressed snippets."""

import pytest

from repro.analysis.base import all_rules, get_rule
from repro.analysis.runner import lint_source
from repro.common.errors import ValidationError


def findings_for(rule_id, source, path):
    """Run one rule over a snippet at a virtual logical path."""
    findings, suppressed = lint_source(source, path, [get_rule(rule_id)])
    return findings, suppressed


class TestR001FloatEquality:
    PATH = "repro/core/fixture.py"

    @pytest.mark.parametrize(
        "snippet",
        [
            "if x == 0.0:\n    pass\n",
            "if 0.5 != y:\n    pass\n",
            "ok = value == -1.5\n",
            "chain = a < b == 0.0\n",
        ],
    )
    def test_positive(self, snippet):
        findings, _ = findings_for("R001", snippet, self.PATH)
        assert [f.rule_id for f in findings] == ["R001"]

    @pytest.mark.parametrize(
        "snippet",
        [
            "if x == 0:\n    pass\n",  # integer comparison is the point
            "if x <= 0.0:\n    pass\n",  # ordering guards are fine
            "if x == y:\n    pass\n",  # no literal involved
            "label = name == 'x'\n",
        ],
    )
    def test_negative(self, snippet):
        findings, _ = findings_for("R001", snippet, self.PATH)
        assert findings == []

    def test_suppressed(self):
        snippet = "if x == 0.0:  # repro-lint: disable=R001\n    pass\n"
        findings, suppressed = findings_for("R001", snippet, self.PATH)
        assert findings == [] and suppressed == 1

    def test_out_of_scope_layer_not_checked(self):
        findings, _ = findings_for("R001", "x == 0.0\n", "repro/datagen/g.py")
        assert findings == []


class TestR002Layering:
    def test_upward_import_flagged(self):
        findings, _ = findings_for(
            "R002", "from repro.core.archive import TarArchive\n", "repro/data/x.py"
        )
        assert [f.rule_id for f in findings] == ["R002"]
        assert "upward" in findings[0].message

    def test_cross_import_between_siblings_flagged(self):
        findings, _ = findings_for(
            "R002", "import repro.maras.signals\n", "repro/baselines/b.py"
        )
        assert [f.rule_id for f in findings] == ["R002"]
        assert "cross" in findings[0].message

    def test_nested_function_import_flagged(self):
        snippet = "def late():\n    from repro.core import builder\n    return builder\n"
        findings, _ = findings_for("R002", snippet, "repro/data/x.py")
        assert [f.rule_id for f in findings] == ["R002"]

    def test_downward_and_same_layer_imports_clean(self):
        snippet = (
            "from repro.common.errors import ReproError\n"
            "from repro.data.items import ItemVocabulary\n"
            "from repro.mining.rules import RuleId\n"
        )
        findings, _ = findings_for("R002", snippet, "repro/core/x.py")
        assert findings == []

    def test_stdlib_imports_ignored(self):
        findings, _ = findings_for("R002", "import os, sys\n", "repro/data/x.py")
        assert findings == []

    def test_suppressed(self):
        snippet = "import repro.maras.io  # repro-lint: disable=R002\n"
        findings, suppressed = findings_for("R002", snippet, "repro/data/x.py")
        assert findings == [] and suppressed == 1


class TestR003Exceptions:
    PATH = "repro/mining/fixture.py"

    @pytest.mark.parametrize(
        "snippet,needle",
        [
            ("raise ValueError('bad')\n", "ValueError"),
            ("raise RuntimeError\n", "RuntimeError"),
            ("try:\n    x()\nexcept Exception:\n    pass\n", "except Exception"),
            ("try:\n    x()\nexcept:\n    pass\n", "bare except"),
        ],
    )
    def test_positive(self, snippet, needle):
        findings, _ = findings_for("R003", snippet, self.PATH)
        assert [f.rule_id for f in findings] == ["R003"]
        assert needle in findings[0].message

    @pytest.mark.parametrize(
        "snippet",
        [
            "from repro.common.errors import ValidationError\n"
            "raise ValidationError('bad')\n",
            "raise NotImplementedError\n",  # abstract-method idiom
            "try:\n    x()\nexcept ValueError:\n    pass\n",  # narrow catch ok
            "try:\n    x()\nexcept Exception:\n    log()\n    raise\n",  # re-raise ok
            "raise errors.SomeError('dotted raises are not bare builtins')\n",
        ],
    )
    def test_negative(self, snippet):
        findings, _ = findings_for("R003", snippet, self.PATH)
        assert findings == []

    def test_suppressed(self):
        snippet = "raise KeyError('proto')  # repro-lint: disable=R003\n"
        findings, suppressed = findings_for("R003", snippet, self.PATH)
        assert findings == [] and suppressed == 1


class TestR004FrozenTypes:
    PATH = "repro/core/fixture.py"

    @pytest.mark.parametrize(
        "snippet",
        [
            "@dataclass\nclass Loc:\n    x: int\n",
            "@dataclass()\nclass Loc:\n    x: int\n",
            "@dataclass(order=True)\nclass Loc:\n    x: int\n",
            "@dataclasses.dataclass\nclass Loc:\n    x: int\n",
            "@dataclass(frozen=False)\nclass Loc:\n    x: int\n",
        ],
    )
    def test_positive(self, snippet):
        findings, _ = findings_for("R004", snippet, self.PATH)
        assert [f.rule_id for f in findings] == ["R004"]

    @pytest.mark.parametrize(
        "snippet",
        [
            "@dataclass(frozen=True)\nclass Loc:\n    x: int\n",
            "@dataclass(frozen=True, order=True)\nclass Loc:\n    x: int\n",
            "class Plain:\n    pass\n",  # not a dataclass
        ],
    )
    def test_negative(self, snippet):
        findings, _ = findings_for("R004", snippet, self.PATH)
        assert findings == []

    def test_suppressed_on_decorator_line(self):
        snippet = "@dataclass  # repro-lint: disable=R004\nclass Acc:\n    x: int\n"
        findings, suppressed = findings_for("R004", snippet, self.PATH)
        assert findings == [] and suppressed == 1

    def test_out_of_scope_layer_not_checked(self):
        findings, _ = findings_for(
            "R004", "@dataclass\nclass G:\n    x: int\n", "repro/datagen/g.py"
        )
        assert findings == []


class TestR005Clocks:
    PATH = "repro/core/fixture.py"

    @pytest.mark.parametrize(
        "snippet",
        [
            "import time\nstart = time.time()\n",
            "import time\nstart = time.perf_counter()\n",
            "import time\nstart = time.monotonic_ns()\n",
            "from time import perf_counter\n",
        ],
    )
    def test_positive(self, snippet):
        findings, _ = findings_for("R005", snippet, self.PATH)
        assert [f.rule_id for f in findings] == ["R005"]

    @pytest.mark.parametrize(
        "snippet",
        [
            "from repro.common.timing import PhaseTimer\n",
            "import time\nzone = time.tzname\n",  # non-clock attribute access
            "from time import sleep\n",  # not a clock
        ],
    )
    def test_negative(self, snippet):
        findings, _ = findings_for("R005", snippet, self.PATH)
        assert findings == []

    def test_timing_module_is_exempt(self):
        snippet = "import time\nstart = time.perf_counter()\n"
        findings, _ = findings_for("R005", snippet, "repro/common/timing.py")
        assert findings == []

    def test_suppressed(self):
        snippet = "import time\nt = time.time()  # repro-lint: disable=R005\n"
        findings, suppressed = findings_for("R005", snippet, self.PATH)
        assert findings == [] and suppressed == 1


class TestRegistry:
    def test_all_nine_rules_registered(self):
        ids = [rule.rule_id for rule in all_rules()]
        assert ids == [
            "R001",
            "R002",
            "R003",
            "R004",
            "R005",
            "R006",
            "R007",
            "R008",
            "R009",
        ]

    def test_every_rule_has_metadata(self):
        for rule in all_rules():
            assert rule.title, rule.rule_id
            assert rule.fix_hint, rule.rule_id
            assert rule.rationale, rule.rule_id

    def test_select_unknown_rule_raises(self):
        with pytest.raises(ValidationError, match="unknown rule"):
            all_rules(("R999",))

    def test_select_subset(self):
        ids = [rule.rule_id for rule in all_rules(("R003", "R001"))]
        assert ids == ["R001", "R003"]
