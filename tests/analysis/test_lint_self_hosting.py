"""The lint pass is self-hosting: the merged tree must be clean.

These are the acceptance tests the CI gate relies on: the real source
tree produces zero findings (suppressions carry their rationale in the
code), and the CLI surfaces the same result through both entry points.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.base import get_rule
from repro.analysis.runner import lint_paths, lint_source
from repro.cli import main

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


@pytest.fixture(scope="module")
def tree_report():
    return lint_paths([SRC])


class TestTreeIsClean:
    def test_no_findings(self, tree_report):
        assert tree_report.findings == (), tree_report.format_text()

    def test_whole_tree_was_visited(self, tree_report):
        assert tree_report.files_checked >= 70

    def test_suppressions_are_few_and_deliberate(self, tree_report):
        # Every suppression in the tree carries a rationale comment; a
        # sudden jump here means someone is silencing rather than fixing.
        assert 0 < tree_report.suppressed_count <= 10

    def test_no_rule_crashed(self, tree_report):
        assert tree_report.crashes == ()


class TestLockRemovalSentinel:
    """Deleting a ``with self._lock:`` from the real tree must fail R006.

    This is the contract CI stakes its value on: the rule set is not
    just clean on the tree, it actually *notices* when the tree's lock
    discipline regresses.
    """

    def test_removing_snapshot_lock_trips_r006(self):
        source = (SRC / "core" / "snapshot.py").read_text("utf-8")
        target = (
            "        with self._lock:\n"
            "            return self._refs\n"
        )
        assert target in source, "refs property changed; update sentinel"
        mutated = source.replace(target, "        return self._refs\n")
        findings, _ = lint_source(
            mutated, "repro/core/snapshot.py", [get_rule("R006")]
        )
        assert [f.rule_id for f in findings] == ["R006"]
        assert "self._refs" in findings[0].message

    def test_unmutated_snapshot_is_clean(self):
        source = (SRC / "core" / "snapshot.py").read_text("utf-8")
        findings, _ = lint_source(
            source, "repro/core/snapshot.py", [get_rule("R006")]
        )
        assert findings == []

    def test_unmutated_service_is_clean(self):
        source = (SRC / "service" / "service.py").read_text("utf-8")
        findings, _ = lint_source(
            source, "repro/service/service.py", [get_rule("R006")]
        )
        assert findings == []


class TestCliLint:
    def test_lint_subcommand_clean_tree_exit_zero(self, capsys):
        exit_code = main(["lint", str(SRC)])
        assert exit_code == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_json_format(self, capsys):
        exit_code = main(["lint", str(SRC), "--format", "json"])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True
        assert payload["files_checked"] >= 70

    def test_lint_flags_violations_with_rule_ids(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "core"
        bad.mkdir(parents=True)
        (bad / "fixture.py").write_text(
            "import time\n"
            "@dataclass\n"
            "class Loc:\n"
            "    x: int\n"
            "def f(v):\n"
            "    if v == 0.0:\n"
            "        raise ValueError('x')\n"
            "    return time.time()\n"
        )
        exit_code = main(["lint", str(tmp_path)])
        out = capsys.readouterr().out
        assert exit_code == 1
        for rule_id in ("R001", "R003", "R004", "R005"):
            assert rule_id in out, out

    def test_lint_select_restricts_rules(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "core"
        bad.mkdir(parents=True)
        (bad / "fixture.py").write_text("x == 0.0\nraise ValueError('x')\n")
        exit_code = main(["lint", str(tmp_path), "--select", "R003"])
        out = capsys.readouterr().out
        assert exit_code == 1
        assert "R003" in out and "R001" not in out

    def test_lint_unknown_select_errors(self, capsys):
        exit_code = main(["lint", str(SRC), "--select", "R999"])
        assert exit_code == 1 or exit_code == 2  # domain error path
        assert "unknown rule" in capsys.readouterr().err

    def test_list_rules_catalogue(self, capsys):
        exit_code = main(["lint", "--list-rules"])
        assert exit_code == 0
        out = capsys.readouterr().out
        for rule_id in (
            "R001",
            "R002",
            "R003",
            "R004",
            "R005",
            "R006",
            "R007",
            "R008",
            "R009",
        ):
            assert rule_id in out

    def test_lint_index_cache_cli_round_trip(self, tmp_path, capsys):
        cache = tmp_path / "lint-index.pickle"
        assert main(["lint", str(SRC), "--index-cache", str(cache)]) == 0
        capsys.readouterr()
        assert cache.exists()
        assert main(["lint", str(SRC), "--index-cache", str(cache)]) == 0
        assert "clean" in capsys.readouterr().out


class TestModuleEntryPoint:
    def test_python_m_repro_analysis(self, capsys):
        from repro.analysis.cli import main as lint_main

        assert lint_main([str(SRC)]) == 0
        assert "clean" in capsys.readouterr().out
