"""Objective interestingness measures over contingency counts."""

import math

import pytest

from repro.common.errors import ValidationError
from repro.mining.measures import (
    ContingencyCounts,
    available_measures,
    get_measure,
    improvement,
)


@pytest.fixture
def counts() -> ContingencyCounts:
    # 100 transactions; X in 40, Y in 50, X∪Y in 20.
    return ContingencyCounts(n_xy=20, n_x=40, n_y=50, n=100)


class TestContingencyCounts:
    def test_valid_counts_accepted(self, counts):
        assert counts.n == 100

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            ContingencyCounts(n_xy=-1, n_x=1, n_y=1, n=2)

    def test_joint_exceeding_marginal_rejected(self):
        with pytest.raises(ValidationError):
            ContingencyCounts(n_xy=5, n_x=4, n_y=9, n=10)

    def test_marginal_exceeding_total_rejected(self):
        with pytest.raises(ValidationError):
            ContingencyCounts(n_xy=1, n_x=11, n_y=1, n=10)


class TestCoreMeasures:
    def test_support(self, counts):
        assert get_measure("support")(counts) == pytest.approx(0.2)

    def test_confidence(self, counts):
        assert get_measure("confidence")(counts) == pytest.approx(0.5)

    def test_lift(self, counts):
        # P(XY)/P(X)P(Y) = 0.2 / (0.4 * 0.5) = 1.0: independence.
        assert get_measure("lift")(counts) == pytest.approx(1.0)

    def test_lift_above_one_for_positive_association(self):
        counts = ContingencyCounts(n_xy=30, n_x=40, n_y=50, n=100)
        assert get_measure("lift")(counts) == pytest.approx(1.5)

    def test_leverage_zero_at_independence(self, counts):
        assert get_measure("leverage")(counts) == pytest.approx(0.0)

    def test_conviction_at_independence_is_one(self, counts):
        assert get_measure("conviction")(counts) == pytest.approx(1.0)

    def test_conviction_counterexample_check_is_integer_exact(self):
        # Regression: "no counterexamples" is decided on the integer
        # counts (n_x == n_xy), not on the rounded float quotient, so
        # awkward totals still yield exactly +inf...
        counts = ContingencyCounts(n_xy=3, n_x=3, n_y=5, n=7)
        assert get_measure("conviction")(counts) == math.inf
        # ...and a single counterexample stays finite.
        near = ContingencyCounts(n_xy=3, n_x=4, n_y=5, n=7)
        assert math.isfinite(get_measure("conviction")(near))

    def test_conviction_infinite_without_counterexamples(self):
        counts = ContingencyCounts(n_xy=40, n_x=40, n_y=50, n=100)
        assert get_measure("conviction")(counts) == math.inf

    def test_jaccard(self, counts):
        assert get_measure("jaccard")(counts) == pytest.approx(20 / 70)

    def test_cosine(self, counts):
        assert get_measure("cosine")(counts) == pytest.approx(
            20 / math.sqrt(40 * 50)
        )

    def test_kulczynski(self, counts):
        assert get_measure("kulczynski")(counts) == pytest.approx(
            0.5 * (20 / 40 + 20 / 50)
        )


class TestDegenerateInputs:
    def test_all_measures_handle_empty_database(self):
        empty = ContingencyCounts(n_xy=0, n_x=0, n_y=0, n=0)
        for name in available_measures():
            value = get_measure(name)(empty)
            assert value == 0.0, name

    def test_confidence_zero_when_antecedent_absent(self):
        counts = ContingencyCounts(n_xy=0, n_x=0, n_y=5, n=10)
        assert get_measure("confidence")(counts) == 0.0


class TestRegistry:
    def test_available_measures_sorted_and_complete(self):
        names = available_measures()
        assert names == tuple(sorted(names))
        for expected in (
            "support",
            "confidence",
            "lift",
            "leverage",
            "conviction",
            "jaccard",
            "cosine",
            "kulczynski",
        ):
            assert expected in names

    def test_unknown_measure_raises_with_known_list(self):
        with pytest.raises(ValidationError, match="known:"):
            get_measure("nope")


class TestImprovement:
    def test_positive_when_rule_beats_subrules(self):
        assert improvement(0.9, 0.4) == pytest.approx(0.5)

    def test_negative_when_subrule_dominates(self):
        assert improvement(0.3, 0.7) == pytest.approx(-0.4)
