"""Every miner resolves its float threshold to an int exactly once.

``min_count_for`` is the single blessed float->int crossing point of the
mining layer (the R001 float-equality rule has nothing to flag beyond
it); a miner that re-derived the absolute threshold mid-walk would both
waste work and risk drifting from the window-level value.  These tests
pin the discipline: one call per mined window, made at entry, never from
inside the class walk.
"""

import pytest

import repro.mining.apriori as apriori_module
import repro.mining.closed as closed_module
import repro.mining.eclat as eclat_module
import repro.mining.fpgrowth as fpgrowth_module
import repro.mining.hmine as hmine_module
import repro.mining.vertical as vertical_module

TRANSACTIONS = [
    (1, 3, 4),
    (2, 3, 5),
    (1, 2, 3, 5),
    (2, 5),
    (1, 2, 3, 5),
]

MINER_MODULES = [
    (apriori_module, "mine_apriori"),
    (closed_module, "mine_closed"),
    (eclat_module, "mine_eclat"),
    (fpgrowth_module, "mine_fpgrowth"),
    (hmine_module, "mine_hmine"),
    (vertical_module, "mine_vertical"),
]


def _counting_wrapper(module, monkeypatch):
    calls = []
    real = module.min_count_for

    def counting(min_support, transaction_count):
        calls.append((min_support, transaction_count))
        return real(min_support, transaction_count)

    monkeypatch.setattr(module, "min_count_for", counting)
    return calls


@pytest.mark.parametrize(
    "module,name", MINER_MODULES, ids=[name for _, name in MINER_MODULES]
)
def test_threshold_resolved_exactly_once_per_window(
    module, name, monkeypatch
):
    calls = _counting_wrapper(module, monkeypatch)
    getattr(module, name)(TRANSACTIONS, 0.4)
    assert calls == [(0.4, len(TRANSACTIONS))]


@pytest.mark.parametrize(
    "module,name", MINER_MODULES, ids=[name for _, name in MINER_MODULES]
)
def test_threshold_resolved_once_even_on_empty_windows(
    module, name, monkeypatch
):
    """The early empty-window return must not skip (or repeat) the
    conversion: ``FrequentItemsets.min_count`` is part of the result."""
    calls = _counting_wrapper(module, monkeypatch)
    result = getattr(module, name)([], 0.4)
    assert calls == [(0.4, 0)]
    assert result.min_count == 1


def test_closed_absolute_override_never_touches_floats(monkeypatch):
    """``mine_closed(min_count=...)`` is the MARAS path: the absolute
    threshold is authoritative and no float conversion may run."""
    calls = _counting_wrapper(closed_module, monkeypatch)
    result = closed_module.mine_closed(TRANSACTIONS, 0.9, min_count=2)
    assert calls == []
    assert result.min_count == 2
