"""CHARM closed-itemset mining on crafted datasets."""

import pytest

from repro.mining.closed import is_closed_in, mine_closed


class TestCraftedClosedSets:
    def test_equal_support_collapse(self):
        # Items 1 and 2 always co-occur: {1}, {2} are not closed.
        transactions = [(1, 2), (1, 2, 3), (3,)]
        closed = mine_closed(transactions, 0.0, min_count=1)
        assert closed.counts == {
            (1, 2): 2,
            (1, 2, 3): 1,
            (3,): 2,
        }

    def test_all_distinct_singletons_closed(self):
        transactions = [(1,), (2,), (3,)]
        closed = mine_closed(transactions, 0.0, min_count=1)
        assert closed.counts == {(1,): 1, (2,): 1, (3,): 1}

    def test_min_count_two_keeps_only_intersections(self):
        transactions = [(1, 2, 3), (1, 2, 4), (5,)]
        closed = mine_closed(transactions, 0.0, min_count=2)
        # Only {1,2} occurs in >= 2 transactions.
        assert closed.counts == {(1, 2): 2}

    def test_identical_transactions(self):
        closed = mine_closed([(1, 2)] * 3, 0.0, min_count=1)
        assert closed.counts == {(1, 2): 3}

    def test_empty_input(self):
        assert len(mine_closed([], 0.5)) == 0

    def test_fractional_threshold(self):
        transactions = [(1, 2), (1, 2), (1, 3), (4,)]
        closed = mine_closed(transactions, 0.5)
        # min count 2: {1} (3 times), {1,2} (2 times).
        assert closed.counts == {(1,): 3, (1, 2): 2}


class TestClosednessOracle:
    def test_closed_itemset_detected(self):
        transactions = [(1, 2), (1, 2, 3)]
        assert is_closed_in((1, 2), transactions)

    def test_non_closed_itemset_detected(self):
        transactions = [(1, 2), (1, 2, 3)]
        assert not is_closed_in((1,), transactions)  # closure is {1,2}

    def test_absent_itemset_not_closed(self):
        assert not is_closed_in((9,), [(1, 2)])

    def test_every_mined_set_passes_oracle(self):
        transactions = [
            (1, 2, 3),
            (2, 3, 4),
            (1, 3),
            (2, 4),
            (1, 2, 3, 4),
        ]
        closed = mine_closed(transactions, 0.0, min_count=1)
        for itemset in closed:
            assert is_closed_in(itemset, transactions), itemset


class TestSubsumption:
    def test_duplicate_branches_yield_one_closed_set(self):
        # A dataset where multiple CHARM branches reach the same closure:
        # items 1..4 always co-occur in the two full transactions, so
        # {4} (and every subset containing 4) is absorbed into the
        # closure {1,2,3,4}; items 1..3 keep their own closed singletons
        # from the extra transactions they appear in alone.
        transactions = [
            (1, 2, 3, 4),
            (1, 2, 3, 4),
            (1, 5),
            (2, 6),
            (3, 7),
        ]
        closed = mine_closed(transactions, 0.0, min_count=2)
        assert closed.counts == {
            (1, 2, 3, 4): 2,
            (1,): 3,
            (2,): 3,
            (3,): 3,
        }
        assert (4,) not in closed.counts
        assert (1, 2) not in closed.counts
