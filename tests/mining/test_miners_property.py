"""Property-based cross-validation of the miners against a brute oracle."""

from itertools import combinations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mining.apriori import mine_apriori
from repro.mining.closed import mine_closed
from repro.mining.eclat import mine_eclat
from repro.mining.fpgrowth import mine_fpgrowth
from repro.mining.hmine import mine_hmine
from repro.mining.itemsets import min_count_for
from repro.mining.vertical import mine_vertical

transactions_strategy = st.lists(
    st.frozensets(st.integers(min_value=0, max_value=7), min_size=1, max_size=5),
    min_size=1,
    max_size=25,
)
support_strategy = st.sampled_from([0.0, 0.1, 0.25, 0.5, 0.75, 1.0])


def brute_force_frequent(transactions, min_support):
    """Enumerate every subset of every transaction and count directly."""
    min_count = min_count_for(min_support, len(transactions))
    counts = {}
    universe = sorted(set().union(*transactions)) if transactions else []
    for size in range(1, len(universe) + 1):
        for candidate in combinations(universe, size):
            count = sum(
                1 for t in transactions if set(candidate) <= t
            )
            if count >= min_count:
                counts[candidate] = count
        if not any(len(s) == size for s in counts):
            break  # downward closure: no larger itemset can be frequent
    return counts


@settings(max_examples=60, deadline=None)
@given(transactions_strategy, support_strategy)
def test_apriori_matches_brute_force(transactions, min_support):
    mined = mine_apriori(transactions, min_support)
    assert mined.counts == brute_force_frequent(transactions, min_support)


@settings(max_examples=120, deadline=None)
@given(transactions_strategy, support_strategy)
def test_all_miners_agree(transactions, min_support):
    apriori = mine_apriori(transactions, min_support)
    fpgrowth = mine_fpgrowth(transactions, min_support)
    hmine = mine_hmine(transactions, min_support)
    eclat = mine_eclat(transactions, min_support)
    vertical = mine_vertical(transactions, min_support)
    assert apriori.counts == fpgrowth.counts
    assert apriori.counts == hmine.counts
    assert apriori.counts == eclat.counts
    assert apriori.counts == vertical.counts


@settings(max_examples=80, deadline=None)
@given(
    transactions_strategy,
    support_strategy,
    st.integers(min_value=1, max_value=4),
)
def test_all_miners_agree_under_max_size(transactions, min_support, max_size):
    """The ``max_size`` cap prunes identically in every implementation."""
    reference = mine_apriori(transactions, min_support, max_size=max_size)
    for miner in (mine_eclat, mine_fpgrowth, mine_hmine, mine_vertical):
        capped = miner(transactions, min_support, max_size=max_size)
        assert capped.counts == reference.counts, miner.__name__
        assert capped.max_size() <= max_size


@settings(max_examples=60, deadline=None)
@given(transactions_strategy, support_strategy)
def test_vertical_matches_brute_force(transactions, min_support):
    mined = mine_vertical(transactions, min_support)
    assert mined.counts == brute_force_frequent(transactions, min_support)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.frozensets(
            st.integers(min_value=0, max_value=5), min_size=1, max_size=4
        ),
        min_size=1,
        max_size=8,
    ),
    st.integers(min_value=1, max_value=4),
    support_strategy,
)
def test_duplicate_transactions_count_multiply(base, copies, min_support):
    """Repeating every transaction *copies* times multiplies each count."""
    duplicated = [t for t in base for _ in range(copies)]
    reference = {
        itemset: count * copies
        for itemset, count in mine_apriori(base, 0.0).counts.items()
        if count * copies >= min_count_for(min_support, len(duplicated))
    }
    for miner in (mine_apriori, mine_eclat, mine_vertical):
        assert miner(duplicated, min_support).counts == reference


@settings(max_examples=80, deadline=None)
@given(transactions_strategy, support_strategy)
def test_downward_closure_invariant(transactions, min_support):
    mine_fpgrowth(transactions, min_support).validate_downward_closure()


@settings(max_examples=80, deadline=None)
@given(transactions_strategy, support_strategy)
def test_closed_sets_are_frequent_subset_with_same_counts(
    transactions, min_support
):
    frequent = mine_apriori(transactions, min_support)
    closed = mine_closed(transactions, min_support)
    for itemset, count in closed.items():
        assert frequent.counts.get(itemset) == count


@settings(max_examples=80, deadline=None)
@given(transactions_strategy, support_strategy)
def test_closed_sets_match_definition(transactions, min_support):
    """An itemset is closed iff no same-count strict superset is frequent."""
    frequent = mine_apriori(transactions, min_support)
    closed = mine_closed(transactions, min_support)
    universe = set().union(*transactions)
    expected = {}
    for itemset, count in frequent.counts.items():
        items = set(itemset)
        has_equal_superset = any(
            frequent.counts.get(tuple(sorted(items | {extra}))) == count
            for extra in universe - items
        )
        if not has_equal_superset:
            expected[itemset] = count
    assert closed.counts == expected


@settings(max_examples=60, deadline=None)
@given(transactions_strategy)
def test_every_closed_set_recovers_every_frequent_count(transactions):
    """Closure property: count of any frequent itemset equals the count of
    its smallest closed superset (the classic lossless-compression claim)."""
    frequent = mine_apriori(transactions, 0.0)
    closed = mine_closed(transactions, 0.0, min_count=1)
    for itemset, count in frequent.counts.items():
        supersets = [
            c
            for candidate, c in closed.items()
            if set(itemset) <= set(candidate)
        ]
        assert supersets, f"no closed superset for {itemset}"
        assert max(supersets) == count
