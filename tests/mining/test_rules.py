"""Rules, the catalog, and ap-genrules derivation."""

from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import UnknownRuleError, ValidationError
from repro.data.items import ItemVocabulary
from repro.mining.apriori import mine_apriori
from repro.mining.rules import Rule, RuleCatalog, derive_rules


class TestRule:
    def test_valid_rule(self):
        rule = Rule(antecedent=(1, 2), consequent=(3,))
        assert rule.items == (1, 2, 3)

    def test_overlapping_sides_rejected(self):
        with pytest.raises(ValidationError, match="overlap"):
            Rule(antecedent=(1, 2), consequent=(2, 3))

    def test_empty_side_rejected(self):
        with pytest.raises(ValidationError):
            Rule(antecedent=(), consequent=(1,))
        with pytest.raises(ValidationError):
            Rule(antecedent=(1,), consequent=())

    def test_format_with_ids(self):
        assert Rule((1,), (2,)).format() == "{1} => {2}"

    def test_format_with_vocabulary(self):
        vocab = ItemVocabulary(["milk", "bread"])
        assert Rule((0,), (1,)).format(vocab) == "{milk} => {bread}"


class TestRuleCatalog:
    def test_intern_assigns_dense_ids(self):
        catalog = RuleCatalog()
        first = catalog.intern(Rule((1,), (2,)))
        second = catalog.intern(Rule((2,), (1,)))
        assert (first, second) == (0, 1)
        assert len(catalog) == 2

    def test_intern_is_idempotent(self):
        catalog = RuleCatalog()
        rule = Rule((1,), (2,))
        assert catalog.intern(rule) == catalog.intern(rule)
        assert len(catalog) == 1

    def test_get_roundtrip(self):
        catalog = RuleCatalog()
        rule = Rule((1, 5), (2,))
        assert catalog.get(catalog.intern(rule)) == rule

    def test_get_unknown_raises(self):
        with pytest.raises(UnknownRuleError):
            RuleCatalog().get(0)

    def test_id_of_unknown_raises(self):
        with pytest.raises(UnknownRuleError):
            RuleCatalog().id_of(Rule((1,), (2,)))

    def test_find_normalizes_input(self):
        catalog = RuleCatalog()
        rule_id = catalog.intern(Rule((1, 2), (3,)))
        assert catalog.find([2, 1], [3]) == rule_id
        assert catalog.find([9], [3]) is None

    def test_iteration_in_id_order(self):
        catalog = RuleCatalog()
        rules = [Rule((i,), (i + 1,)) for i in range(0, 10, 2)]
        for rule in rules:
            catalog.intern(rule)
        assert list(catalog) == rules


def brute_force_rules(transactions, min_support, min_confidence):
    """Directly enumerate all rules from brute-force frequent itemsets."""
    mined = mine_apriori(transactions, min_support)
    expected = set()
    for itemset, count in mined.items():
        if len(itemset) < 2:
            continue
        for consequent_size in range(1, len(itemset)):
            for consequent in combinations(itemset, consequent_size):
                antecedent = tuple(i for i in itemset if i not in consequent)
                antecedent_count = mined.count(antecedent)
                if antecedent_count and count / antecedent_count >= min_confidence:
                    expected.add((antecedent, consequent))
    return expected


class TestDeriveRules:
    TRANSACTIONS = [
        (1, 3, 4),
        (2, 3, 5),
        (1, 2, 3, 5),
        (2, 5),
        (1, 2, 3, 5),
    ]

    def test_matches_brute_force(self):
        scored = derive_rules(mine_apriori(self.TRANSACTIONS, 0.4), 0.6)
        derived = {(s.rule.antecedent, s.rule.consequent) for s in scored}
        assert derived == brute_force_rules(self.TRANSACTIONS, 0.4, 0.6)

    def test_confidence_values_exact(self):
        scored = derive_rules(mine_apriori(self.TRANSACTIONS, 0.4), 0.0)
        by_key = {(s.rule.antecedent, s.rule.consequent): s for s in scored}
        # {2,5} appears 4 times, {2} 4 times: conf({2}=>{5}) = 1.0
        assert by_key[((2,), (5,))].confidence == pytest.approx(1.0)
        # {3} appears 4 times, {2,3,5} 3 times: conf({3}=>{2,5}) = 0.75
        assert by_key[((3,), (2, 5))].confidence == pytest.approx(0.75)
        assert by_key[((3,), (2, 5))].support == pytest.approx(0.6)

    def test_threshold_one_keeps_only_certain_rules(self):
        scored = derive_rules(mine_apriori(self.TRANSACTIONS, 0.4), 1.0)
        assert all(s.confidence == 1.0 for s in scored)
        keys = {(s.rule.antecedent, s.rule.consequent) for s in scored}
        assert ((2,), (5,)) in keys

    def test_no_rules_from_singletons_only(self):
        scored = derive_rules(mine_apriori([(1,), (2,)], 0.0), 0.0)
        assert scored == []

    def test_results_sorted_by_rule_id(self):
        scored = derive_rules(mine_apriori(self.TRANSACTIONS, 0.4), 0.2)
        ids = [s.rule_id for s in scored]
        assert ids == sorted(ids)

    def test_shared_catalog_reuses_ids(self):
        catalog = RuleCatalog()
        first = derive_rules(mine_apriori(self.TRANSACTIONS, 0.4), 0.5, catalog=catalog)
        second = derive_rules(
            mine_apriori(self.TRANSACTIONS, 0.4), 0.5, catalog=catalog
        )
        assert {s.rule_id for s in first} == {s.rule_id for s in second}

    def test_rejects_bad_confidence(self):
        with pytest.raises(ValidationError):
            derive_rules(mine_apriori(self.TRANSACTIONS, 0.4), 1.5)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.frozensets(st.integers(min_value=0, max_value=6), min_size=1, max_size=4),
            min_size=1,
            max_size=20,
        ),
        st.sampled_from([0.0, 0.2, 0.5]),
        st.sampled_from([0.0, 0.3, 0.7, 1.0]),
    )
    def test_matches_brute_force_property(self, transactions, min_support, min_confidence):
        scored = derive_rules(
            mine_apriori(transactions, min_support), min_confidence
        )
        derived = {(s.rule.antecedent, s.rule.consequent) for s in scored}
        assert derived == brute_force_rules(transactions, min_support, min_confidence)


class TestSplitPlanMemo:
    """The catalog-level derivation memo replays ap-genrules exactly."""

    TRANSACTIONS = [
        (1, 2, 3, 4),
        (1, 2, 3),
        (1, 2, 4),
        (2, 3, 4),
        (1, 3),
        (1, 2, 3, 4),
    ]

    def test_replay_windows_bit_identical_to_fresh_catalogs(self):
        """A shared catalog's plan replay = fresh ap-genrules per window."""
        windows = [self.TRANSACTIONS, self.TRANSACTIONS[::-1], self.TRANSACTIONS[:4]]
        shared = RuleCatalog()
        replayed = [
            derive_rules(mine_apriori(w, 0.2), 0.4, catalog=shared) for w in windows
        ]
        for window, scored in zip(windows, replayed):
            fresh = derive_rules(mine_apriori(window, 0.2), 0.4)
            assert [
                (s.rule.antecedent, s.rule.consequent, s.rule_count, s.antecedent_count)
                for s in scored
            ] == [
                (s.rule.antecedent, s.rule.consequent, s.rule_count, s.antecedent_count)
                for s in fresh
            ]

    def test_interned_rules_are_canonical_objects(self):
        """Re-deriving returns the catalog's Rule instance, not a copy."""
        catalog = RuleCatalog()
        first = derive_rules(mine_apriori(self.TRANSACTIONS, 0.2), 0.4, catalog=catalog)
        second = derive_rules(
            mine_apriori(self.TRANSACTIONS, 0.2), 0.4, catalog=catalog
        )
        by_id = {s.rule_id: s.rule for s in first}
        for s in second:
            assert s.rule is by_id[s.rule_id]
            assert s.rule is catalog.get(s.rule_id)

    def test_plan_path_equals_levelwise_fallback(self, monkeypatch):
        """Forcing the plan-free fallback derives the identical ruleset."""
        import repro.mining.rules as rules_module

        planned = derive_rules(mine_apriori(self.TRANSACTIONS, 0.2), 0.4)
        monkeypatch.setattr(rules_module, "PLAN_SIZE_CAP", 1)
        fallback = derive_rules(mine_apriori(self.TRANSACTIONS, 0.2), 0.4)
        assert planned == fallback

    def test_intern_parts_validates_on_first_intern(self):
        catalog = RuleCatalog()
        with pytest.raises(ValidationError):
            catalog.intern_parts((1, 2), (2, 3))
        with pytest.raises(ValidationError):
            catalog.intern_parts((), (1,))

    def test_intern_parts_matches_intern(self):
        catalog = RuleCatalog()
        rule_id, rule = catalog.intern_parts((1,), (2,))
        assert catalog.intern(Rule((1,), (2,))) == rule_id
        assert catalog.get(rule_id) is rule
