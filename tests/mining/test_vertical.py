"""The vertical bitmap kernel: masks, diffset switching, stack depth."""

import sys

import pytest

from repro.mining.apriori import mine_apriori
from repro.mining.eclat import mine_eclat
from repro.mining.itemsets import as_itemsets
from repro.mining.vertical import (
    _diffsets_win,
    mine_vertical,
    vertical_masks,
)

DENSE = [tuple(range(6))] * 7 + [(0, 1, 2), (3, 4, 5)]
SPARSE = [(0,), (1,), (2, 3), (4,), (0, 5), (1, 3)]


def _stack_depth():
    frame, depth = sys._getframe(), 0
    while frame is not None:
        depth += 1
        frame = frame.f_back
    return depth


class TestVerticalMasks:
    def test_bit_t_set_iff_transaction_t_contains_item(self):
        itemsets = as_itemsets([(1, 3), (3,), (1, 2)])
        masks = vertical_masks(itemsets)
        assert masks == {1: 0b101, 3: 0b011, 2: 0b100}

    def test_popcount_is_item_frequency(self):
        itemsets = as_itemsets(DENSE)
        masks = vertical_masks(itemsets)
        for item, mask in masks.items():
            direct = sum(1 for t in itemsets if item in t)
            assert mask.bit_count() == direct

    def test_empty_database(self):
        assert vertical_masks([]) == {}


class TestDiffsetSwitch:
    def test_dense_roots_prefer_diffsets(self):
        roots = [((i,), 0, 9) for i in range(3)]  # 9 of 10 tids each
        assert _diffsets_win(roots, 10)

    def test_sparse_roots_keep_tidsets(self):
        roots = [((i,), 0, 2) for i in range(3)]  # 2 of 10 tids each
        assert not _diffsets_win(roots, 10)

    @pytest.mark.parametrize("database", [DENSE, SPARSE, DENSE + SPARSE])
    @pytest.mark.parametrize("min_support", [0.0, 0.3, 0.7, 1.0])
    def test_both_representations_agree_with_apriori(
        self, database, min_support
    ):
        """DENSE drives the walk through diffset classes, SPARSE keeps it
        on tidsets, and the mix switches mid-walk; counts must be exact
        either way."""
        assert (
            mine_vertical(database, min_support).counts
            == mine_apriori(database, min_support).counts
        )


class TestExplicitStack:
    """Long chained itemsets must not depend on the recursion limit."""

    CHAIN = [tuple(range(16))] * 2  # every one of 2**16 - 1 subsets frequent

    @pytest.mark.parametrize("miner", [mine_vertical, mine_eclat])
    def test_deep_chain_under_tight_recursion_limit(self, miner):
        # A per-level recursive class walk would need ~16 nested frames;
        # leave it far less headroom than that and demand completion.
        limit = sys.getrecursionlimit()
        try:
            sys.setrecursionlimit(_stack_depth() + 12)
            mined = miner(self.CHAIN, 1.0)
        finally:
            sys.setrecursionlimit(limit)
        assert len(mined.counts) == 2**16 - 1
        assert mined.counts[tuple(range(16))] == 2

    @pytest.mark.parametrize("miner", [mine_vertical, mine_eclat])
    def test_max_size_caps_depth_and_output(self, miner):
        mined = miner(self.CHAIN, 1.0, max_size=2)
        assert mined.max_size() == 2
        assert len(mined.counts) == 16 + 16 * 15 // 2
