"""The frequent-itemset miners on crafted data with known answers."""

import pytest

from repro.common.errors import ValidationError
from repro.mining.apriori import generate_candidates, mine_apriori
from repro.mining.fpgrowth import mine_fpgrowth
from repro.mining.eclat import mine_eclat
from repro.mining.hmine import mine_hmine
from repro.mining.itemsets import FrequentItemsets, min_count_for
from repro.mining.vertical import mine_vertical

MINERS = [mine_apriori, mine_eclat, mine_fpgrowth, mine_hmine, mine_vertical]

# The textbook example: 5 transactions over items 1..5.
TEXTBOOK = [
    (1, 3, 4),
    (2, 3, 5),
    (1, 2, 3, 5),
    (2, 5),
    (1, 2, 3, 5),
]

# Expected counts at min support 0.4 (min count 2).
TEXTBOOK_EXPECTED = {
    (1,): 3,
    (2,): 4,
    (3,): 4,
    (5,): 4,
    (1, 2): 2,
    (1, 3): 3,
    (2, 3): 3,
    (2, 5): 4,
    (3, 5): 3,
    (1, 2, 3): 2,
    (1, 2, 5): 2,
    (1, 3, 5): 2,
    (2, 3, 5): 3,
    (1, 2, 3, 5): 2,
    (1, 5): 2,
}


class TestMinCountFor:
    def test_exact_fraction(self):
        assert min_count_for(0.4, 5) == 2

    def test_rounds_up(self):
        assert min_count_for(0.41, 5) == 3

    def test_zero_support_still_needs_one(self):
        assert min_count_for(0.0, 100) == 1

    def test_full_support(self):
        assert min_count_for(1.0, 7) == 7

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValidationError):
            min_count_for(1.5, 10)


@pytest.mark.parametrize("miner", MINERS)
class TestTextbookExample:
    def test_exact_counts(self, miner):
        result = miner(TEXTBOOK, 0.4)
        assert result.counts == TEXTBOOK_EXPECTED

    def test_transaction_count_recorded(self, miner):
        assert miner(TEXTBOOK, 0.4).transaction_count == 5

    def test_supports_are_count_ratios(self, miner):
        result = miner(TEXTBOOK, 0.4)
        assert result.support((2, 5)) == pytest.approx(0.8)
        assert result.support((9,)) == 0.0

    def test_downward_closure_holds(self, miner):
        miner(TEXTBOOK, 0.4).validate_downward_closure()

    def test_higher_threshold_prunes(self, miner):
        result = miner(TEXTBOOK, 0.8)
        assert set(result.counts) == {(2,), (3,), (5,), (2, 5)}

    def test_max_size_caps_cardinality(self, miner):
        result = miner(TEXTBOOK, 0.4, max_size=2)
        assert result.max_size() == 2
        # All size-1 and size-2 sets still found.
        expected = {s: c for s, c in TEXTBOOK_EXPECTED.items() if len(s) <= 2}
        assert result.counts == expected

    def test_empty_input(self, miner):
        result = miner([], 0.5)
        assert len(result) == 0
        assert result.transaction_count == 0

    def test_nothing_frequent(self, miner):
        result = miner([(1,), (2,), (3,)], 0.9)
        assert len(result) == 0

    def test_single_transaction(self, miner):
        result = miner([(1, 2)], 0.5)
        assert result.counts == {(1,): 1, (2,): 1, (1, 2): 1}

    def test_duplicate_transactions_counted(self, miner):
        result = miner([(1, 2)] * 4, 1.0)
        assert result.count((1, 2)) == 4


class TestFrequentItemsetsContainer:
    def test_of_size(self):
        result = mine_apriori(TEXTBOOK, 0.4)
        pairs = result.of_size(2)
        assert all(len(s) == 2 for s in pairs)
        assert pairs[(2, 5)] == 4

    def test_contains_normalizes(self):
        result = mine_apriori(TEXTBOOK, 0.4)
        assert (5, 2) in result  # unsorted query
        assert (9,) not in result

    def test_validate_detects_missing_subset(self):
        broken = FrequentItemsets(
            counts={(1, 2): 2, (1,): 2}, transaction_count=4
        )
        with pytest.raises(ValidationError, match="missing"):
            broken.validate_downward_closure()

    def test_validate_detects_count_inversion(self):
        broken = FrequentItemsets(
            counts={(1, 2): 3, (1,): 2, (2,): 3}, transaction_count=4
        )
        with pytest.raises(ValidationError, match="count"):
            broken.validate_downward_closure()


class TestAprioriCandidateGeneration:
    def test_joins_common_prefix(self):
        frequent = {(1, 2), (1, 3), (2, 3)}
        assert sorted(generate_candidates(frequent, 3)) == [(1, 2, 3)]

    def test_prunes_candidates_with_infrequent_subsets(self):
        # (1,2) and (1,3) join to (1,2,3) but (2,3) is not frequent.
        frequent = {(1, 2), (1, 3)}
        assert generate_candidates(frequent, 3) == []

    def test_no_join_without_shared_prefix(self):
        assert generate_candidates({(1, 2), (3, 4)}, 3) == []


class TestSingleLongTransaction:
    """FP-Growth's single-path shortcut must agree with the others."""

    def test_chain_data(self):
        transactions = [(1, 2, 3, 4)] * 3 + [(1, 2)] * 2 + [(1,)]
        results = [miner(transactions, 0.3) for miner in MINERS]
        for other in results[1:]:
            assert other.counts == results[0].counts
        assert results[0].count((1, 2, 3, 4)) == 3
        assert results[0].count((1, 2)) == 5
        assert results[0].count((1,)) == 6
