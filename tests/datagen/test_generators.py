"""Quest, retail and webdocs generators: determinism and target statistics."""

import pytest

from repro.common.errors import ValidationError
from repro.data.windows import WindowedDatabase
from repro.datagen.quest import (
    QuestParameters,
    generate_quest,
    quest_t2k_scaled,
    quest_t5k_scaled,
)
from repro.datagen.retail import (
    RetailParameters,
    generate_retail,
    replicate,
    retail_dataset,
)
from repro.datagen.webdocs import WebdocsParameters, generate_webdocs, webdocs_dataset


class TestQuest:
    PARAMS = QuestParameters(
        transaction_count=500, avg_transaction_size=8.0, item_count=100, seed=3
    )

    def test_deterministic(self):
        first = generate_quest(self.PARAMS)
        second = generate_quest(self.PARAMS)
        assert [t.items for t in first] == [t.items for t in second]

    def test_transaction_count(self):
        assert len(generate_quest(self.PARAMS)) == 500

    def test_average_length_near_target(self):
        db = generate_quest(self.PARAMS)
        assert db.average_transaction_length() == pytest.approx(8.0, rel=0.35)

    def test_items_within_universe(self):
        db = generate_quest(self.PARAMS)
        assert max(db.unique_items()) < 100

    def test_patterns_create_correlations(self):
        """Items co-occur far above independence: the pattern pool works."""
        db = generate_quest(self.PARAMS)
        n = len(db)
        freqs = db.item_frequencies()
        pair_counts = {}
        for transaction in db:
            items = transaction.items
            for i, a in enumerate(items):
                for b in items[i + 1 :]:
                    pair_counts[(a, b)] = pair_counts.get((a, b), 0) + 1
        best_lift = max(
            count * n / (freqs[a] * freqs[b])
            for (a, b), count in pair_counts.items()
            if count >= 10
        )
        assert best_lift > 2.0

    def test_presets(self):
        t5k = quest_t5k_scaled(scale=0.0002)
        t2k = quest_t2k_scaled(scale=0.0005)
        assert len(t5k) == 1000
        assert len(t2k) == 1000
        assert (
            t2k.average_transaction_length() > t5k.average_transaction_length()
        )

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValidationError):
            QuestParameters(transaction_count=0, avg_transaction_size=5, item_count=10)
        with pytest.raises(ValidationError):
            QuestParameters(
                transaction_count=5,
                avg_transaction_size=5,
                item_count=10,
                correlation=2.0,
            )


class TestRetail:
    PARAMS = RetailParameters(transaction_count=2000, item_count=200, seed=7)

    def test_deterministic(self):
        first, _ = generate_retail(self.PARAMS)
        second, _ = generate_retail(self.PARAMS)
        assert [t.items for t in first] == [t.items for t in second]

    def test_average_basket_near_ten(self):
        db, _ = generate_retail(self.PARAMS)
        assert db.average_transaction_length() == pytest.approx(10.0, rel=0.25)

    def test_popularity_is_heavy_tailed(self):
        db, _ = generate_retail(self.PARAMS)
        freqs = sorted(db.item_frequencies().values(), reverse=True)
        top_decile = sum(freqs[: len(freqs) // 10])
        assert top_decile > 0.3 * sum(freqs)

    def test_planted_bundles_cooccur(self):
        db, truth = generate_retail(self.PARAMS)
        n = len(db)
        hit = 0
        for bundle in truth.bundles:
            count = sum(1 for t in db if set(bundle) <= set(t.items))
            if count >= 5:
                hit += 1
        assert hit >= len(truth.bundles) // 4

    def test_seasonal_drift_measurable(self):
        """A seasonal item is more frequent in its peak phase's window."""
        db, truth = generate_retail(self.PARAMS)
        windows = WindowedDatabase.partition_by_count(db, self.PARAMS.phases)
        drifts = 0
        for item, peak in zip(truth.seasonal_items, truth.seasonal_schedule):
            peak_count = sum(
                1 for t in windows.window(peak) if item in t.items
            )
            other = [
                sum(1 for t in windows.window(w) if item in t.items)
                for w in range(self.PARAMS.phases)
                if w != peak
            ]
            if other and peak_count > max(other):
                drifts += 1
        assert drifts >= len(truth.seasonal_items) // 2

    def test_default_dataset_shape(self):
        db = retail_dataset(transaction_count=1000)
        assert len(db) == 1000


class TestReplicate:
    def test_size_and_time_shift(self):
        db = retail_dataset(transaction_count=300)
        doubled = replicate(db, 2)
        assert len(doubled) == 600
        assert doubled.time_span.length == 2 * db.time_span.length

    def test_identity_replication(self):
        db = retail_dataset(transaction_count=100)
        same = replicate(db, 1)
        assert [t.items for t in same] == [t.items for t in db]

    def test_bad_factor(self):
        with pytest.raises(ValidationError):
            replicate(retail_dataset(transaction_count=100), 0)


class TestWebdocs:
    PARAMS = WebdocsParameters(
        document_count=400, vocabulary_size=5000, avg_document_length=30, seed=13
    )

    def test_deterministic(self):
        first = generate_webdocs(self.PARAMS)
        second = generate_webdocs(self.PARAMS)
        assert [t.items for t in first] == [t.items for t in second]

    def test_long_documents(self):
        db = generate_webdocs(self.PARAMS)
        assert db.average_transaction_length() == pytest.approx(30, rel=0.3)

    def test_vocabulary_much_larger_than_retail(self):
        db = generate_webdocs(self.PARAMS)
        assert len(db.unique_items()) > 1000

    def test_common_terms_are_dense(self):
        """Boilerplate terms appear in a large fraction of documents."""
        db = generate_webdocs(self.PARAMS)
        freqs = db.item_frequencies()
        common = [freqs.get(i, 0) for i in range(self.PARAMS.common_term_count)]
        assert max(common) > 0.3 * len(db)

    def test_default_dataset(self):
        db = webdocs_dataset(document_count=200)
        assert len(db) == 200
