"""Randomness helpers: determinism and distributional sanity."""

import pytest

from repro.common.errors import ValidationError
from repro.datagen.seeds import (
    cumulative,
    make_rng,
    poisson,
    weighted_choice,
    zipf_weights,
)


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a, b = make_rng(42), make_rng(42)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()

    @pytest.mark.parametrize("bad", [1.5, "7", None, True])
    def test_non_int_seed_rejected(self, bad):
        with pytest.raises(ValidationError):
            make_rng(bad)


class TestZipfWeights:
    def test_normalized(self):
        weights = zipf_weights(100, 1.0)
        assert sum(weights) == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        weights = zipf_weights(50, 1.2)
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_zero_skew_is_uniform(self):
        weights = zipf_weights(10, 0.0)
        assert all(w == pytest.approx(0.1) for w in weights)

    def test_bad_args_rejected(self):
        with pytest.raises(ValidationError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValidationError):
            zipf_weights(5, -1.0)


class TestWeightedChoice:
    def test_respects_weights(self):
        rng = make_rng(3)
        cdf = cumulative([0.9, 0.1])
        draws = [weighted_choice(rng, cdf) for _ in range(2000)]
        share = draws.count(0) / len(draws)
        assert 0.85 < share < 0.95

    def test_single_weight(self):
        rng = make_rng(3)
        assert weighted_choice(rng, cumulative([1.0])) == 0

    def test_all_indexes_reachable(self):
        rng = make_rng(5)
        cdf = cumulative([1.0, 1.0, 1.0])
        seen = {weighted_choice(rng, cdf) for _ in range(200)}
        assert seen == {0, 1, 2}


class TestPoisson:
    def test_mean_approximately_correct(self):
        rng = make_rng(9)
        samples = [poisson(rng, 4.0) for _ in range(5000)]
        assert sum(samples) / len(samples) == pytest.approx(4.0, rel=0.1)

    def test_large_mean_normal_fallback(self):
        rng = make_rng(9)
        samples = [poisson(rng, 50.0) for _ in range(2000)]
        assert sum(samples) / len(samples) == pytest.approx(50.0, rel=0.1)
        assert min(samples) >= 0

    def test_non_positive_mean_rejected(self):
        with pytest.raises(ValidationError):
            poisson(make_rng(1), 0.0)
