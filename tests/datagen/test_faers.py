"""FAERS-style report generator: planted structure and exclusiveness."""

import pytest

from repro.common.errors import ValidationError
from repro.datagen.faers import (
    CASE_STUDY_INTERACTIONS,
    FaersParameters,
    faers_quarter,
    generate_faers,
)


@pytest.fixture(scope="module")
def quarter():
    return generate_faers(FaersParameters(report_count=2500, seed=41))


class TestStructure:
    def test_deterministic(self):
        first, _, _ = generate_faers(FaersParameters(report_count=300, seed=5))
        second, _, _ = generate_faers(FaersParameters(report_count=300, seed=5))
        assert [(r.drugs, r.adrs) for r in first] == [
            (r.drugs, r.adrs) for r in second
        ]

    def test_counts(self, quarter):
        database, reference, truth = quarter
        assert len(database) == 2500
        assert len(reference) == FaersParameters().planted_interaction_count
        assert len(truth.interactions) == len(reference)

    def test_case_study_names_present(self, quarter):
        database, _, _ = quarter
        for drugs, adrs in CASE_STUDY_INTERACTIONS:
            for drug in drugs:
                assert drug in database.drug_vocabulary
            for adr in adrs:
                assert adr in database.adr_vocabulary

    def test_every_report_has_both_sides(self, quarter):
        database, _, _ = quarter
        for report in database:
            assert report.drugs and report.adrs

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValidationError):
            FaersParameters(report_count=0)
        with pytest.raises(ValidationError):
            FaersParameters(interaction_report_rate=0.7, confounder_report_rate=0.7)
        with pytest.raises(ValidationError):
            FaersParameters(drug_count=3)


class TestPlantedExclusiveness:
    """The statistical structure the contrast measure relies on."""

    def test_interaction_adrs_not_in_own_profiles(self, quarter):
        _, _, truth = quarter
        own = {adr for profile in truth.own_adrs.values() for adr in profile}
        for interaction in truth.interactions:
            assert not (interaction.adrs & own)

    def test_pair_confidence_dominates_singles(self, quarter):
        """conf(pair => ADRs) far above conf(single drug => ADRs)."""
        database, _, truth = quarter
        dominated = 0
        for interaction in truth.interactions:
            drugs = sorted(interaction.drugs)
            adrs = sorted(interaction.adrs)
            pair_confidence = database.confidence(drugs, adrs)
            single_confidences = [
                database.confidence([drug], adrs) for drug in drugs
            ]
            if pair_confidence > 2 * max(single_confidences):
                dominated += 1
        assert dominated >= 0.8 * len(truth.interactions)

    def test_interactions_have_enough_evidence(self, quarter):
        database, _, truth = quarter
        well_supported = sum(
            1
            for interaction in truth.interactions
            if database.count(sorted(interaction.drugs), sorted(interaction.adrs)) >= 5
        )
        assert well_supported >= 0.8 * len(truth.interactions)

    def test_confounder_pairs_frequent_but_not_interacting(self, quarter):
        database, reference, truth = quarter
        for a, b in truth.confounder_pairs:
            count = database.count([a, b])
            assert count >= 5  # frequently co-prescribed
        confounder_sets = {frozenset(p) for p in truth.confounder_pairs}
        interaction_sets = {frozenset(i.drugs) for i in truth.interactions}
        assert not (confounder_sets & interaction_sets)


class TestQuarterHelper:
    def test_quarter_seeds_differ(self):
        first, _, _ = faers_quarter(seed=1, report_count=200)
        second, _, _ = faers_quarter(seed=2, report_count=200)
        assert [(r.drugs, r.adrs) for r in first] != [
            (r.drugs, r.adrs) for r in second
        ]
