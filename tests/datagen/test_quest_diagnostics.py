"""Quest generator diagnostics and parameter edge cases."""

import pytest

from repro.common.errors import ValidationError
from repro.datagen.quest import (
    QuestParameters,
    expected_density,
    generate_quest,
    pattern_pool_entropy,
)


class TestExpectedDensity:
    def test_density_formula(self):
        params = QuestParameters(
            transaction_count=100, avg_transaction_size=10.0, item_count=200
        )
        assert expected_density(params) == pytest.approx(0.05)

    def test_density_tracks_generated_data(self):
        params = QuestParameters(
            transaction_count=800, avg_transaction_size=8.0, item_count=100, seed=9
        )
        database = generate_quest(params)
        measured = database.average_transaction_length() / params.item_count
        assert measured == pytest.approx(expected_density(params), rel=0.4)


class TestPatternPoolEntropy:
    def test_entropy_positive_and_bounded(self):
        params = QuestParameters(
            transaction_count=10,
            avg_transaction_size=5.0,
            item_count=50,
            pattern_count=64,
        )
        entropy = pattern_pool_entropy(params)
        assert 0.0 < entropy <= 6.0  # log2(64) = 6 is the uniform maximum

    def test_entropy_below_uniform(self):
        """Exponential weights are skewed, so entropy < log2(n)."""
        import math

        params = QuestParameters(
            transaction_count=10,
            avg_transaction_size=5.0,
            item_count=50,
            pattern_count=128,
            seed=3,
        )
        assert pattern_pool_entropy(params) < math.log2(128)


class TestParameterEdges:
    def test_tiny_universe(self):
        params = QuestParameters(
            transaction_count=50, avg_transaction_size=2.0, item_count=2, seed=1
        )
        database = generate_quest(params)
        assert len(database) == 50
        assert database.unique_items() <= {0, 1}

    def test_zero_correlation(self):
        params = QuestParameters(
            transaction_count=100,
            avg_transaction_size=5.0,
            item_count=50,
            correlation=0.0,
            seed=2,
        )
        assert len(generate_quest(params)) == 100

    def test_full_correlation(self):
        params = QuestParameters(
            transaction_count=100,
            avg_transaction_size=5.0,
            item_count=50,
            correlation=1.0,
            seed=2,
        )
        assert len(generate_quest(params)) == 100

    @pytest.mark.parametrize(
        "field,value",
        [
            ("pattern_count", 0),
            ("avg_pattern_size", 0.0),
            ("item_count", 1),
        ],
    )
    def test_invalid_parameters(self, field, value):
        kwargs = dict(
            transaction_count=10, avg_transaction_size=5.0, item_count=20
        )
        kwargs[field] = value
        with pytest.raises(ValidationError):
            QuestParameters(**kwargs)
