"""Confidence/RR baseline rankers and the rank-of-signal lookup."""

import pytest

from repro.common.errors import ValidationError
from repro.maras.associations import DrugAdrAssociation
from repro.maras.baselines import (
    enumerate_candidate_pool,
    rank_by_confidence,
    rank_by_reporting_ratio,
    rank_of_association,
)
from repro.maras.reports import Report, ReportDatabase


@pytest.fixture(scope="module")
def database() -> ReportDatabase:
    reports = []
    time = 0
    for _ in range(5):
        reports.append(Report.create([0, 1], [0], time))
        time += 1
    for _ in range(3):
        reports.append(Report.create([0, 1, 2], [0, 1], time))
        time += 1
    for _ in range(4):
        reports.append(Report.create([2, 3], [2], time))
        time += 1
    return ReportDatabase(reports)


class TestCandidatePool:
    def test_pool_counts_are_containment_counts(self, database):
        pool = enumerate_candidate_pool(database, min_count=2)
        for association, count in pool:
            assert count == database.count(association.drugs, association.adrs)
            assert count >= 2

    def test_pool_includes_spurious_partials(self, database):
        """Unlike MARAS, the pool keeps partial interpretations."""
        pool_keys = {
            (a.drugs, a.adrs) for a, _ in enumerate_candidate_pool(database, min_count=2)
        }
        # (0,1) => (1,) is a partial interpretation of the 3-drug reports
        # (drug 2 dropped) - spurious under Definitions 3/4, kept here.
        assert ((0, 1), (1,)) in pool_keys

    def test_min_drugs_respected(self, database):
        pool = enumerate_candidate_pool(database, min_count=1, min_drugs=2)
        assert all(a.drug_count >= 2 for a, _ in pool)

    def test_size_caps_respected(self, database):
        pool = enumerate_candidate_pool(
            database, min_count=1, max_drugs=2, max_adrs=1
        )
        for association, _ in pool:
            assert association.drug_count <= 2
            assert len(association.adrs) <= 1

    def test_bad_min_count(self, database):
        with pytest.raises(ValidationError):
            enumerate_candidate_pool(database, min_count=0)


class TestRankers:
    def test_confidence_ranking_descending(self, database):
        ranking = rank_by_confidence(database, min_count=2)
        values = [v for _, v in ranking]
        assert values == sorted(values, reverse=True)

    def test_confidence_values_correct(self, database):
        ranking = rank_by_confidence(database, min_count=2)
        for association, value in ranking:
            assert value == pytest.approx(
                database.confidence(association.drugs, association.adrs)
            )

    def test_rr_ranking_descending(self, database):
        ranking = rank_by_reporting_ratio(database, min_count=2)
        values = [v for _, v in ranking]
        assert values == sorted(values, reverse=True)

    def test_shared_pool_reused(self, database):
        pool = enumerate_candidate_pool(database, min_count=2)
        by_conf = rank_by_confidence(database, pool=pool)
        by_rr = rank_by_reporting_ratio(database, pool=pool)
        assert {a for a, _ in by_conf} == {a for a, _ in by_rr}


class TestRankOf:
    def test_finds_rank(self, database):
        ranking = rank_by_confidence(database, min_count=2)
        target = ranking[2][0]
        assert rank_of_association(ranking, target) == 3

    def test_absent_association_is_none(self, database):
        ranking = rank_by_confidence(database, min_count=2)
        ghost = DrugAdrAssociation(drugs=(97, 98), adrs=(99,))
        assert rank_of_association(ranking, ghost) is None
