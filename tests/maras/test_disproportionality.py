"""PRR / ROR / chi-squared disproportionality statistics."""

import math

import pytest

from repro.common.errors import ValidationError
from repro.maras.disproportionality import (
    ContingencyTable,
    contingency_table,
    rank_by_prr,
    rank_by_ror,
)
from repro.maras.baselines import enumerate_candidate_pool
from repro.maras.reports import Report, ReportDatabase


class TestContingencyTable:
    def test_negative_cells_rejected(self):
        with pytest.raises(ValidationError):
            ContingencyTable(a=-1, b=0, c=0, d=0)

    def test_prr_textbook_value(self):
        # 10/(10+90) = 0.1 exposed rate; 5/(5+895) ≈ 0.00556 unexposed.
        table = ContingencyTable(a=10, b=90, c=5, d=895)
        assert table.prr == pytest.approx((10 / 100) / (5 / 900))

    def test_prr_one_at_independence(self):
        # Exposed and unexposed report the ADR at the same 10% rate.
        table = ContingencyTable(a=10, b=90, c=100, d=900)
        assert table.prr == pytest.approx(1.0)

    def test_prr_infinite_when_only_exposed(self):
        assert ContingencyTable(a=5, b=5, c=0, d=90).prr == math.inf

    def test_prr_zero_without_cases(self):
        assert ContingencyTable(a=0, b=10, c=5, d=85).prr == 0.0

    def test_ror_textbook_value(self):
        table = ContingencyTable(a=10, b=90, c=5, d=895)
        assert table.ror == pytest.approx((10 * 895) / (90 * 5))

    def test_ror_infinite_and_zero_cases(self):
        assert ContingencyTable(a=5, b=0, c=5, d=90).ror == math.inf
        assert ContingencyTable(a=0, b=10, c=5, d=85).ror == 0.0

    def test_chi_squared_zero_at_independence(self):
        table = ContingencyTable(a=10, b=90, c=10, d=90)
        assert table.chi_squared == pytest.approx(0.0, abs=0.3)

    def test_chi_squared_large_for_strong_association(self):
        table = ContingencyTable(a=50, b=10, c=10, d=930)
        assert table.chi_squared > 100

    def test_signal_criterion(self):
        strong = ContingencyTable(a=10, b=20, c=5, d=965)
        assert strong.is_signal()
        too_few_cases = ContingencyTable(a=2, b=0, c=1, d=997)
        assert not too_few_cases.is_signal()

    def test_n(self):
        assert ContingencyTable(a=1, b=2, c=3, d=4).n == 10


@pytest.fixture(scope="module")
def database() -> ReportDatabase:
    reports = []
    time = 0
    for _ in range(8):  # strong DDI: 0+1 -> ADR 5
        reports.append(Report.create([0, 1], [5], time))
        time += 1
    for _ in range(10):  # drug 0 alone, other ADR
        reports.append(Report.create([0], [7], time))
        time += 1
    for _ in range(10):  # drug 1 alone, other ADR
        reports.append(Report.create([1], [8], time))
        time += 1
    for _ in range(20):  # background
        reports.append(Report.create([2], [9], time))
        time += 1
    return ReportDatabase(reports)


class TestContingencyFromDatabase:
    def test_cells_sum_to_n(self, database):
        table = contingency_table(database, [0, 1], [5])
        assert table.n == len(database)

    def test_cells_match_brute_force(self, database):
        table = contingency_table(database, [0, 1], [5])
        a = sum(
            1
            for r in database
            if {0, 1} <= set(r.drugs) and 5 in r.adrs
        )
        b = sum(
            1
            for r in database
            if {0, 1} <= set(r.drugs) and 5 not in r.adrs
        )
        assert (table.a, table.b) == (a, b)
        assert table.c == sum(
            1
            for r in database
            if not {0, 1} <= set(r.drugs) and 5 in r.adrs
        )

    def test_planted_pair_is_a_signal(self, database):
        table = contingency_table(database, [0, 1], [5])
        assert table.is_signal()

    def test_background_is_not_a_signal(self, database):
        table = contingency_table(database, [2], [5])
        assert not table.is_signal()


class TestRanking:
    def test_prr_ranks_planted_pair_first(self, database):
        pool = enumerate_candidate_pool(database, min_count=2, min_drugs=2)
        ranking = rank_by_prr(database, pool)
        assert ranking, "criterion should keep the planted pair"
        top_association = ranking[0][0]
        assert set(top_association.drugs) == {0, 1}

    def test_prr_criterion_filters(self, database):
        pool = enumerate_candidate_pool(database, min_count=2, min_drugs=2)
        with_criterion = rank_by_prr(database, pool, apply_signal_criterion=True)
        without = rank_by_prr(database, pool, apply_signal_criterion=False)
        assert len(with_criterion) <= len(without)

    def test_ror_ranking_descending(self, database):
        pool = enumerate_candidate_pool(database, min_count=2, min_drugs=2)
        ranking = rank_by_ror(database, pool)
        finite = [v for _, v in ranking if not math.isinf(v)]
        assert finite == sorted(finite, reverse=True)

    def test_infinite_values_rank_first(self, database):
        pool = enumerate_candidate_pool(database, min_count=2, min_drugs=2)
        ranking = rank_by_ror(database, pool)
        values = [v for _, v in ranking]
        if any(math.isinf(v) for v in values):
            last_infinite = max(
                i for i, v in enumerate(values) if math.isinf(v)
            )
            assert all(math.isinf(v) for v in values[: last_infinite + 1])
