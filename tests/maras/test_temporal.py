"""Temporal MDAR tracking: digests, trajectories, persistence, emergence."""

import pytest

from repro.common.errors import ValidationError
from repro.maras.reports import Report, ReportDatabase
from repro.maras.signals import MarasConfig
from repro.maras.temporal import TemporalSignalTracker


def quarter(interactions, noise_seed, n_noise=20):
    """Build one period: interaction reports plus solo-drug noise.

    *interactions* is a list of ((drugs), (adrs), copies).
    """
    import random

    rng = random.Random(noise_seed)
    reports = []
    time = 0
    for drugs, adrs, copies in interactions:
        for _ in range(copies):
            reports.append(Report.create(drugs, adrs, time))
            time += 1
    for _ in range(n_noise):
        drug = rng.randrange(10)
        reports.append(Report.create([drug], [20 + drug % 5], time))
        time += 1
    return ReportDatabase(reports)


STRONG = ([0, 1], [5], 8)
MEDIUM = ([2, 3], [6], 5)
LATE = ([4, 5], [7], 8)


class TestAddPeriod:
    def test_first_period_all_new(self):
        tracker = TemporalSignalTracker(MarasConfig(min_count=3))
        digest = tracker.add_period(quarter([STRONG, MEDIUM], 1))
        assert digest.period == 0
        assert len(digest.new_signals) >= 2
        assert digest.vanished == ()

    def test_new_signal_detected_in_later_period(self):
        tracker = TemporalSignalTracker(MarasConfig(min_count=3))
        tracker.add_period(quarter([STRONG], 1))
        digest = tracker.add_period(quarter([STRONG, LATE], 2))
        new_drug_sets = {frozenset(a.drugs) for a in digest.new_signals}
        assert frozenset({4, 5}) in new_drug_sets

    def test_vanished_signal_detected(self):
        tracker = TemporalSignalTracker(MarasConfig(min_count=3))
        tracker.add_period(quarter([STRONG, MEDIUM], 1))
        digest = tracker.add_period(quarter([STRONG], 2))
        vanished_drug_sets = {frozenset(a.drugs) for a in digest.vanished}
        assert frozenset({2, 3}) in vanished_drug_sets

    def test_strengthened_and_weakened(self):
        tracker = TemporalSignalTracker(
            MarasConfig(min_count=3), strengthen_threshold=0.01
        )
        # Period 0: the pair co-occurs but the ADR follows only some of
        # the time; period 1: the pair always shows the ADR.
        weak = [([0, 1], [5], 4), ([0, 1], [8], 4)]
        strong = [([0, 1], [5], 8)]
        tracker.add_period(quarter(weak, 1))
        digest = tracker.add_period(quarter(strong, 2))
        strengthened_sets = {frozenset(a.drugs) for a in digest.strengthened}
        assert frozenset({0, 1}) in strengthened_sets


class TestTrajectories:
    @pytest.fixture()
    def tracker(self):
        tracker = TemporalSignalTracker(MarasConfig(min_count=3))
        tracker.add_period(quarter([STRONG, MEDIUM], 1))
        tracker.add_period(quarter([STRONG], 2))
        tracker.add_period(quarter([STRONG, LATE], 3))
        return tracker

    def test_period_count(self, tracker):
        assert tracker.period_count == 3

    def test_persistent_signal_spans_all_periods(self, tracker):
        persistent = tracker.persistent_signals()
        drug_sets = {frozenset(t.association.drugs) for t in persistent}
        assert frozenset({0, 1}) in drug_sets
        for trajectory in persistent:
            assert trajectory.periods_present == (0, 1, 2)

    def test_emerging_signal_detected(self, tracker):
        emerging = tracker.emerging_signals(last_periods=1)
        drug_sets = {frozenset(t.association.drugs) for t in emerging}
        assert frozenset({4, 5}) in drug_sets
        assert frozenset({0, 1}) not in drug_sets

    def test_snapshots_carry_ranks(self, tracker):
        for trajectory in tracker.trajectories():
            for snapshot in trajectory.snapshots:
                assert snapshot.rank >= 1
                assert 0 <= snapshot.period < 3

    def test_signals_of_period_roundtrip(self, tracker):
        signals = tracker.signals_of_period(0)
        assert signals
        assert tracker.signals_of_period(0) == signals

    def test_period_out_of_range(self, tracker):
        with pytest.raises(ValidationError):
            tracker.signals_of_period(3)

    def test_score_delta(self, tracker):
        for trajectory in tracker.trajectories():
            expected = (
                trajectory.snapshots[-1].score - trajectory.snapshots[0].score
            )
            assert trajectory.score_delta() == pytest.approx(expected)


class TestConfigValidation:
    def test_bad_top_k(self):
        with pytest.raises(ValidationError):
            TemporalSignalTracker(top_k=0)

    def test_bad_threshold(self):
        with pytest.raises(ValidationError):
            TemporalSignalTracker(strengthen_threshold=-0.1)

    def test_bad_min_periods(self):
        tracker = TemporalSignalTracker(MarasConfig(min_count=3))
        tracker.add_period(quarter([STRONG], 1))
        with pytest.raises(ValidationError):
            tracker.persistent_signals(min_periods=0)

    def test_bad_last_periods(self):
        tracker = TemporalSignalTracker(MarasConfig(min_count=3))
        tracker.add_period(quarter([STRONG], 1))
        with pytest.raises(ValidationError):
            tracker.emerging_signals(last_periods=0)
