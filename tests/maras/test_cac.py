"""Contextual association clusters (the Table 1 structure)."""

import pytest

from repro.common.errors import ValidationError
from repro.maras.associations import DrugAdrAssociation
from repro.maras.cac import build_cluster
from repro.maras.reports import Report, ReportDatabase


@pytest.fixture(scope="module")
def database() -> ReportDatabase:
    """Reports giving every subset of drugs {0,1,2} some exposure."""
    reports = [
        Report.create([0, 1, 2], [0], 0),
        Report.create([0, 1, 2], [0], 1),
        Report.create([0, 1], [1], 2),
        Report.create([0, 2], [0], 3),
        Report.create([1, 2], [1], 4),
        Report.create([0], [1], 5),
        Report.create([1], [1], 6),
        Report.create([2], [0], 7),
    ]
    return ReportDatabase(reports)


class TestClusterStructure:
    def test_three_drug_target_has_six_contextual(self, database):
        """Table 1: a 3-drug target yields 3 + 3 contextual associations."""
        target = DrugAdrAssociation(drugs=(0, 1, 2), adrs=(0,))
        cluster = build_cluster(database, target)
        assert set(cluster.levels) == {1, 2}
        assert len(cluster.levels[1]) == 3
        assert len(cluster.levels[2]) == 3
        assert cluster.size == 7  # target + 6

    def test_two_drug_target_has_two_contextual(self, database):
        target = DrugAdrAssociation(drugs=(0, 1), adrs=(0,))
        cluster = build_cluster(database, target)
        assert set(cluster.levels) == {1}
        assert len(cluster.levels[1]) == 2

    def test_contextual_antecedents_are_proper_subsets(self, database):
        target = DrugAdrAssociation(drugs=(0, 1, 2), adrs=(0,))
        cluster = build_cluster(database, target)
        for contextual in cluster.all_contextual():
            drugs = set(contextual.association.drugs)
            assert drugs < set(target.drugs)
            assert contextual.association.adrs == target.adrs

    def test_antecedents_cover_power_set_minus_extremes(self, database):
        """Definition 7: the union of contextual antecedents is P(D)−{∅,D}."""
        target = DrugAdrAssociation(drugs=(0, 1, 2), adrs=(0,))
        cluster = build_cluster(database, target)
        antecedents = {c.association.drugs for c in cluster.all_contextual()}
        expected = {(0,), (1,), (2,), (0, 1), (0, 2), (1, 2)}
        assert antecedents == expected


class TestClusterConfidences:
    def test_target_confidence_exact(self, database):
        target = DrugAdrAssociation(drugs=(0, 1, 2), adrs=(0,))
        cluster = build_cluster(database, target)
        assert cluster.target_confidence == pytest.approx(
            database.confidence((0, 1, 2), (0,))
        )

    def test_contextual_confidences_exact(self, database):
        target = DrugAdrAssociation(drugs=(0, 1, 2), adrs=(0,))
        cluster = build_cluster(database, target)
        for contextual in cluster.all_contextual():
            assert contextual.confidence == pytest.approx(
                database.confidence(
                    contextual.association.drugs, contextual.association.adrs
                )
            )

    def test_confidences_flattened_in_level_order(self, database):
        target = DrugAdrAssociation(drugs=(0, 1, 2), adrs=(0,))
        cluster = build_cluster(database, target)
        confidences = cluster.contextual_confidences()
        assert len(confidences) == 6
        level_1 = [c.confidence for c in cluster.levels[1]]
        assert confidences[:3] == level_1


class TestValidation:
    def test_single_drug_target_rejected(self, database):
        with pytest.raises(ValidationError, match="multi-drug"):
            build_cluster(database, DrugAdrAssociation(drugs=(0,), adrs=(0,)))

    def test_oversized_target_rejected(self, database):
        target = DrugAdrAssociation(drugs=tuple(range(13)), adrs=(0,))
        with pytest.raises(ValidationError, match="capped"):
            build_cluster(database, target)
