"""The signal pipeline: ranking, filtering, determinism, planted recovery."""

import pytest

from repro.common.errors import ValidationError
from repro.maras.reports import Report, ReportDatabase
from repro.maras.signals import MarasAnalyzer, MarasConfig


def interaction_database() -> ReportDatabase:
    """A tiny corpus with one real interaction and one confounder.

    Drugs 0+1 interact: ADR 5 appears (only) when both are present.
    Drugs 2+3 are co-prescribed as often, but their reports only show
    drug 2's own ADR 6 — which drug 2 also shows alone.
    """
    reports = []
    time = 0
    for _ in range(6):  # interaction reports
        reports.append(Report.create([0, 1], [5], time))
        time += 1
    for _ in range(6):  # confounder reports
        reports.append(Report.create([2, 3], [6], time))
        time += 1
    for _ in range(8):  # solo exposure: drug 2 causes 6 alone too
        reports.append(Report.create([2], [6], time))
        time += 1
    for _ in range(8):  # solo exposure without the interaction ADR
        reports.append(Report.create([0], [7], time))
        time += 1
        reports.append(Report.create([1], [8], time))
        time += 1
    return ReportDatabase(reports)


class TestSignalRanking:
    def test_interaction_outranks_confounder(self):
        analyzer = MarasAnalyzer(
            interaction_database(), MarasConfig(min_count=2)
        )
        signals = analyzer.signals()
        assert signals, "no signals produced"
        top = signals[0]
        assert set(top.association.drugs) == {0, 1}
        assert set(top.association.adrs) == {5}
        ranks = {
            frozenset(s.association.drugs): rank
            for rank, s in enumerate(signals)
        }
        if frozenset({2, 3}) in ranks:
            assert ranks[frozenset({0, 1})] < ranks[frozenset({2, 3})]

    def test_scores_descending(self):
        signals = MarasAnalyzer(
            interaction_database(), MarasConfig(min_count=2)
        ).signals()
        scores = [s.score for s in signals]
        assert scores == sorted(scores, reverse=True)

    def test_deterministic(self):
        first = MarasAnalyzer(interaction_database(), MarasConfig(min_count=2)).signals()
        second = MarasAnalyzer(interaction_database(), MarasConfig(min_count=2)).signals()
        assert [(s.association, s.score) for s in first] == [
            (s.association, s.score) for s in second
        ]

    def test_top_k_truncates(self):
        analyzer = MarasAnalyzer(interaction_database(), MarasConfig(min_count=2))
        assert len(analyzer.signals(top_k=1)) == 1

    def test_bad_top_k(self):
        analyzer = MarasAnalyzer(interaction_database(), MarasConfig(min_count=2))
        with pytest.raises(ValidationError):
            analyzer.signals(top_k=0)


class TestFilters:
    def test_min_score_drops_anti_signals(self):
        signals = MarasAnalyzer(
            interaction_database(), MarasConfig(min_count=2, min_score=0.0)
        ).signals()
        assert all(s.score > 0 for s in signals)

    def test_min_count_respected(self):
        signals = MarasAnalyzer(
            interaction_database(), MarasConfig(min_count=6)
        ).signals()
        assert all(s.count >= 6 for s in signals)

    def test_all_signals_multi_drug(self):
        signals = MarasAnalyzer(
            interaction_database(), MarasConfig(min_count=2)
        ).signals()
        assert all(s.association.drug_count >= 2 for s in signals)

    def test_max_drugs_cap(self):
        signals = MarasAnalyzer(
            interaction_database(), MarasConfig(min_count=2, max_drugs=2)
        ).signals()
        assert all(s.association.drug_count <= 2 for s in signals)


class TestConfig:
    def test_min_drugs_below_two_rejected(self):
        with pytest.raises(ValidationError):
            MarasConfig(min_drugs=1)

    def test_max_below_min_rejected(self):
        with pytest.raises(ValidationError):
            MarasConfig(min_drugs=3, max_drugs=2)


class TestSignalEvidence:
    def test_signal_carries_cluster(self):
        signals = MarasAnalyzer(
            interaction_database(), MarasConfig(min_count=2)
        ).signals()
        top = signals[0]
        assert top.cluster.target == top.association
        assert top.cluster.size >= 3

    def test_describe_renders(self):
        database = interaction_database()
        signals = MarasAnalyzer(database, MarasConfig(min_count=2)).signals()
        line = signals[0].describe(database)
        assert "=>" in line and "score=" in line
