"""Case-study dossiers: evidence content and rendering."""

import pytest

from repro.common.errors import ValidationError
from repro.datagen import faers_quarter
from repro.maras import MarasAnalyzer, MarasConfig
from repro.maras.case_studies import build_case_study, top_case_studies


@pytest.fixture(scope="module")
def setup():
    database, reference, _ = faers_quarter(seed=97, report_count=2000)
    signals = MarasAnalyzer(database, MarasConfig(min_count=5)).signals(top_k=10)
    return database, reference, signals


class TestBuildCaseStudy:
    def test_evidence_covers_whole_cluster(self, setup):
        database, reference, signals = setup
        study = build_case_study(signals[0], database, reference)
        assert len(study.evidence) == signals[0].cluster.size - 1

    def test_gaps_are_confidence_differences(self, setup):
        database, _, signals = setup
        study = build_case_study(signals[0], database)
        for line in study.evidence:
            assert line.gap == pytest.approx(
                study.target_confidence - line.confidence
            )

    def test_report_counts_are_real(self, setup):
        database, _, signals = setup
        study = build_case_study(signals[0], database)
        for line in study.evidence:
            assert line.report_count >= 0

    def test_known_interaction_flagged(self, setup):
        database, reference, signals = setup
        hits = [s for s in signals if reference.is_hit(s.association)]
        assert hits, "expected at least one planted hit in the top 10"
        study = build_case_study(hits[0], database, reference)
        assert study.known_interactions

    def test_strongest_alternative(self, setup):
        database, _, signals = setup
        study = build_case_study(signals[0], database)
        strongest = study.strongest_alternative
        assert strongest is not None
        assert strongest.confidence == max(
            line.confidence for line in study.evidence
        )


class TestRendering:
    def test_render_contains_key_facts(self, setup):
        database, reference, signals = setup
        study = build_case_study(signals[0], database, reference)
        text = study.render()
        assert "Case study:" in text
        assert "combination confidence" in text
        assert "contextual associations" in text
        assert f"{study.signal.score:.4f}" in text

    def test_every_evidence_line_rendered(self, setup):
        database, _, signals = setup
        study = build_case_study(signals[0], database)
        text = study.render()
        for line in study.evidence:
            assert line.description in text


class TestTopCaseStudies:
    def test_returns_k_dossiers(self, setup):
        database, reference, signals = setup
        studies = top_case_studies(signals, database, reference=reference, k=3)
        assert len(studies) == 3
        assert [s.signal for s in studies] == list(signals[:3])

    def test_bad_k(self, setup):
        database, _, signals = setup
        with pytest.raises(ValidationError):
            top_case_studies(signals, database, k=0)
