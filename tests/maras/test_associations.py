"""Non-spurious association learning: Definitions 3/4 and Lemma 1."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ValidationError
from repro.maras.associations import (
    DrugAdrAssociation,
    SupportKind,
    is_explicitly_supported,
    is_implicitly_supported,
    iter_spurious_variants,
    learn_associations,
)
from repro.maras.reports import Report, ReportDatabase


class TestDrugAdrAssociation:
    def test_valid(self):
        association = DrugAdrAssociation(drugs=(1, 2), adrs=(3,))
        assert association.drug_count == 2

    def test_empty_side_rejected(self):
        with pytest.raises(ValidationError):
            DrugAdrAssociation(drugs=(), adrs=(1,))

    def test_format(self, toy_reports):
        association = DrugAdrAssociation(drugs=(0,), adrs=(1,))
        assert association.format(toy_reports) == "[drug0] => [adr1]"


class TestPaperExample:
    """Section 2.3.2's running example, verified end to end."""

    def test_full_reports_are_explicit(self, toy_reports):
        for drugs, adrs in [((0, 1, 2), (0, 1)), ((0, 1, 3), (0, 1))]:
            association = DrugAdrAssociation(drugs=drugs, adrs=adrs)
            assert is_explicitly_supported(toy_reports, association)

    def test_intersection_is_implicit(self, toy_reports):
        # R4 = (d1 ∧ d2) => (a1 ∧ a2): the intersection of t_i and t_j.
        association = DrugAdrAssociation(drugs=(0, 1), adrs=(0, 1))
        assert not is_explicitly_supported(toy_reports, association)
        assert is_implicitly_supported(toy_reports, association)

    def test_partial_interpretation_is_spurious(self, toy_reports):
        # R2 = d1 => a2 is a partial interpretation: not explicit, and no
        # two reports intersect to exactly ({d1}, {a2}).
        association = DrugAdrAssociation(drugs=(0,), adrs=(1,))
        assert not is_explicitly_supported(toy_reports, association)
        assert not is_implicitly_supported(toy_reports, association)

    def test_learned_set_matches_example(self, toy_reports):
        learned = learn_associations(toy_reports, min_count=1, min_drugs=2)
        keys = {
            (la.association.drugs, la.association.adrs, la.kind)
            for la in learned
        }
        assert ((0, 1, 2), (0, 1), SupportKind.EXPLICIT) in keys
        assert ((0, 1, 3), (0, 1), SupportKind.EXPLICIT) in keys
        assert ((0, 1), (0, 1), SupportKind.IMPLICIT) in keys
        # Spurious partial interpretations are absent.
        assert not any(k[:2] == ((0,), (1,)) for k in keys)

    def test_spurious_variant_count(self):
        # One report with 3 drugs and 2 ADRs has (2^3-1)(2^2-1) - 1 = 20
        # partial interpretations.
        report = Report.create([0, 1, 2], [0, 1])
        assert sum(1 for _ in iter_spurious_variants(report)) == 20

    def test_learned_stats_are_exact(self, toy_reports):
        learned = learn_associations(toy_reports, min_count=1, min_drugs=1)
        for la in learned:
            drugs, adrs = la.association.drugs, la.association.adrs
            assert la.count == toy_reports.count(drugs, adrs)
            assert la.confidence == pytest.approx(
                toy_reports.confidence(drugs, adrs)
            )
            assert la.support == pytest.approx(la.count / len(toy_reports))


class TestLearnParameters:
    def test_min_count_filters(self, toy_reports):
        learned = learn_associations(toy_reports, min_count=2)
        assert all(la.count >= 2 for la in learned)

    def test_min_drugs_filters(self, toy_reports):
        learned = learn_associations(toy_reports, min_drugs=2)
        assert all(la.association.drug_count >= 2 for la in learned)

    def test_bad_parameters(self, toy_reports):
        with pytest.raises(ValidationError):
            learn_associations(toy_reports, min_count=0)
        with pytest.raises(ValidationError):
            learn_associations(toy_reports, min_drugs=0)

    def test_sorted_by_count_descending(self, toy_reports):
        learned = learn_associations(toy_reports, min_count=1)
        counts = [la.count for la in learned]
        assert counts == sorted(counts, reverse=True)


def random_reports(seed, count):
    rng = random.Random(seed)
    reports = []
    for t in range(count):
        drugs = rng.sample(range(5), rng.randint(1, 3))
        adrs = rng.sample(range(4), rng.randint(1, 2))
        reports.append(Report.create(drugs, adrs, t))
    return ReportDatabase(reports)


class TestLemmaOne:
    """learn_associations == explicitly ∪ implicitly supported (Lemma 1)."""

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_learned_equals_oracles(self, seed):
        database = random_reports(seed, 12)
        learned = learn_associations(database, min_count=1, min_drugs=1)
        learned_keys = {
            (la.association.drugs, la.association.adrs) for la in learned
        }

        # Brute-force enumerate every candidate Drug-ADR association.
        from itertools import combinations

        all_drugs = sorted({d for r in database for d in r.drugs})
        all_adrs = sorted({a for r in database for a in r.adrs})
        expected = set()
        for drug_size in range(1, len(all_drugs) + 1):
            for drugs in combinations(all_drugs, drug_size):
                for adr_size in range(1, len(all_adrs) + 1):
                    for adrs in combinations(all_adrs, adr_size):
                        association = DrugAdrAssociation(drugs=drugs, adrs=adrs)
                        if is_explicitly_supported(
                            database, association
                        ) or is_implicitly_supported(database, association):
                            expected.add((drugs, adrs))
        assert learned_keys == expected

    def test_kind_labels_match_oracles(self):
        database = random_reports(7, 12)
        for la in learn_associations(database, min_count=1, min_drugs=1):
            if la.kind is SupportKind.EXPLICIT:
                assert is_explicitly_supported(database, la.association)
            else:
                assert is_implicitly_supported(database, la.association)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.frozensets(st.integers(min_value=0, max_value=3), min_size=1, max_size=3),
            st.frozensets(st.integers(min_value=0, max_value=2), min_size=1, max_size=2),
        ),
        min_size=1,
        max_size=10,
    )
)
def test_lemma_one_property(report_contents):
    """Property form of Lemma 1 over arbitrary small report collections."""
    database = ReportDatabase(
        [Report.create(d, a, t) for t, (d, a) in enumerate(report_contents)]
    )
    learned = learn_associations(database, min_count=1, min_drugs=1)
    for la in learned:
        explicit = is_explicitly_supported(database, la.association)
        implicit = is_implicitly_supported(database, la.association)
        assert explicit or implicit
        assert (la.kind is SupportKind.EXPLICIT) == explicit
