"""Reference KB hits and the precision@K evaluation."""

import pytest

from repro.common.errors import ValidationError
from repro.maras.associations import DrugAdrAssociation
from repro.maras.cac import ContextualAssociation, ContextualAssociationCluster
from repro.maras.evaluation import (
    average_precision,
    hit_table,
    precision_at_k,
    recall_of_known,
)
from repro.maras.reference_kb import KnownInteraction, ReferenceKnowledgeBase
from repro.maras.signals import Signal
from repro.maras.associations import SupportKind


def make_signal(drugs, adrs, score=0.5):
    association = DrugAdrAssociation(drugs=tuple(drugs), adrs=tuple(adrs))
    cluster = ContextualAssociationCluster(
        target=association,
        target_confidence=0.9,
        levels={
            1: tuple(
                ContextualAssociation(
                    association=DrugAdrAssociation(drugs=(d,), adrs=tuple(adrs)),
                    confidence=0.1,
                )
                for d in drugs
            )
        },
    )
    return Signal(
        association=association,
        kind=SupportKind.IMPLICIT,
        score=score,
        confidence=0.9,
        count=5,
        cluster=cluster,
    )


@pytest.fixture
def reference() -> ReferenceKnowledgeBase:
    return ReferenceKnowledgeBase(
        [
            KnownInteraction.create([0, 1], [5]),
            KnownInteraction.create([2, 3], [6, 7]),
        ]
    )


class TestKnownInteraction:
    def test_needs_two_drugs(self):
        with pytest.raises(ValidationError):
            KnownInteraction.create([0], [5])

    def test_needs_an_adr(self):
        with pytest.raises(ValidationError):
            KnownInteraction.create([0, 1], [])


class TestHitSemantics:
    def test_exact_match_hits(self, reference):
        assert reference.is_hit(DrugAdrAssociation(drugs=(0, 1), adrs=(5,)))

    def test_superset_drugs_still_hit(self, reference):
        """A signal naming extra co-medications still hits."""
        assert reference.is_hit(DrugAdrAssociation(drugs=(0, 1, 9), adrs=(5,)))

    def test_adr_overlap_suffices(self, reference):
        assert reference.is_hit(DrugAdrAssociation(drugs=(2, 3), adrs=(7, 9)))

    def test_drug_subset_misses(self, reference):
        assert not reference.is_hit(DrugAdrAssociation(drugs=(0,), adrs=(5,)))

    def test_wrong_adrs_miss(self, reference):
        assert not reference.is_hit(DrugAdrAssociation(drugs=(0, 1), adrs=(9,)))

    def test_matching_interactions_listed(self, reference):
        matches = reference.matching_interactions(
            DrugAdrAssociation(drugs=(0, 1), adrs=(5,))
        )
        assert len(matches) == 1
        assert matches[0].drugs == frozenset({0, 1})


class TestPrecisionAtK:
    def test_known_curve(self, reference):
        signals = [
            make_signal([0, 1], [5]),   # hit
            make_signal([8, 9], [1]),   # miss
            make_signal([2, 3], [6]),   # hit
            make_signal([7, 8], [2]),   # miss
        ]
        curve = precision_at_k(signals, reference, [1, 2, 3, 4])
        assert curve.precisions == (1.0, 0.5, pytest.approx(2 / 3), 0.5)
        assert curve.hits == (True, False, True, False)
        assert curve.at(2) == 0.5

    def test_k_beyond_signals_divides_by_k(self, reference):
        signals = [make_signal([0, 1], [5])]
        curve = precision_at_k(signals, reference, [5])
        assert curve.at(5) == pytest.approx(1 / 5)

    def test_uncomputed_k_rejected(self, reference):
        curve = precision_at_k([], reference, [1])
        with pytest.raises(ValidationError):
            curve.at(3)

    def test_bad_ks_rejected(self, reference):
        with pytest.raises(ValidationError):
            precision_at_k([], reference, [])
        with pytest.raises(ValidationError):
            precision_at_k([], reference, [0])


class TestAveragePrecision:
    def test_perfect_ranking(self, reference):
        signals = [make_signal([0, 1], [5]), make_signal([2, 3], [6])]
        assert average_precision(signals, reference) == 1.0

    def test_hit_after_miss(self, reference):
        signals = [make_signal([8, 9], [1]), make_signal([0, 1], [5])]
        assert average_precision(signals, reference) == pytest.approx(0.5)

    def test_no_hits(self, reference):
        assert average_precision([make_signal([8, 9], [1])], reference) == 0.0


class TestRecall:
    def test_full_recall(self, reference):
        signals = [make_signal([0, 1], [5]), make_signal([2, 3, 4], [7])]
        assert recall_of_known(signals, reference) == 1.0

    def test_partial_recall(self, reference):
        assert recall_of_known([make_signal([0, 1], [5])], reference) == 0.5

    def test_empty_reference_rejected(self):
        with pytest.raises(ValidationError):
            recall_of_known([], ReferenceKnowledgeBase())


class TestHitTable:
    def test_rank_to_flag(self, reference):
        signals = [make_signal([0, 1], [5]), make_signal([8, 9], [1])]
        table = hit_table(signals, reference, top_k=2)
        assert table == {1: True, 2: False}
