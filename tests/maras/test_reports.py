"""Reports and the containment-counting index."""

import pytest

from repro.common.errors import DataFormatError, ValidationError
from repro.data.items import ItemVocabulary
from repro.maras.reports import (
    Report,
    ReportDatabase,
    combine_report,
    encode_adr,
    encode_drug,
    split_combined,
)


class TestReport:
    def test_create_canonicalizes(self):
        report = Report.create([3, 1], [2, 2], time=5)
        assert report.drugs == (1, 3)
        assert report.adrs == (2,)
        assert report.time == 5

    def test_empty_side_rejected(self):
        with pytest.raises(DataFormatError):
            Report.create([], [1])
        with pytest.raises(DataFormatError):
            Report.create([1], [])

    def test_signature_is_exact_content(self):
        report = Report.create([1, 2], [3])
        assert report.signature == ((1, 2), (3,))


class TestCombinedEncoding:
    def test_parity_encoding_disjoint(self):
        assert encode_drug(3) != encode_adr(3)
        assert encode_drug(0) == 0 and encode_adr(0) == 1

    def test_split_roundtrip(self):
        report = Report.create([0, 2], [0, 1])
        combined = combine_report(report)
        drugs, adrs = split_combined(combined)
        assert drugs == report.drugs
        assert adrs == report.adrs

    def test_combined_is_canonical(self):
        combined = combine_report(Report.create([5, 1], [3]))
        assert combined == tuple(sorted(combined))


class TestReportDatabase:
    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            ReportDatabase([])

    def test_counts_match_brute_force(self, toy_reports):
        for drugs, adrs in [((0,), ()), ((0, 1), (0,)), ((), (2,)), ((0, 1), (0, 1))]:
            brute = sum(
                1
                for report in toy_reports
                if set(drugs) <= set(report.drugs)
                and set(adrs) <= set(report.adrs)
            )
            assert toy_reports.count(drugs, adrs) == brute

    def test_count_of_unknown_item_is_zero(self, toy_reports):
        assert toy_reports.count((99,)) == 0
        assert toy_reports.count((0,), (99,)) == 0

    def test_empty_query_rejected(self, toy_reports):
        with pytest.raises(ValidationError):
            toy_reports.matching((), ())

    def test_confidence(self, toy_reports):
        # d1 (id 0) appears in 4 reports; (d1, a1) in 2.
        assert toy_reports.confidence((0,), (0,)) == pytest.approx(2 / 4)

    def test_confidence_zero_when_drug_absent(self, toy_reports):
        assert toy_reports.confidence((99,), (0,)) == 0.0

    def test_support(self, toy_reports):
        assert toy_reports.support((0, 1), (0, 1)) == pytest.approx(2 / 7)

    def test_lift(self, toy_reports):
        joint = toy_reports.count((0, 1), (0,))
        expected = joint * len(toy_reports) / (
            toy_reports.count((0, 1)) * toy_reports.count((), (0,))
        )
        assert toy_reports.lift((0, 1), (0,)) == pytest.approx(expected)

    def test_lift_zero_when_disjoint(self, toy_reports):
        assert toy_reports.lift((2,), (0,)) == pytest.approx(
            toy_reports.count((2,), (0,))
            * len(toy_reports)
            / (toy_reports.count((2,)) * toy_reports.count((), (0,)))
            if toy_reports.count((2,), (0,))
            else 0.0
        )

    def test_has_exact_report(self, toy_reports):
        assert toy_reports.has_exact_report((0, 1, 2), (0, 1))
        assert not toy_reports.has_exact_report((0, 1), (0, 1))

    def test_vocab_names(self):
        drug_vocab = ItemVocabulary(["aspirin"])
        adr_vocab = ItemVocabulary(["nausea"])
        database = ReportDatabase(
            [Report.create([0], [0])],
            drug_vocabulary=drug_vocab,
            adr_vocabulary=adr_vocab,
        )
        assert database.drug_name(0) == "aspirin"
        assert database.adr_name(0) == "nausea"

    def test_fallback_names(self, toy_reports):
        assert toy_reports.drug_name(3) == "drug3"
        assert toy_reports.adr_name(1) == "adr1"

    def test_distinct_counts(self, toy_reports):
        assert toy_reports.drug_count == 4
        assert toy_reports.adr_count == 3
