"""The contrast measure family, pinned to the paper's worked examples."""

import pytest

from repro.common.errors import ValidationError
from repro.maras.associations import DrugAdrAssociation
from repro.maras.cac import ContextualAssociation, ContextualAssociationCluster
from repro.maras.contrast import (
    contrast_avg,
    contrast_cv,
    contrast_max,
    contrast_score,
    dispersion_penalty,
    level_weight,
)


def make_cluster(target_confidence, levels):
    """Build a cluster from {level: [confidences]} without a database."""
    target_drugs = tuple(range(max(levels) + 1))
    built = {}
    for level, confidences in levels.items():
        entries = []
        for index, confidence in enumerate(confidences):
            association = DrugAdrAssociation(
                drugs=tuple(range(level)) if level > 1 else (index,),
                adrs=(99,),
            )
            entries.append(
                ContextualAssociation(association=association, confidence=confidence)
            )
        built[level] = tuple(entries)
    return ContextualAssociationCluster(
        target=DrugAdrAssociation(drugs=target_drugs, adrs=(99,)),
        target_confidence=target_confidence,
        levels=built,
    )


class TestPaperWorkedExample:
    """Section 2.3.5: C1 = {1, 0.2, 0.8}, C2 = {1, 0.5, 0.55}, θ = 0.75."""

    def test_contrast_avg(self):
        c1 = make_cluster(1.0, {1: [0.2, 0.8]})
        c2 = make_cluster(1.0, {1: [0.5, 0.55]})
        assert contrast_avg(c1) == pytest.approx(0.5)
        assert contrast_avg(c2) == pytest.approx(0.475)

    def test_contrast_avg_prefers_wrong_cluster(self):
        """The paper's motivation: plain averaging ranks C1 above C2."""
        c1 = make_cluster(1.0, {1: [0.2, 0.8]})
        c2 = make_cluster(1.0, {1: [0.5, 0.55]})
        assert contrast_avg(c1) > contrast_avg(c2)

    def test_contrast_cv_flips_the_ranking(self):
        c1 = make_cluster(1.0, {1: [0.2, 0.8]})
        c2 = make_cluster(1.0, {1: [0.5, 0.55]})
        assert contrast_cv(c1, theta=0.75) == pytest.approx(0.18, abs=0.005)
        assert contrast_cv(c2, theta=0.75) == pytest.approx(0.45, abs=0.005)
        assert contrast_cv(c2, theta=0.75) > contrast_cv(c1, theta=0.75)


class TestContrastMax:
    def test_gap_to_best_contextual(self):
        cluster = make_cluster(0.9, {1: [0.1, 0.6]})
        assert contrast_max(cluster) == pytest.approx(0.3)

    def test_negative_when_subset_dominates(self):
        """A dominating subset (the anti-signal case) goes negative."""
        cluster = make_cluster(0.5, {1: [0.8, 0.1]})
        assert contrast_max(cluster) < 0

    def test_empty_cluster_rejected(self):
        cluster = make_cluster(0.9, {1: []})
        with pytest.raises(ValidationError):
            contrast_max(cluster)


class TestDispersionPenalty:
    def test_no_dispersion_no_penalty(self):
        assert dispersion_penalty([0.3, 0.3], theta=0.75) == pytest.approx(1.0)

    def test_theta_zero_disables_penalty(self):
        assert dispersion_penalty([0.1, 0.9], theta=0.0) == 1.0

    def test_clamped_at_zero(self):
        # Extremely dispersed near-zero confidences can push G below 0.
        assert dispersion_penalty([0.001, 0.9], theta=1.0) == 0.0

    def test_theta_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            dispersion_penalty([0.5], theta=1.5)


class TestLevelWeight:
    def test_linear_decay(self):
        # H(i, n) = 1 - (i-1)/n
        assert level_weight(1, 3) == pytest.approx(1.0)
        assert level_weight(2, 3) == pytest.approx(1 - 1 / 3)

    def test_single_drug_level_weighs_most(self):
        weights = [level_weight(i, 5) for i in range(1, 5)]
        assert weights == sorted(weights, reverse=True)

    def test_out_of_range_level_rejected(self):
        with pytest.raises(ValidationError):
            level_weight(0, 3)
        with pytest.raises(ValidationError):
            level_weight(3, 3)


class TestContrastScore:
    def test_two_drug_target_formula(self):
        """n=2: score = (mean level-1 gap) * H(1,2) * G / 2."""
        cluster = make_cluster(0.9, {1: [0.1, 0.3]})
        gaps_mean = (0.8 + 0.6) / 2
        penalty = dispersion_penalty([0.1, 0.3], 0.75)
        assert contrast_score(cluster) == pytest.approx(
            gaps_mean * 1.0 * penalty / 2
        )

    def test_higher_when_contextuals_weaker(self):
        strong = make_cluster(0.9, {1: [0.05, 0.05]})
        weak = make_cluster(0.9, {1: [0.5, 0.5]})
        assert contrast_score(strong) > contrast_score(weak)

    def test_monotone_in_target_confidence(self):
        low = make_cluster(0.5, {1: [0.1, 0.1]})
        high = make_cluster(0.9, {1: [0.1, 0.1]})
        assert contrast_score(high) > contrast_score(low)

    def test_multi_level_cluster(self):
        cluster = make_cluster(1.0, {1: [0.1, 0.1, 0.1], 2: [0.2, 0.2, 0.2]})
        level_1 = 0.9 * level_weight(1, 3) * 1.0
        level_2 = 0.8 * level_weight(2, 3) * 1.0
        assert contrast_score(cluster, theta=0.75) == pytest.approx(
            (level_1 + level_2) / 3
        )

    def test_anti_signal_scores_negative(self):
        cluster = make_cluster(0.2, {1: [0.9, 0.9]})
        assert contrast_score(cluster) < 0
