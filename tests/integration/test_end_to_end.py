"""End-to-end pipelines on generated data: the paper's claims in miniature."""

import pytest

from repro.baselines import Dctar, HMineOnline, Paras, rule_key
from repro.core import (
    ContentQuery,
    GenerationConfig,
    ParameterSetting,
    RollupQuery,
    TaraExplorer,
    build_knowledge_base,
)
from repro.data import PeriodSpec, WindowedDatabase
from repro.datagen import (
    faers_quarter,
    generate_retail,
    quest_t5k_scaled,
    RetailParameters,
)
from repro.maras import (
    MarasAnalyzer,
    MarasConfig,
    precision_at_k,
    recall_of_known,
)


@pytest.fixture(scope="module")
def retail_setup():
    database, truth = generate_retail(
        RetailParameters(transaction_count=2500, item_count=200, seed=31)
    )
    windows = WindowedDatabase.partition_by_count(database, 5)
    config = GenerationConfig(0.01, 0.2, build_item_index=True)
    knowledge_base = build_knowledge_base(windows, config)
    return database, truth, windows, knowledge_base


class TestTaraOnRetail:
    def test_index_answers_match_from_scratch_mining(self, retail_setup):
        _, _, windows, knowledge_base = retail_setup
        explorer = TaraExplorer(knowledge_base)
        dctar = Dctar(windows)
        setting = ParameterSetting(0.02, 0.4)
        for window in (0, windows.window_count - 1):
            tara_keys = sorted(
                rule_key(knowledge_base.catalog.get(r))
                for r in explorer.ruleset(setting, window)
            )
            assert tara_keys == sorted(dctar.ruleset(setting, window))

    def test_planted_bundles_surface_as_rules(self, retail_setup):
        database, truth, windows, knowledge_base = retail_setup
        explorer = TaraExplorer(knowledge_base)
        mined = explorer.mine(ParameterSetting(0.01, 0.2))
        rule_items = {
            frozenset(m.rule.items)
            for window_rules in mined.values()
            for m in window_rules
        }
        planted_found = sum(
            1 for bundle in truth.bundles if frozenset(bundle) in rule_items
        )
        assert planted_found >= len(truth.bundles) // 5

    def test_seasonal_item_rules_concentrate_in_peak(self, retail_setup):
        _, truth, windows, knowledge_base = retail_setup
        explorer = TaraExplorer(knowledge_base)
        setting = ParameterSetting(0.01, 0.2)
        concentrated = 0
        considered = 0
        for item, peak in zip(truth.seasonal_items, truth.seasonal_schedule):
            content = explorer.execute(
                ContentQuery(setting=setting, items=(item,))
            )
            counts = {w: len(ids) for w, ids in content.items()}
            if sum(counts.values()) < 3:
                continue
            considered += 1
            if counts.get(peak, 0) == max(counts.values()):
                concentrated += 1
        if considered:
            assert concentrated >= considered // 2

    def test_all_systems_agree_on_retail(self, retail_setup):
        _, _, windows, knowledge_base = retail_setup
        explorer = TaraExplorer(knowledge_base)
        hmine = HMineOnline(windows, 0.01)
        hmine.preprocess()
        paras = Paras(windows, 0.01, 0.2)
        paras.preprocess()
        setting = ParameterSetting(0.02, 0.3)
        window = windows.window_count - 1
        tara_keys = sorted(
            rule_key(knowledge_base.catalog.get(r))
            for r in explorer.ruleset(setting, window)
        )
        assert sorted(hmine.ruleset(setting, window)) == tara_keys
        assert sorted(paras.ruleset(setting, window)) == tara_keys


class TestTaraOnQuest:
    def test_quest_pipeline_runs(self):
        database = quest_t5k_scaled(scale=0.0003)
        windows = WindowedDatabase.partition_by_count(database, 5)
        knowledge_base = build_knowledge_base(windows, GenerationConfig(0.02, 0.2))
        explorer = TaraExplorer(knowledge_base)
        setting = ParameterSetting(0.03, 0.4)
        per_window = [
            len(explorer.ruleset(setting, w)) for w in range(windows.window_count)
        ]
        assert any(count > 0 for count in per_window)
        answer = explorer.execute(
            RollupQuery(setting=setting, spec=PeriodSpec.window_range(0, 4))
        )
        assert {e.rule_id for e in answer.certain} <= {
            e.rule_id for e in answer.possible
        }


class TestMarasOnFaers:
    @pytest.fixture(scope="class")
    def faers(self):
        database, reference, truth = faers_quarter(seed=97, report_count=4000)
        analyzer = MarasAnalyzer(database, MarasConfig(min_count=5))
        return database, reference, truth, analyzer.signals()

    def test_precision_beats_chance_and_decays(self, faers):
        _, reference, _, signals = faers
        curve = precision_at_k(signals, reference, [5, 50])
        assert curve.at(5) >= 0.6
        assert curve.at(5) >= curve.at(50)

    def test_full_recall_of_planted_interactions(self, faers):
        _, reference, _, signals = faers
        assert recall_of_known(signals, reference) >= 0.9

    def test_top_signal_is_a_planted_interaction(self, faers):
        _, reference, _, signals = faers
        assert reference.is_hit(signals[0].association)

    def test_confounders_do_not_top_the_ranking(self, faers):
        """Frequently co-prescribed pairs without interaction ADRs must
        not dominate the top of the list."""
        _, _, truth, signals = faers
        confounders = {frozenset(pair) for pair in truth.confounder_pairs}
        top_confounders = sum(
            1
            for signal in signals[:10]
            if frozenset(signal.association.drugs) in confounders
        )
        assert top_confounders <= 2
