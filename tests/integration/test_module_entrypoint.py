"""``python -m repro`` and miscellaneous entry-point edge cases."""

import subprocess
import sys

import pytest

from repro.core.panorama import render_slice, rule_count_grid
from repro.core.regions import ParameterSetting, WindowSlice


def test_python_dash_m_repro_version():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "--version"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 0
    assert result.stdout.strip()


def test_python_dash_m_repro_requires_command():
    result = subprocess.run(
        [sys.executable, "-m", "repro"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 2  # argparse: missing subcommand


class TestPanoramaEmptySlice:
    @pytest.fixture()
    def empty_slice(self):
        return WindowSlice(
            0, {}, generation_setting=ParameterSetting(0.0, 0.0)
        )

    def test_grid_all_zero(self, empty_slice):
        grid = rule_count_grid(empty_slice, width=4, height=3)
        assert grid == [[0] * 4 for _ in range(3)]

    def test_render_does_not_crash(self, empty_slice):
        art = render_slice(empty_slice, width=4, height=3)
        assert "max 0 rules" in art
