"""Every example script must run to completion and print its key output."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


@pytest.mark.slow
def test_quickstart():
    output = run_example("quickstart.py")
    assert "knowledge base:" in output
    assert "stable region" in output
    assert "trajectory of" in output


@pytest.mark.slow
def test_retail_exploration():
    output = run_example("retail_exploration.py")
    assert "most stable rules" in output
    assert "roll-up" in output
    assert "seasonal item" in output


@pytest.mark.slow
def test_pharmacovigilance_ddi():
    output = run_example("pharmacovigilance_ddi.py")
    assert "top 5 MARAS signals" in output
    assert "evidence dossier" in output
    assert "precision@K" in output
    assert "recall of planted interactions" in output


@pytest.mark.slow
def test_streaming_updates():
    output = run_example("streaming_updates.py")
    assert "verified against the from-scratch build" in output


@pytest.mark.slow
def test_temporal_signals():
    output = run_example("temporal_signals.py")
    assert "signals present in every quarter" in output
    # The case-study interactions are planted in every quarter, so they
    # are the persistent core.
    assert "Eliquis" in output or "Ondansetron" in output
