"""The command-line interface, end to end through main()."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def fimi_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "retail.fimi"
    code = main(
        ["generate", "retail", "--out", str(path), "--size", "1500", "--seed", "3"]
    )
    assert code == 0
    return path


@pytest.fixture(scope="module")
def kb_file(fimi_file, tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "kb.json"
    code = main(
        [
            "build",
            "--input", str(fimi_file),
            "--out", str(path),
            "--batches", "3",
            "--min-support", "0.01",
            "--min-confidence", "0.2",
        ]
    )
    assert code == 0
    return path


@pytest.fixture(scope="module")
def reports_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "faers.tsv"
    code = main(
        ["generate", "faers", "--out", str(path), "--size", "1500", "--seed", "7"]
    )
    assert code == 0
    return path


class TestGenerate:
    def test_fimi_output_readable(self, fimi_file, capsys):
        from repro.data.io import read_fimi

        assert len(read_fimi(fimi_file)) == 1500

    def test_faers_output_readable(self, reports_file):
        from repro.data.io import read_reports

        assert len(read_reports(reports_file)) == 1500

    def test_quest_and_webdocs(self, tmp_path):
        for dataset in ("quest", "webdocs"):
            out = tmp_path / f"{dataset}.fimi"
            assert main(
                ["generate", dataset, "--out", str(out), "--size", "300"]
            ) == 0
            assert out.exists()


class TestBuildAndQuery:
    def test_build_reports_summary(self, kb_file, capsys):
        assert kb_file.exists()

    def test_mine(self, kb_file, capsys):
        code = main(
            [
                "mine",
                "--kb", str(kb_file),
                "--min-support", "0.02",
                "--min-confidence", "0.4",
                "--top", "5",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "rules in window" in output
        assert "=>" in output

    def test_mine_specific_window(self, kb_file, capsys):
        code = main(
            [
                "mine",
                "--kb", str(kb_file),
                "--min-support", "0.02",
                "--min-confidence", "0.4",
                "--window", "0",
            ]
        )
        assert code == 0
        assert "window 0" in capsys.readouterr().out

    def test_recommend(self, kb_file, capsys):
        code = main(
            [
                "recommend",
                "--kb", str(kb_file),
                "--min-support", "0.02",
                "--min-confidence", "0.4",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "same" in output and "rules for any" in output

    def test_compare(self, kb_file, capsys):
        code = main(
            [
                "compare",
                "--kb", str(kb_file),
                "--first", "0.015", "0.3",
                "--second", "0.03", "0.3",
                "--mode", "exact",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "only under the first setting" in output
        assert "exact match" in output


class TestMarasCommand:
    def test_signals_printed(self, reports_file, capsys):
        code = main(
            ["maras", "--reports", str(reports_file), "--min-count", "4", "--top", "5"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "signals" in output
        assert "score=" in output


class TestBenchCommand:
    def test_quick_writes_schema_json(self, tmp_path, monkeypatch, capsys):
        import repro.bench as bench

        # Shrink the quick workload so the matrix builds in well under a
        # second; the real sizes are calibrated for wall-clock signal,
        # not for the test suite.
        monkeypatch.setitem(bench._WORKLOADS, "retail", (150, 3, 0.05, 0.30))
        out = tmp_path / "BENCH_offline.json"
        code = main(
            [
                "bench", "--quick",
                "--out", str(out),
                "--repeat", "1",
                "--strategies", "serial", "thread",
            ]
        )
        assert code == 0
        assert "speedup vs serial" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["schema"] == bench.SCHEMA
        assert payload["quick"] is True
        assert payload["host"]["cpu_count"] >= 1
        strategies = {cell["strategy"] for cell in payload["results"]}
        assert strategies == {"serial", "thread"}
        fingerprints = {cell["fingerprint"] for cell in payload["results"]}
        assert len(fingerprints) == 1  # serial equivalence, enforced
        assert payload["speedups"][0]["strategy"] == "thread"

    def test_invalid_repeat_is_domain_error(self, tmp_path, capsys):
        code = main(["bench", "--quick", "--repeat", "0", "--out", "-"])
        assert code == 1
        assert "--repeat" in capsys.readouterr().err


class TestErrorPaths:
    def test_missing_kb_returns_one(self, tmp_path, capsys):
        code = main(
            [
                "mine",
                "--kb", str(tmp_path / "nope.json"),
                "--min-support", "0.1",
                "--min-confidence", "0.1",
            ]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_query_below_generation_threshold(self, kb_file, capsys):
        code = main(
            [
                "mine",
                "--kb", str(kb_file),
                "--min-support", "0.001",
                "--min-confidence", "0.4",
            ]
        )
        assert code == 1
        assert "generation thresholds" in capsys.readouterr().err

    def test_unknown_command_exits_two(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["frobnicate"])
        assert excinfo.value.code == 2

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
