"""The command-line interface, end to end through main()."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def fimi_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "retail.fimi"
    code = main(
        ["generate", "retail", "--out", str(path), "--size", "1500", "--seed", "3"]
    )
    assert code == 0
    return path


@pytest.fixture(scope="module")
def kb_file(fimi_file, tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "kb.json"
    code = main(
        [
            "build",
            "--input", str(fimi_file),
            "--out", str(path),
            "--batches", "3",
            "--min-support", "0.01",
            "--min-confidence", "0.2",
        ]
    )
    assert code == 0
    return path


@pytest.fixture(scope="module")
def reports_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "faers.tsv"
    code = main(
        ["generate", "faers", "--out", str(path), "--size", "1500", "--seed", "7"]
    )
    assert code == 0
    return path


class TestGenerate:
    def test_fimi_output_readable(self, fimi_file, capsys):
        from repro.data.io import read_fimi

        assert len(read_fimi(fimi_file)) == 1500

    def test_faers_output_readable(self, reports_file):
        from repro.data.io import read_reports

        assert len(read_reports(reports_file)) == 1500

    def test_quest_and_webdocs(self, tmp_path):
        for dataset in ("quest", "webdocs"):
            out = tmp_path / f"{dataset}.fimi"
            assert main(
                ["generate", dataset, "--out", str(out), "--size", "300"]
            ) == 0
            assert out.exists()


class TestBuildAndQuery:
    def test_build_reports_summary(self, kb_file, capsys):
        assert kb_file.exists()

    def test_mine(self, kb_file, capsys):
        code = main(
            [
                "mine",
                "--kb", str(kb_file),
                "--minsupp", "0.02",
                "--minconf", "0.4",
                "--top", "5",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "rules in window" in output
        assert "=>" in output

    def test_mine_specific_window(self, kb_file, capsys):
        code = main(
            [
                "mine",
                "--kb", str(kb_file),
                "--minsupp", "0.02",
                "--minconf", "0.4",
                "--window", "0",
            ]
        )
        assert code == 0
        assert "window 0" in capsys.readouterr().out

    def test_recommend(self, kb_file, capsys):
        code = main(
            [
                "recommend",
                "--kb", str(kb_file),
                "--minsupp", "0.02",
                "--minconf", "0.4",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "same" in output and "rules for any" in output

    def test_compare(self, kb_file, capsys):
        code = main(
            [
                "compare",
                "--kb", str(kb_file),
                "--minsupp", "0.015", "--minconf", "0.3",
                "--second-minsupp", "0.03", "--second-minconf", "0.3",
                "--mode", "exact",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "only under the first setting" in output
        assert "exact match" in output


class TestMarasCommand:
    def test_signals_printed(self, reports_file, capsys):
        code = main(
            ["maras", "--reports", str(reports_file), "--min-count", "4", "--top", "5"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "signals" in output
        assert "score=" in output


class TestBenchCommand:
    def test_quick_writes_schema_json(self, tmp_path, monkeypatch, capsys):
        import repro.bench as bench

        # Shrink the quick workload so the matrix builds in well under a
        # second; the real sizes are calibrated for wall-clock signal,
        # not for the test suite.
        monkeypatch.setitem(bench._WORKLOADS, "retail", (150, 3, 0.05, 0.30))
        out = tmp_path / "BENCH_offline.json"
        code = main(
            [
                "bench", "--quick",
                "--out", str(out),
                "--repeat", "1",
                "--strategies", "serial", "thread",
            ]
        )
        assert code == 0
        assert "speedup vs serial" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["schema"] == bench.SCHEMA
        assert payload["quick"] is True
        assert payload["host"]["cpu_count"] >= 1
        strategies = {cell["strategy"] for cell in payload["results"]}
        assert strategies == {"serial", "thread"}
        miners = {cell["miner"] for cell in payload["results"]}
        assert miners == {"apriori", "vertical"}
        fingerprints = {cell["fingerprint"] for cell in payload["results"]}
        # One fingerprint across *all* cells: serial/parallel equivalence
        # and cross-miner equivalence, both enforced before writing.
        assert len(fingerprints) == 1
        assert payload["speedups"][0]["strategy"] == "thread"

    def test_miners_filter_restricts_matrix(self, tmp_path, monkeypatch):
        import repro.bench as bench

        monkeypatch.setitem(bench._WORKLOADS, "retail", (150, 3, 0.05, 0.30))
        out = tmp_path / "BENCH_offline.json"
        code = main(
            [
                "bench", "--quick",
                "--out", str(out),
                "--repeat", "1",
                "--strategies", "serial",
                "--miners", "vertical",
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert {cell["miner"] for cell in payload["results"]} == {"vertical"}

    def test_unknown_miner_filter_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["bench", "--quick", "--miners", "magic", "--out", "-"])
        assert excinfo.value.code == 2
        assert "--miners" in capsys.readouterr().err

    def test_invalid_repeat_is_domain_error(self, tmp_path, capsys):
        code = main(["bench", "--quick", "--repeat", "0", "--out", "-"])
        assert code == 1
        assert "--repeat" in capsys.readouterr().err


class TestConvertAndKbInfo:
    def test_kb_info_v2(self, kb_file, capsys):
        assert main(["kb-info", str(kb_file)]) == 0
        out = capsys.readouterr().out
        assert "format v2 (segmented container)" in out
        assert "rules/shard" in out
        assert "--memory-budget" in out

    def test_convert_to_v1_and_info(self, kb_file, tmp_path, capsys):
        v1 = tmp_path / "kb.v1.json"
        with pytest.warns(DeprecationWarning, match="v1 JSON format"):
            assert main(["convert", str(kb_file), str(v1), "--format", "1"]) == 0
        assert "format v1" in capsys.readouterr().out
        assert main(["kb-info", str(v1)]) == 0
        out = capsys.readouterr().out
        assert "eager JSON envelope" in out
        assert "repro convert" in out

    def test_convert_roundtrip_bytes_identical(self, kb_file, tmp_path):
        # v2 -> v1 -> v2 must reproduce the original container exactly:
        # the write path is canonical.
        v1 = tmp_path / "kb.v1.json"
        v2 = tmp_path / "kb.back.tara2"
        with pytest.warns(DeprecationWarning, match="v1 JSON format"):
            assert main(["convert", str(kb_file), str(v1), "--format", "1"]) == 0
        assert main(["convert", str(v1), str(v2)]) == 0
        assert v2.read_bytes() == kb_file.read_bytes()

    def test_build_format_1_warns_and_writes_json(
        self, fimi_file, tmp_path, capsys
    ):
        out = tmp_path / "kb.v1.json"
        with pytest.warns(DeprecationWarning, match="v1 JSON format"):
            code = main(
                [
                    "build",
                    "--input", str(fimi_file),
                    "--out", str(out),
                    "--batches", "2",
                    "--min-support", "0.02",
                    "--min-confidence", "0.3",
                    "--format", "1",
                ]
            )
        assert code == 0
        assert json.loads(out.read_text())["format_version"] == 1

    def test_kb_info_missing_file_is_domain_error(self, tmp_path, capsys):
        assert main(["kb-info", str(tmp_path / "nope")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_mine_accepts_memory_budget_suffix(self, kb_file, capsys):
        code = main(
            [
                "mine",
                "--kb", str(kb_file),
                "--minsupp", "0.02",
                "--minconf", "0.4",
                "--memory-budget", "4M",
            ]
        )
        assert code == 0
        assert "rules in window" in capsys.readouterr().out

    def test_nonpositive_memory_budget_is_usage_error(self, kb_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "mine",
                    "--kb", str(kb_file),
                    "--minsupp", "0.02",
                    "--minconf", "0.4",
                    "--memory-budget", "0",
                ]
            )
        assert excinfo.value.code == 2
        assert "memory budget" in capsys.readouterr().err


class TestBenchPersistCommand:
    def test_writes_schema_json_and_summary(self, tmp_path, monkeypatch, capsys):
        import repro.bench as bench

        # Same shrink trick as the other bench tests: a tiny retail
        # workload keeps the build+probe matrix fast; the probe children
        # still run as real subprocesses measuring real RSS.
        monkeypatch.setitem(bench._WORKLOADS, "retail", (150, 3, 0.05, 0.30))
        out = tmp_path / "BENCH_persist.json"
        summary = tmp_path / "summary.md"
        code = main(
            [
                "bench-persist", "--quick",
                "--scales", "1",
                "--out", str(out),
                "--summary-out", str(summary),
            ]
        )
        assert code == 0
        assert "rss ratio" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["schema"] == bench.PERSIST_SCHEMA
        assert payload["quick"] is True
        cell = payload["results"][0]
        assert set(cell["loaders"]) == {"v1-eager", "v2-lazy"}
        eager = cell["loaders"]["v1-eager"]
        lazy = cell["loaders"]["v2-lazy"]
        # Fingerprint equality is enforced before the file is written.
        assert eager["fingerprint"] == lazy["fingerprint"]
        assert eager["storage"] is None
        assert lazy["storage"]["slices_materialized"] > 0
        assert eager["peak_rss_bytes"] > 0 and lazy["peak_rss_bytes"] > 0
        # 1x is below the gate threshold: recorded but not gated.
        assert cell["rss_gated"] is False
        assert "| scale | loader |" in summary.read_text()

    def test_invalid_budget_is_domain_error(self, capsys):
        code = main(["bench-persist", "--memory-budget", "-1", "--out", "-"])
        assert code == 1
        assert "--memory-budget" in capsys.readouterr().err


class TestErrorPaths:
    def test_missing_kb_returns_one(self, tmp_path, capsys):
        code = main(
            [
                "mine",
                "--kb", str(tmp_path / "nope.json"),
                "--minsupp", "0.1",
                "--minconf", "0.1",
            ]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_query_below_generation_threshold(self, kb_file, capsys):
        code = main(
            [
                "mine",
                "--kb", str(kb_file),
                "--minsupp", "0.001",
                "--minconf", "0.4",
            ]
        )
        assert code == 1
        assert "generation thresholds" in capsys.readouterr().err

    def test_unknown_command_exits_two(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["frobnicate"])
        assert excinfo.value.code == 2

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0


class TestThresholdFlagUnification:
    """--minsupp/--minconf everywhere; legacy spellings stay as aliases."""

    def test_mine_accepts_new_spelling(self, kb_file, capsys):
        code = main(
            ["mine", "--kb", str(kb_file), "--minsupp", "0.02", "--minconf", "0.4"]
        )
        assert code == 0
        assert "rules in window" in capsys.readouterr().out

    def test_recommend_accepts_new_spelling(self, kb_file, capsys):
        code = main(
            ["recommend", "--kb", str(kb_file), "--minsupp", "0.02", "--minconf", "0.4"]
        )
        assert code == 0
        assert "rules for any" in capsys.readouterr().out

    def test_mixing_spellings_is_a_usage_error(self, kb_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "mine",
                    "--kb", str(kb_file),
                    "--minsupp", "0.02",
                    "--min-support", "0.02",
                    "--minconf", "0.4",
                ]
            )
        assert excinfo.value.code == 2

    def test_compare_accepts_new_spelling(self, kb_file, capsys):
        code = main(
            [
                "compare",
                "--kb", str(kb_file),
                "--minsupp", "0.015", "--minconf", "0.3",
                "--second-minsupp", "0.03", "--second-minconf", "0.3",
                "--mode", "exact",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "only under the first setting" in output

    def test_compare_legacy_and_new_agree(self, kb_file, capsys):
        with pytest.warns(DeprecationWarning, match="minsupp"):
            assert main(
                [
                    "compare", "--kb", str(kb_file),
                    "--first", "0.015", "0.3", "--second", "0.03", "0.3",
                ]
            ) == 0
        legacy = capsys.readouterr().out
        assert main(
            [
                "compare", "--kb", str(kb_file),
                "--minsupp", "0.015", "--minconf", "0.3",
                "--second-minsupp", "0.03", "--second-minconf", "0.3",
            ]
        ) == 0
        assert capsys.readouterr().out == legacy

    @pytest.mark.filterwarnings("ignore::DeprecationWarning")
    def test_compare_mixed_spellings_rejected(self, kb_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "compare", "--kb", str(kb_file),
                    "--first", "0.015", "0.3",
                    "--minsupp", "0.015", "--minconf", "0.3",
                    "--second", "0.03", "0.3",
                ]
            )
        assert excinfo.value.code == 2
        assert "not both" in capsys.readouterr().err

    @pytest.mark.filterwarnings("ignore::DeprecationWarning")
    def test_compare_incomplete_setting_rejected(self, kb_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "compare", "--kb", str(kb_file),
                    "--minsupp", "0.015",
                    "--second", "0.03", "0.3",
                ]
            )
        assert excinfo.value.code == 2
        assert "--minconf" in capsys.readouterr().err


class TestBenchOnlineCommand:
    def test_quick_writes_schema_json(self, tmp_path, monkeypatch, capsys):
        import repro.bench as bench
        import repro.bench.workloads as workloads

        # Same shrink trick as the offline bench test: a tiny matrix
        # keeps the cold/warm/verify loop well under a second.
        monkeypatch.setitem(bench._WORKLOADS, "retail", (150, 3, 0.05, 0.30))
        monkeypatch.setitem(workloads.ONLINE_SUPPORT_SWEEP, "retail", (0.06, 0.08))
        monkeypatch.setitem(workloads.ONLINE_FIXED_CONFIDENCE, "retail", 0.4)
        monkeypatch.setattr(workloads, "ONLINE_CONFIDENCE_SWEEP", (0.4,))
        out = tmp_path / "BENCH_online.json"
        code = main(["bench-online", "--quick", "--out", str(out), "--repeat", "2"])
        assert code == 0
        assert "serving metrics" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["schema"] == bench.ONLINE_SCHEMA
        assert payload["quick"] is True
        assert payload["repeat"] == 2
        classes = {cell["query_class"] for cell in payload["results"]}
        assert classes == {"Q1", "Q2", "Q3", "Q5"}
        assert all(cell["verified"] for cell in payload["results"])
        assert set(payload["metrics"]) == {"retail"}
        retail_metrics = payload["metrics"]["retail"]["classes"]
        for query_class in classes:
            stats = retail_metrics[query_class]
            assert stats["hits"] + stats["misses"] > 0
        assert payload["build_seconds"]["retail"] > 0

    def test_invalid_repeat_is_domain_error(self, capsys):
        code = main(["bench-online", "--quick", "--repeat", "0", "--out", "-"])
        assert code == 1
        assert "--repeat" in capsys.readouterr().err
