"""The paper's running example (Table 1, Figures 4-5), end to end.

The dissertation's Table 1 pregenerates itemsets and rules for two
windows T1 (11 transactions) and T2 (9 transactions) over items
a, b, c; Figure 4 plots the resulting parametric locations and Figure 5
slices the space at T2 into four stable regions.  The ``tiny_windows``
fixture reverse-engineers exactly that data; this module asserts every
published number.

Items: a=0, b=1, c=2.  Thresholds: min supp 0.05, min conf 0.25.
"""

from fractions import Fraction

import pytest

from repro.core import (
    GenerationConfig,
    ParameterSetting,
    RecommendQuery,
    TaraExplorer,
    TrajectoryQuery,
    build_knowledge_base,
)
from repro.data import PeriodSpec
from repro.mining.fpgrowth import mine_fpgrowth

A, B, C = 0, 1, 2


@pytest.fixture(scope="module")
def kb(tiny_windows):
    config = GenerationConfig(min_support=0.05, min_confidence=0.25)
    return build_knowledge_base(tiny_windows, config)


@pytest.fixture(scope="module")
def explorer(kb):
    return TaraExplorer(kb)


class TestTable1aItemsets:
    """Table 1(a): per-window itemset supports at min supp 0.05."""

    EXPECTED = {
        # itemset: (support in T1, support in T2) as exact fractions
        (A,): (Fraction(4, 11), Fraction(4, 9)),
        (B,): (Fraction(5, 11), Fraction(2, 9)),
        (C,): (Fraction(4, 11), Fraction(4, 9)),
        (A, B): (Fraction(2, 11), Fraction(1, 9)),
        (A, C): (Fraction(2, 11), Fraction(3, 9)),
        (B, C): (Fraction(1, 11), Fraction(1, 9)),
    }

    def test_window_supports_match_the_paper(self, tiny_windows):
        for window in (0, 1):
            mined = mine_fpgrowth(tiny_windows.window(window), 0.05)
            for itemset, supports in self.EXPECTED.items():
                count = mined.count(itemset)
                assert Fraction(count, mined.transaction_count) == supports[window], (
                    itemset,
                    window,
                )

    def test_paper_rounded_values(self, tiny_windows):
        """The decimal values printed in Table 1(a)."""
        mined = mine_fpgrowth(tiny_windows.window(0), 0.05)
        assert mined.support((A,)) == pytest.approx(0.36, abs=0.005)
        assert mined.support((B,)) == pytest.approx(0.45, abs=0.005)
        assert mined.support((A, B)) == pytest.approx(0.18, abs=0.005)
        assert mined.support((B, C)) == pytest.approx(0.09, abs=0.005)


class TestTable1bRules:
    """Table 1(b): the six rules with their (support, confidence)."""

    # rule -> ((supp T1, conf T1) or None, (supp T2, conf T2))
    EXPECTED = {
        ((A,), (B,)): ((Fraction(2, 11), Fraction(1, 2)),
                       (Fraction(1, 9), Fraction(1, 4))),
        ((B,), (A,)): ((Fraction(2, 11), Fraction(2, 5)),
                       (Fraction(1, 9), Fraction(1, 2))),
        ((A,), (C,)): ((Fraction(2, 11), Fraction(1, 2)),
                       (Fraction(3, 9), Fraction(3, 4))),
        ((C,), (A,)): ((Fraction(2, 11), Fraction(1, 2)),
                       (Fraction(3, 9), Fraction(3, 4))),
        ((C,), (B,)): ((Fraction(1, 11), Fraction(1, 4)),
                       (Fraction(1, 9), Fraction(1, 4))),
        # R6 = b->c only qualifies in T2 (conf 1/5 < 0.25 in T1).
        ((B,), (C,)): (None, (Fraction(1, 9), Fraction(1, 2))),
    }

    def test_rule_measures_match_the_paper(self, kb):
        for (antecedent, consequent), expected in self.EXPECTED.items():
            rule_id = kb.catalog.find(antecedent, consequent)
            assert rule_id is not None, (antecedent, consequent)
            for window, values in enumerate(expected):
                measure = kb.archive.measure_at(rule_id, window)
                if values is None:
                    assert measure is None, (antecedent, consequent, window)
                    continue
                supp, conf = values
                assert Fraction(
                    measure.rule_count, measure.window_size
                ) == supp
                assert Fraction(
                    measure.rule_count, measure.antecedent_count
                ) == conf

    def test_exactly_the_published_ruleset(self, kb, explorer):
        """At the generation thresholds T1 has 5 rules, T2 has 6."""
        setting = ParameterSetting(0.05, 0.25)
        t1_rules = {
            (kb.catalog.get(r).antecedent, kb.catalog.get(r).consequent)
            for r in explorer.ruleset(setting, 0)
        }
        t2_rules = {
            (kb.catalog.get(r).antecedent, kb.catalog.get(r).consequent)
            for r in explorer.ruleset(setting, 1)
        }
        assert t1_rules == {
            key for key, (t1, _) in self.EXPECTED.items() if t1 is not None
        }
        assert t2_rules == set(self.EXPECTED)


class TestFigure4Locations:
    """Figure 4's parametric-location claims."""

    def test_r1_r3_r4_share_a_location_in_t1(self, kb):
        """'Rules R1, R3 and R4 map to the same temporal parametric
        location (0.18, 0.5) in the time period T1.'"""
        r1 = kb.catalog.find((A,), (B,))
        r3 = kb.catalog.find((A,), (C,))
        r4 = kb.catalog.find((C,), (A,))
        groups = {
            location: rule_ids
            for location, rule_ids in kb.slice(0).locations()
        }
        shared = [
            (location, ids)
            for location, ids in groups.items()
            if set(ids) >= {r1, r3, r4}
        ]
        assert len(shared) == 1
        location = shared[0][0]
        assert location.support == Fraction(2, 11)
        assert location.confidence == Fraction(1, 2)

    def test_r1_travels_to_r5s_location_in_t2(self, kb):
        """In T2, R1 = a->b relocates to R5 = c->b's location
        (0.11, 0.25).  (The running text misprints it as (0.11, 0.5);
        Table 1(b)'s values are authoritative.)"""
        r1 = kb.catalog.find((A,), (B,))
        r5 = kb.catalog.find((C,), (B,))
        for location, rule_ids in kb.slice(1).locations():
            if r1 in rule_ids:
                assert r5 in rule_ids
                assert location.support == Fraction(1, 9)
                assert location.confidence == Fraction(1, 4)
                return
        pytest.fail("R1 not found in the T2 slice")


class TestFigure5StableRegions:
    """Figure 5: the T2 slice partitions into four stable regions; a
    setting inside region S3 always yields {R3, R4}."""

    def test_t2_has_three_occupied_locations(self, kb):
        locations = list(kb.slice(1).locations())
        assert len(locations) == 3

    def test_region_s3_yields_r3_r4(self, kb, explorer):
        r3 = kb.catalog.find((A,), (C,))
        r4 = kb.catalog.find((C,), (A,))
        # Anywhere inside S3 (supp in (0.11, 0.33], conf in (0.5, 0.75]).
        for supp, conf in [(0.2, 0.6), (0.33, 0.75), (0.12, 0.51), (0.3, 0.7)]:
            assert explorer.ruleset(ParameterSetting(supp, conf), 1) == sorted(
                [r3, r4]
            ), (supp, conf)

    def test_region_recommendation_matches_figure(self, explorer):
        recommendation = explorer.execute(
            RecommendQuery(setting=ParameterSetting(0.2, 0.6), window=1)
        )
        region = recommendation.region
        assert region.cut is not None
        assert region.cut.support == Fraction(3, 9)
        assert region.cut.confidence == Fraction(3, 4)
        assert region.support_floor == Fraction(1, 9)
        assert region.confidence_floor == Fraction(1, 2)
        assert region.ruleset_size == 2

    def test_dominating_region_includes_dominated_rules(self, kb, explorer):
        """Lemma 4 on the example: the region at (0.05, 0.25) dominates
        S3, so its ruleset is a superset of {R3, R4}."""
        loose = set(explorer.ruleset(ParameterSetting(0.05, 0.25), 1))
        s3 = set(explorer.ruleset(ParameterSetting(0.2, 0.6), 1))
        assert s3 < loose


class TestTrajectoryAcrossTheExample:
    def test_r6_has_a_gap_in_t1(self, kb, explorer):
        r6 = kb.catalog.find((B,), (C,))
        trajectories = explorer.execute(
            TrajectoryQuery(
                setting=ParameterSetting(0.05, 0.25),
                anchor_window=1,
                spec=PeriodSpec([0, 1]),
            )
        )
        trajectory = next(t for t in trajectories if t.rule_id == r6)
        assert trajectory.measures[0] is None
        assert trajectory.measures[1] is not None
        assert trajectory.present_windows() == (1,)
