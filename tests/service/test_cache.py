"""LRU and segment-retirement behaviour of the region-keyed cache."""

import pytest

from repro.common.errors import ValidationError
from repro.service import EPOCH_FREE, RegionKeyedCache


class TestLru:
    def test_put_get_roundtrip(self):
        cache = RegionKeyedCache(max_entries=4)
        assert cache.get((1,)) is None
        cache.put((1,), "a", EPOCH_FREE)
        entry = cache.get((1,))
        assert entry is not None and entry.value == "a"
        assert len(cache) == 1 and (1,) in cache

    def test_bound_evicts_least_recently_used(self):
        cache = RegionKeyedCache(max_entries=2)
        cache.put((1,), "a", EPOCH_FREE)
        cache.put((2,), "b", EPOCH_FREE)
        cache.get((1,))  # refresh (1,) so (2,) is now the LRU victim
        evicted = cache.put((3,), "c", EPOCH_FREE)
        assert evicted == 1
        assert cache.get((2,)) is None
        assert cache.get((1,)) is not None and cache.get((3,)) is not None
        assert cache.evictions == 1

    def test_refreshing_put_does_not_grow(self):
        cache = RegionKeyedCache(max_entries=2)
        cache.put((1,), "a", EPOCH_FREE)
        cache.put((1,), "a2", EPOCH_FREE)
        assert len(cache) == 1
        entry = cache.get((1,))
        assert entry is not None and entry.value == "a2"

    def test_clear_reports_dropped(self):
        cache = RegionKeyedCache(max_entries=4)
        cache.put((1,), "a", EPOCH_FREE)
        cache.put((2,), "b", 3)
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_nonpositive_bound_rejected(self):
        with pytest.raises(ValidationError, match="max_entries"):
            RegionKeyedCache(max_entries=0)


class TestSegmentRetirement:
    def test_per_entry_purge_protocol_is_gone(self):
        # PR 8 retired purge_scoped_except: scoped entries live in a
        # snapshot's private segment and die with it, in one clear().
        assert not hasattr(RegionKeyedCache(max_entries=2), "purge_scoped_except")

    def test_clear_is_idempotent(self):
        cache = RegionKeyedCache(max_entries=8)
        cache.put((1,), "scoped", 2)
        cache.put((2,), "free", EPOCH_FREE)
        assert cache.clear() == 2
        assert cache.clear() == 0

    def test_canonical_home_is_core(self):
        # The serving-tier import path must stay an alias of the core
        # container, not a fork of it.
        from repro.core.cache import RegionKeyedCache as core_cache

        assert RegionKeyedCache is core_cache
