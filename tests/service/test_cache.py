"""LRU and epoch-retirement behaviour of the region-keyed cache."""

import pytest

from repro.common.errors import ValidationError
from repro.service import EPOCH_FREE, RegionKeyedCache


class TestLru:
    def test_put_get_roundtrip(self):
        cache = RegionKeyedCache(max_entries=4)
        assert cache.get((1,)) is None
        cache.put((1,), "a", EPOCH_FREE)
        entry = cache.get((1,))
        assert entry is not None and entry.value == "a"
        assert len(cache) == 1 and (1,) in cache

    def test_bound_evicts_least_recently_used(self):
        cache = RegionKeyedCache(max_entries=2)
        cache.put((1,), "a", EPOCH_FREE)
        cache.put((2,), "b", EPOCH_FREE)
        cache.get((1,))  # refresh (1,) so (2,) is now the LRU victim
        evicted = cache.put((3,), "c", EPOCH_FREE)
        assert evicted == 1
        assert cache.get((2,)) is None
        assert cache.get((1,)) is not None and cache.get((3,)) is not None
        assert cache.evictions == 1

    def test_refreshing_put_does_not_grow(self):
        cache = RegionKeyedCache(max_entries=2)
        cache.put((1,), "a", EPOCH_FREE)
        cache.put((1,), "a2", EPOCH_FREE)
        assert len(cache) == 1
        entry = cache.get((1,))
        assert entry is not None and entry.value == "a2"

    def test_clear_reports_dropped(self):
        cache = RegionKeyedCache(max_entries=4)
        cache.put((1,), "a", EPOCH_FREE)
        cache.put((2,), "b", 3)
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_nonpositive_bound_rejected(self):
        with pytest.raises(ValidationError, match="max_entries"):
            RegionKeyedCache(max_entries=0)


class TestEpochRetirement:
    def test_purge_removes_only_stale_scoped_entries(self):
        cache = RegionKeyedCache(max_entries=8)
        cache.put((1,), "free", EPOCH_FREE)
        cache.put((2,), "old", 3)
        cache.put((3,), "current", 4)
        purged = cache.purge_scoped_except(4)
        assert purged == 1
        assert cache.get((2,)) is None
        assert cache.get((1,)) is not None  # epoch-free survives
        assert cache.get((3,)) is not None  # already-current survives

    def test_purge_is_idempotent(self):
        cache = RegionKeyedCache(max_entries=8)
        cache.put((1,), "old", 2)
        assert cache.purge_scoped_except(5) == 1
        assert cache.purge_scoped_except(5) == 0
