"""Canonicalization: integer region keys, epoch tags, and float freedom."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import QueryError
from repro.core import (
    CompareQuery,
    ContentQuery,
    MatchMode,
    ParameterSetting,
    RecommendQuery,
    RollupQuery,
    TrajectoryQuery,
)
from repro.data import PeriodSpec
from repro.service import EPOCH_FREE, canonicalize

from tests.service.conftest import same_region_setting


class TestRegionKeys:
    def test_same_region_settings_share_key(self, small_kb, base_setting):
        equivalent = same_region_setting(small_kb, base_setting)
        epoch = small_kb.window_count
        first = canonicalize(
            TrajectoryQuery(setting=base_setting, anchor_window=0), small_kb, epoch
        )
        second = canonicalize(
            TrajectoryQuery(setting=equivalent, anchor_window=0), small_kb, epoch
        )
        assert first.key == second.key
        assert first.query_class == "Q1"

    def test_cross_region_settings_do_not_collide(self, small_kb, base_setting):
        epoch = small_kb.window_count
        other = ParameterSetting(0.1, 0.5)
        assert small_kb.slice(0).region_id(base_setting) != small_kb.slice(
            0
        ).region_id(other)
        first = canonicalize(
            TrajectoryQuery(setting=base_setting, anchor_window=0), small_kb, epoch
        )
        second = canonicalize(
            TrajectoryQuery(setting=other, anchor_window=0), small_kb, epoch
        )
        assert first.key != second.key

    def test_keys_are_all_integers(self, small_kb, base_setting):
        epoch = small_kb.window_count
        queries = [
            TrajectoryQuery(setting=base_setting, anchor_window=0),
            CompareQuery(first=base_setting, second=ParameterSetting(0.1, 0.5)),
            RecommendQuery(setting=base_setting),
            ContentQuery(setting=base_setting, items=(0, 1)),
        ]
        for query in queries:
            canonical = canonicalize(query, small_kb, epoch)
            assert canonical.key is not None
            assert all(isinstance(part, int) for part in canonical.key)

    def test_compare_mode_distinguishes_keys(self, small_kb, base_setting):
        epoch = small_kb.window_count
        other = ParameterSetting(0.1, 0.5)
        single = canonicalize(
            CompareQuery(first=base_setting, second=other), small_kb, epoch
        )
        exact = canonicalize(
            CompareQuery(first=base_setting, second=other, mode=MatchMode.EXACT),
            small_kb,
            epoch,
        )
        assert single.key != exact.key

    def test_content_item_normalization_shares_key(self, small_kb, base_setting):
        epoch = small_kb.window_count
        first = canonicalize(
            ContentQuery(setting=base_setting, items=(1, 0, 1)), small_kb, epoch
        )
        second = canonicalize(
            ContentQuery(setting=base_setting, items=(0, 1)), small_kb, epoch
        )
        assert first.key == second.key


class TestEpochTags:
    def test_explicit_spec_is_epoch_free(self, small_kb, base_setting):
        canonical = canonicalize(
            TrajectoryQuery(
                setting=base_setting,
                anchor_window=0,
                spec=PeriodSpec.window_range(0, 1),
            ),
            small_kb,
            small_kb.window_count,
        )
        assert canonical.epoch == EPOCH_FREE

    def test_default_spec_is_epoch_tagged(self, small_kb, base_setting):
        epoch = small_kb.window_count
        canonical = canonicalize(
            TrajectoryQuery(setting=base_setting, anchor_window=0), small_kb, epoch
        )
        assert canonical.epoch == epoch
        resolved = canonical.resolved
        assert isinstance(resolved, TrajectoryQuery)
        assert resolved.spec is not None
        assert len(resolved.spec) == small_kb.window_count

    def test_default_recommend_window_is_epoch_tagged(self, small_kb, base_setting):
        epoch = small_kb.window_count
        defaulted = canonicalize(
            RecommendQuery(setting=base_setting), small_kb, epoch
        )
        explicit = canonicalize(
            RecommendQuery(setting=base_setting, window=small_kb.window_count - 1),
            small_kb,
            epoch,
        )
        assert defaulted.epoch == epoch
        assert explicit.epoch == EPOCH_FREE
        # Both resolve to the same window; only the tag differs.
        assert defaulted.key is not None and explicit.key is not None
        assert defaulted.key[2:] == explicit.key[2:]

    def test_rollup_is_not_cacheable(self, small_kb, base_setting):
        canonical = canonicalize(
            RollupQuery(setting=base_setting, spec=PeriodSpec.window_range(0, 1)),
            small_kb,
            small_kb.window_count,
        )
        assert canonical.key is None
        assert canonical.query_class == "rollup"

    def test_unknown_query_type_rejected(self, small_kb):
        with pytest.raises(QueryError, match="unknown"):
            canonicalize(object(), small_kb, 0)  # type: ignore[arg-type]


class TestFloatJitterStability:
    @settings(max_examples=60, deadline=None)
    @given(
        supp=st.floats(min_value=0.021, max_value=0.19),
        conf=st.floats(min_value=0.11, max_value=0.79),
        steps=st.integers(min_value=1, max_value=16),
    )
    def test_key_depends_only_on_region_ranks(self, small_kb, supp, conf, steps):
        """Keys ignore raw floats: ulp-level jitter changes the Q1 key
        exactly when it crosses a stable-region cut at the anchor."""
        setting = ParameterSetting(supp, conf)
        jittered_supp, jittered_conf = supp, conf
        for _ in range(steps):
            jittered_supp = math.nextafter(jittered_supp, 1.0)
            jittered_conf = math.nextafter(jittered_conf, 1.0)
        jittered = ParameterSetting(jittered_supp, jittered_conf)
        epoch = small_kb.window_count
        base_key = canonicalize(
            TrajectoryQuery(setting=setting, anchor_window=0), small_kb, epoch
        ).key
        jitter_key = canonicalize(
            TrajectoryQuery(setting=jittered, anchor_window=0), small_kb, epoch
        ).key
        anchor = small_kb.slice(0)
        same_region = anchor.region_ranks(setting) == anchor.region_ranks(jittered)
        assert (base_key == jitter_key) == same_region
