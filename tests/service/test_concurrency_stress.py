"""Threaded stress over the paths the R006 contracts now guard.

Before this round of fixes, ``TaraService._get_explorer`` mutated
``self._explorer`` outside the lock and ``IncrementalTara`` registered
listeners on an unsynchronized list.  These tests hammer exactly those
paths — explorer creation from a cold service, queries racing appends,
and concurrent subscription — and assert the served answers stay
correct and every registration survives.  CPython's GIL makes the old
races hard to *force*, so the assertions pin observable outcomes (equal
answers, complete listener sets, coherent epochs) rather than timing.
"""

import threading

import pytest

from repro.core import (
    GenerationConfig,
    IncrementalTara,
    ParameterSetting,
    RecommendQuery,
)
from repro.service import TaraService

SETTING = ParameterSetting(0.05, 0.3)


@pytest.fixture()
def incremental(small_windows):
    inc = IncrementalTara(GenerationConfig(0.02, 0.1))
    inc.append_batch(small_windows.window(0))
    return inc


def run_all(threads):
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestExplorerCreationRace:
    def test_cold_concurrent_queries_share_one_explorer(self, small_kb):
        service = TaraService(small_kb)
        expected = service.uncached(RecommendQuery(setting=SETTING, window=0))
        results = []
        errors = []

        def client():
            try:
                results.append(service.recommend(SETTING, window=0))
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        run_all([threading.Thread(target=client) for _ in range(16)])
        assert not errors
        assert all(got.region == expected.region for got in results)
        # The lock makes lazy creation single-shot: later calls reuse it.
        assert service._get_explorer() is service._get_explorer()


class TestQueriesRacingAppends:
    def test_explicit_window_answers_survive_epoch_churn(
        self, incremental, small_windows
    ):
        service = TaraService(incremental)
        expected = service.recommend(SETTING, window=0)
        errors = []
        stop = threading.Event()

        def client():
            while not stop.is_set():
                got = service.recommend(SETTING, window=0)
                if got.region != expected.region:
                    errors.append(got)

        clients = [threading.Thread(target=client) for _ in range(4)]
        for thread in clients:
            thread.start()
        try:
            for index in range(1, small_windows.window_count):
                incremental.append_batch(small_windows.window(index))
        finally:
            stop.set()
            for thread in clients:
                thread.join()
        assert not errors
        # Every append notified the service: epochs ended in sync.
        assert service.epoch == incremental.window_count
        assert service.cache_info()["epoch"] == incremental.window_count


class TestConcurrentSubscription:
    def test_no_registration_is_lost(self, incremental, small_windows):
        notified = set()
        lock = threading.Lock()

        def register(worker, per_worker):
            for slot in range(per_worker):
                token = (worker, slot)

                def listener(count, token=token):
                    with lock:
                        notified.add(token)

                incremental.subscribe(listener)

        workers, per_worker = 8, 25
        run_all(
            [
                threading.Thread(target=register, args=(worker, per_worker))
                for worker in range(workers)
            ]
        )
        incremental.append_batch(small_windows.window(1))
        assert len(notified) == workers * per_worker

    def test_subscribe_races_appends_without_corruption(
        self, incremental, small_windows
    ):
        counts = []
        lock = threading.Lock()

        def listener(count):
            with lock:
                counts.append(count)

        def subscriber():
            for _ in range(50):
                incremental.subscribe(lambda count: None)

        subscribers = [threading.Thread(target=subscriber) for _ in range(4)]
        incremental.subscribe(listener)
        for thread in subscribers:
            thread.start()
        for index in range(1, small_windows.window_count):
            incremental.append_batch(small_windows.window(index))
        for thread in subscribers:
            thread.join()
        # The pre-registered listener saw every append, in order.
        assert counts == list(range(2, small_windows.window_count + 1))
