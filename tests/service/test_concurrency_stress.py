"""Threaded stress over the paths the R006 contracts now guard.

PR 8 replaced the listener/purge protocol with pinned MVCC snapshots,
so the races worth hammering moved: explorer creation from a cold
snapshot, queries racing *publishes* (each publish installs a new
snapshot and retires the old one when its readers drain), and pin/
release storms against the publisher.  CPython's GIL makes the old
races hard to *force*, so the assertions pin observable outcomes
(equal answers, retire-exactly-once, coherent epochs) rather than
timing.
"""

import threading

import pytest

from repro.core import (
    GenerationConfig,
    IncrementalTara,
    ParameterSetting,
    RecommendQuery,
)
from repro.service import TaraService

SETTING = ParameterSetting(0.05, 0.3)


@pytest.fixture()
def incremental(small_windows):
    inc = IncrementalTara(GenerationConfig(0.02, 0.1))
    inc.publish([small_windows.window(0)])
    return inc


def run_all(threads):
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestExplorerCreationRace:
    def test_cold_concurrent_queries_share_one_explorer(self, small_kb):
        service = TaraService(small_kb)
        expected = service.uncached(RecommendQuery(setting=SETTING, window=0))
        results = []
        errors = []

        def client():
            try:
                results.append(service.recommend(SETTING, window=0))
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        run_all([threading.Thread(target=client) for _ in range(16)])
        assert not errors
        assert all(got.region == expected.region for got in results)
        # The snapshot lock makes lazy creation single-shot: every
        # reader of the pinned snapshot reuses one explorer.
        with service.pin() as snapshot:
            assert snapshot.explorer() is snapshot.explorer()


class TestQueriesRacingPublishes:
    def test_explicit_window_answers_survive_epoch_churn(
        self, incremental, small_windows
    ):
        service = TaraService(incremental)
        expected = service.recommend(SETTING, window=0)
        errors = []
        stop = threading.Event()

        def client():
            while not stop.is_set():
                got = service.recommend(SETTING, window=0)
                if got.region != expected.region:
                    errors.append(got)

        clients = [threading.Thread(target=client) for _ in range(4)]
        for thread in clients:
            thread.start()
        try:
            for index in range(1, small_windows.window_count):
                incremental.publish([small_windows.window(index)])
        finally:
            stop.set()
            for thread in clients:
                thread.join()
        assert not errors
        # Every publish installed its snapshot: epochs ended in sync.
        assert service.epoch == incremental.window_count
        assert service.cache_info()["epoch"] == incremental.window_count


class TestPinReleaseStorm:
    def test_concurrent_pins_never_see_a_retired_snapshot(
        self, incremental, small_windows
    ):
        errors = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                try:
                    with incremental.snapshot() as snapshot:
                        if snapshot.retired:
                            errors.append(snapshot.epoch)
                except Exception as error:  # pragma: no cover
                    errors.append(error)

        readers = [threading.Thread(target=reader) for _ in range(8)]
        for thread in readers:
            thread.start()
        try:
            for index in range(1, small_windows.window_count):
                incremental.publish([small_windows.window(index)])
        finally:
            stop.set()
            for thread in readers:
                thread.join()
        assert not errors

    def test_superseded_snapshots_retire_exactly_once(
        self, incremental, small_windows
    ):
        handles = [incremental.snapshot() for _ in range(32)]
        superseded = handles[0].snapshot
        incremental.publish([small_windows.window(1)])
        assert not superseded.retired  # readers still pin it

        run_all(
            [
                threading.Thread(target=handle.release)
                for handle in handles
            ]
        )
        assert superseded.retired
        assert superseded.retire_count == 1
        # Two retirements total: the fixture's epoch-0 snapshot (when
        # the first publish superseded it) and this one.
        stats = incremental.snapshot_stats()
        assert stats["retired_snapshots"] == 2
