"""End-to-end behaviour of the cached serving façade."""

import threading

import pytest

from repro.common.errors import ValidationError
from repro.core import (
    GenerationConfig,
    IncrementalTara,
    ParameterSetting,
    RecommendQuery,
    TaraExplorer,
    TrajectoryQuery,
)
from repro.service import TaraService


@pytest.fixture()
def service(small_kb):
    return TaraService(small_kb)


class TestRegionSharing:
    def test_same_region_settings_share_one_entry(
        self, service, base_setting, equivalent_setting
    ):
        first = service.trajectories(base_setting, anchor_window=0)
        second = service.trajectories(equivalent_setting, anchor_window=0)
        assert first == second
        assert service.cache_info()["entries"] == 1
        assert service.metrics.hits["Q1"] == 1
        assert service.metrics.misses["Q1"] == 1

    def test_cross_region_settings_get_distinct_entries(
        self, service, base_setting
    ):
        service.trajectories(base_setting, anchor_window=0)
        service.trajectories(ParameterSetting(0.1, 0.5), anchor_window=0)
        assert service.cache_info()["entries"] == 2
        assert service.metrics.hits["Q1"] == 0
        assert service.metrics.misses["Q1"] == 2

    def test_warm_answers_echo_the_callers_floats(
        self, service, base_setting, equivalent_setting
    ):
        service.recommend(base_setting)
        warm = service.recommend(equivalent_setting)
        assert service.metrics.hits["Q3"] == 1
        assert warm.setting == equivalent_setting
        cold_compare = service.compare(base_setting, ParameterSetting(0.1, 0.5))
        warm_compare = service.compare(
            equivalent_setting, ParameterSetting(0.1, 0.5)
        )
        assert service.metrics.hits["Q2"] == 1
        assert warm_compare.first == equivalent_setting
        assert warm_compare.only_first == cold_compare.only_first
        assert warm_compare.only_second == cold_compare.only_second

    def test_served_containers_are_caller_owned(self, service, base_setting):
        first = service.trajectories(base_setting, anchor_window=0)
        expected = len(first)
        first.clear()
        again = service.trajectories(base_setting, anchor_window=0)
        assert len(again) == expected
        content = service.content(base_setting, items=(0,))
        for ids in content.values():
            ids.clear()
        assert service.content(base_setting, items=(0,)) != content or not content


class TestAgainstExplorer:
    def test_cached_answers_match_direct_execution(self, small_kb, base_setting):
        service = TaraService(small_kb)
        explorer = TaraExplorer(small_kb)
        queries = [
            TrajectoryQuery(setting=base_setting, anchor_window=0),
            RecommendQuery(setting=base_setting),
        ]
        for query in queries:
            cold = service.execute(query)
            warm = service.execute(query)
            assert cold == warm == explorer.execute(query) == service.uncached(query)

    def test_wrapping_an_existing_explorer(self, small_kb, base_setting):
        explorer = TaraExplorer(small_kb)
        service = TaraService(explorer)
        assert service.recommend(base_setting) == explorer.execute(
            RecommendQuery(setting=base_setting)
        )

    def test_invalid_source_rejected(self):
        with pytest.raises(ValidationError, match="serve"):
            TaraService("not a knowledge base")  # type: ignore[arg-type]


class TestSnapshotRetirement:
    def test_publish_retires_scoped_entries_and_keeps_explicit_ones(
        self, small_windows, base_setting
    ):
        """The acceptance scenario: publishing a window retires exactly
        the generation-scoped entries (they die with their snapshot's
        segment); explicit-window entries keep serving because archived
        windows are immutable."""
        incremental = IncrementalTara(GenerationConfig(0.02, 0.1))
        incremental.publish(
            [small_windows.window(0), small_windows.window(1)]
        )
        service = TaraService(incremental)
        assert service.epoch == 2

        scoped = service.trajectories(base_setting, anchor_window=0)  # spec=None
        explicit = service.recommend(base_setting, window=0)
        assert service.cache_info()["entries"] == 2
        assert {len(t.measures) for t in scoped} == {2}

        incremental.publish([small_windows.window(2)])
        assert service.epoch == 3
        assert service.cache_info()["entries"] == 1  # segment died with its snapshot
        assert service.metrics.invalidations == 1

        rescoped = service.trajectories(base_setting, anchor_window=0)
        assert service.metrics.misses["Q1"] == 2  # recomputed, not served stale
        assert {len(t.measures) for t in rescoped} == {3}

        assert service.recommend(base_setting, window=0) == explicit
        assert service.metrics.hits["Q3"] == 1  # explicit entry survived

    def test_publish_with_empty_segment_is_harmless(self, small_windows):
        incremental = IncrementalTara(GenerationConfig(0.02, 0.1))
        incremental.publish([small_windows.window(0)])
        service = TaraService(incremental)
        incremental.publish([small_windows.window(1)])
        assert service.cache_info()["entries"] == 0
        assert service.metrics.invalidations == 0
        assert service.epoch == 2


class TestMetricsAndBounds:
    def test_evictions_reach_the_metrics(self, small_kb, base_setting):
        service = TaraService(small_kb, max_entries=1)
        service.trajectories(base_setting, anchor_window=0)
        service.trajectories(ParameterSetting(0.1, 0.5), anchor_window=0)
        info = service.cache_info()
        assert info["entries"] == 1
        assert info["evictions"] == 1
        assert service.metrics.evictions == 1

    def test_counters_reconcile_with_requests(
        self, service, base_setting, equivalent_setting
    ):
        for setting in (base_setting, equivalent_setting, base_setting):
            service.trajectories(setting, anchor_window=0)
            service.recommend(setting)
        for query_class in ("Q1", "Q3"):
            assert (
                service.metrics.hits[query_class]
                + service.metrics.misses[query_class]
                == service.metrics.requests(query_class)
                == 3
            )
            assert (
                service.metrics.hit_latency[query_class].count
                + service.metrics.miss_latency[query_class].count
                == 3
            )

    def test_concurrent_clients_agree(self, small_kb, base_setting, equivalent_setting):
        service = TaraService(small_kb)
        expected = TaraExplorer(small_kb).execute(
            TrajectoryQuery(setting=base_setting, anchor_window=0)
        )
        failures = []

        def client(setting):
            for _ in range(5):
                got = service.trajectories(setting, anchor_window=0)
                if got != expected:
                    failures.append(setting)

        threads = [
            threading.Thread(target=client, args=(setting,))
            for setting in (base_setting, equivalent_setting) * 4
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        assert service.metrics.requests("Q1") == 40
        assert service.metrics.hits["Q1"] + service.metrics.misses["Q1"] == 40
