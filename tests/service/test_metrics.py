"""Counter and histogram accounting of the serving metrics."""

from repro.service import LatencyHistogram, ServiceMetrics
from repro.service.metrics import BUCKET_LABELS


class TestLatencyHistogram:
    def test_bucket_assignment(self):
        histogram = LatencyHistogram()
        histogram.record(5e-6)   # <10us
        histogram.record(5e-4)   # <1ms
        histogram.record(2.0)    # >=1s
        snapshot = histogram.as_dict()
        buckets = snapshot["buckets"]
        assert buckets["<10us"] == 1
        assert buckets["<1ms"] == 1
        assert buckets[">=1s"] == 1
        assert snapshot["count"] == 3

    def test_mean_tracks_total(self):
        histogram = LatencyHistogram()
        assert histogram.mean_seconds == 0.0
        histogram.record(0.1)
        histogram.record(0.3)
        assert abs(histogram.mean_seconds - 0.2) < 1e-12

    def test_counts_reconcile_with_buckets(self):
        histogram = LatencyHistogram()
        for value in (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0):
            histogram.record(value)
        assert sum(histogram.buckets) == histogram.count == 8
        assert set(histogram.as_dict()["buckets"]) == set(BUCKET_LABELS)


class TestServiceMetrics:
    def test_hits_misses_and_histograms_reconcile(self):
        metrics = ServiceMetrics()
        metrics.observe("Q1", hit=False, seconds=0.01)
        metrics.observe("Q1", hit=True, seconds=0.0001)
        metrics.observe("Q1", hit=True, seconds=0.0002)
        metrics.observe("Q3", hit=False, seconds=0.002)
        assert metrics.requests("Q1") == 3
        assert metrics.hits["Q1"] == 2 and metrics.misses["Q1"] == 1
        assert metrics.hit_latency["Q1"].count == 2
        assert metrics.miss_latency["Q1"].count == 1
        assert metrics.requests("Q3") == 1
        assert metrics.requests("Q5") == 0

    def test_eviction_and_invalidation_counters(self):
        metrics = ServiceMetrics()
        metrics.record_evictions(2)
        metrics.record_evictions(1)
        metrics.record_invalidations(5)
        assert metrics.evictions == 3
        assert metrics.invalidations == 5

    def test_as_dict_shape(self):
        metrics = ServiceMetrics()
        metrics.observe("Q2", hit=False, seconds=0.5)
        snapshot = metrics.as_dict()
        assert snapshot["evictions"] == 0
        q2 = snapshot["classes"]["Q2"]
        assert q2["hits"] == 0 and q2["misses"] == 1
        assert q2["miss_latency"]["count"] == 1

    def test_report_is_readable(self):
        metrics = ServiceMetrics()
        metrics.observe("Q1", hit=True, seconds=0.001)
        metrics.observe("Q1", hit=False, seconds=0.01)
        metrics.record_invalidations(1)
        report = metrics.report("cache stats")
        assert report.splitlines()[0] == "cache stats"
        assert "Q1" in report
        assert "invalidations" in report
        assert "50.0%" in report
