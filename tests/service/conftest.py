"""Fixtures and helpers for the serving-layer suite."""

from __future__ import annotations

import pytest

from repro.core import (
    ParameterSetting,
    RecommendQuery,
    TaraExplorer,
    TaraKnowledgeBase,
)


def same_region_setting(
    knowledge_base: TaraKnowledgeBase, setting: ParameterSetting
) -> ParameterSetting:
    """A different-float setting inside *setting*'s region in EVERY window.

    Intersects the per-window stable-region boxes and returns their
    midpoint — the strongest form of region equivalence (multi-window
    cache keys require matching regions in every window, not just one).
    """
    explorer = TaraExplorer(knowledge_base)
    regions = [
        explorer.execute(RecommendQuery(setting=setting, window=window)).region
        for window in range(knowledge_base.window_count)
    ]
    assert all(region.cut is not None for region in regions)
    low_supp = max(region.support_floor for region in regions)
    high_supp = min(region.cut.support for region in regions)
    low_conf = max(region.confidence_floor for region in regions)
    high_conf = min(region.cut.confidence for region in regions)
    equivalent = ParameterSetting(
        float((low_supp + high_supp) / 2), float((low_conf + high_conf) / 2)
    )
    for window in range(knowledge_base.window_count):
        window_slice = knowledge_base.slice(window)
        assert window_slice.region_ranks(setting) == window_slice.region_ranks(
            equivalent
        )
    return equivalent


@pytest.fixture(scope="module")
def base_setting() -> ParameterSetting:
    """The reference query setting used across the serving tests."""
    return ParameterSetting(0.05, 0.3)


@pytest.fixture(scope="module")
def equivalent_setting(small_kb, base_setting) -> ParameterSetting:
    """A float-distinct setting region-equivalent to ``base_setting``."""
    equivalent = same_region_setting(small_kb, base_setting)
    assert equivalent != base_setting
    return equivalent
