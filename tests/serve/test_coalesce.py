"""Coalescer unit tests: one execution per key, shared failures."""

from __future__ import annotations

import asyncio

from repro.common.errors import QueryError
from repro.serve.coalesce import RequestCoalescer

KEY_A = (1, -1, 0, 7)
KEY_B = (3, -1, 2, 9)


def test_concurrent_identical_requests_execute_once():
    async def scenario():
        coalescer = RequestCoalescer()
        release = asyncio.Event()
        executions = []

        async def supplier():
            executions.append(1)
            await release.wait()
            return {"answer": 42}

        tasks = [
            asyncio.create_task(coalescer.run(KEY_A, supplier))
            for _ in range(5)
        ]
        await asyncio.sleep(0)  # let every task reach the coalescer
        assert coalescer.in_flight == 1
        release.set()
        results = await asyncio.gather(*tasks)
        return coalescer, executions, results

    coalescer, executions, results = asyncio.run(scenario())
    assert len(executions) == 1
    assert coalescer.executions == 1
    assert coalescer.hits == 4
    assert coalescer.in_flight == 0
    answers = [answer for answer, _ in results]
    assert all(answer is answers[0] for answer in answers)
    assert sorted(coalesced for _, coalesced in results) == [
        False, True, True, True, True,
    ]


def test_distinct_keys_do_not_coalesce():
    async def scenario():
        coalescer = RequestCoalescer()
        release = asyncio.Event()

        def supplier_for(value):
            async def supplier():
                await release.wait()
                return value

            return supplier

        task_a = asyncio.create_task(coalescer.run(KEY_A, supplier_for("a")))
        task_b = asyncio.create_task(coalescer.run(KEY_B, supplier_for("b")))
        await asyncio.sleep(0)
        assert coalescer.in_flight == 2
        release.set()
        (answer_a, _), (answer_b, _) = await asyncio.gather(task_a, task_b)
        return coalescer, answer_a, answer_b

    coalescer, answer_a, answer_b = asyncio.run(scenario())
    assert (answer_a, answer_b) == ("a", "b")
    assert coalescer.executions == 2
    assert coalescer.hits == 0


def test_failure_propagates_to_every_waiter():
    async def scenario():
        coalescer = RequestCoalescer()
        release = asyncio.Event()

        async def supplier():
            await release.wait()
            raise QueryError("window 99 does not exist")

        tasks = [
            asyncio.create_task(coalescer.run(KEY_A, supplier))
            for _ in range(3)
        ]
        await asyncio.sleep(0)
        release.set()
        outcomes = await asyncio.gather(*tasks, return_exceptions=True)
        return coalescer, outcomes

    coalescer, outcomes = asyncio.run(scenario())
    assert len(outcomes) == 3
    assert all(isinstance(outcome, QueryError) for outcome in outcomes)
    # One execution paid for the whole burst, even though it failed.
    assert coalescer.executions == 1
    assert coalescer.hits == 2
    assert coalescer.in_flight == 0


def test_sequential_requests_each_execute():
    async def scenario():
        coalescer = RequestCoalescer()

        async def supplier():
            return "fresh"

        first = await coalescer.run(KEY_A, supplier)
        second = await coalescer.run(KEY_A, supplier)
        return coalescer, first, second

    coalescer, first, second = asyncio.run(scenario())
    # No overlap, no coalescing: the cache above this layer handles
    # sequential reuse; the coalescer only collapses concurrency.
    assert first == ("fresh", False)
    assert second == ("fresh", False)
    assert coalescer.executions == 2
    assert coalescer.hits == 0


def test_counters_snapshot():
    coalescer = RequestCoalescer()
    assert coalescer.counters() == {
        "executions": 0,
        "hits": 0,
        "in_flight": 0,
    }
