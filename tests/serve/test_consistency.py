"""Coalescing and snapshot-consistency guarantees, end to end.

These tests pin the two serving-tier invariants that cannot be seen
from a single request:

* a concurrent burst of region-identical requests executes **once**
  (the coalescer collapses it) and every response carries the same
  answer;
* a publish landing while a generation-scoped request is in flight
  never changes the request's answer — the request executes against
  the snapshot it pinned, and the envelope's ``snapshot_epoch`` names
  exactly which one.

Determinism: the tests shadow ``service.execute_on`` on the instance
with a wrapper that blocks (or publishes) mid-flight, so the overlap
window is guaranteed rather than hoped for.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time

from repro.core import (
    GenerationConfig,
    IncrementalTara,
    ParameterSetting,
    TrajectoryQuery,
)
from repro.serve import ServeClient
from repro.serve.gateway import QueryGateway
from repro.serve.protocol import encode_answer, encode_request
from repro.service import TaraService

SETTING = ParameterSetting(min_support=0.03, min_confidence=0.2)


def _request_bytes(query):
    kind, payload = encode_request(query)
    return f"/v1/query/{kind}", json.dumps(payload).encode("utf-8")


def test_concurrent_identical_requests_coalesce(small_kb):
    async def scenario():
        service = TaraService(small_kb)
        gateway = QueryGateway(service, pool_size=4)
        started = threading.Event()
        release = threading.Event()
        executions = []
        original = service.execute_on

        def gated_execute(snapshot, query):
            executions.append(1)
            started.set()
            release.wait(timeout=5.0)
            return original(snapshot, query)

        service.execute_on = gated_execute  # instance shadow, test-only
        target, body = _request_bytes(
            TrajectoryQuery(setting=SETTING, anchor_window=0)
        )
        tasks = [
            asyncio.create_task(gateway.dispatch("POST", target, body))
            for _ in range(6)
        ]
        # Wait until the leader is inside the (blocked) execution, then
        # give the followers a loop turn to join the in-flight future.
        await asyncio.get_running_loop().run_in_executor(
            None, started.wait, 5.0
        )
        while gateway.coalescer.hits < 5:
            await asyncio.sleep(0)
        release.set()
        results = await asyncio.gather(*tasks)
        gateway.aclose()
        return gateway, executions, results

    gateway, executions, results = asyncio.run(scenario())
    assert len(executions) == 1
    assert gateway.coalescer.executions == 1
    assert gateway.coalescer.hits == 5
    statuses = [status for status, _ in results]
    assert statuses == [200] * 6
    answers = [envelope["answer"] for _, envelope in results]
    assert all(answer == answers[0] for answer in answers)
    coalesced = sorted(envelope["coalesced"] for _, envelope in results)
    assert coalesced == [False, True, True, True, True, True]


def test_publish_mid_flight_never_changes_the_pinned_answer(small_windows):
    async def scenario():
        incremental = IncrementalTara(GenerationConfig(0.02, 0.1))
        incremental.publish(
            [small_windows.window(0), small_windows.window(1)]
        )
        service = TaraService(incremental)
        gateway = QueryGateway(service, pool_size=2)
        original = service.execute_on
        raced = []

        def racing_execute(snapshot, query):
            # The publish lands after the gateway pinned its snapshot
            # (epoch 2) but before the execution returns: exactly the
            # race the pinned handle exists to make unobservable.
            if not raced:
                raced.append(True)
                incremental.publish([small_windows.window(2)])
            return original(snapshot, query)

        service.execute_on = racing_execute  # instance shadow, test-only
        # spec=None => generation-scoped: resolves to "all windows" of
        # the pinned snapshot.
        query = TrajectoryQuery(setting=SETTING, anchor_window=0)
        target, body = _request_bytes(query)
        status, envelope = await gateway.dispatch("POST", target, body)
        gateway.aclose()
        # A serial rebuild at the pinned snapshot's window count is the
        # reference the served answer must be identical to.
        reference = IncrementalTara(GenerationConfig(0.02, 0.1))
        reference.publish(
            [small_windows.window(0), small_windows.window(1)]
        )
        expected = encode_answer(
            "Q1", TaraService(reference.knowledge_base).uncached(query)
        )
        return status, envelope, service.epoch, expected

    status, envelope, epoch, expected = asyncio.run(scenario())
    assert status == 200
    assert epoch == 3  # the publish landed mid-flight...
    assert envelope["snapshot_epoch"] == 2  # ...but the request stayed pinned
    assert envelope["epoch"] == 2  # frozen compatibility name, same value
    assert envelope["coalesced"] is False
    # The served answer equals the serial rebuild at two windows: the
    # appended window 2 is invisible to the pinned request.
    assert envelope["answer"] == expected
    assert envelope["answer"]["trajectories"]
    assert all(
        "2" not in row["measures"]
        for row in envelope["answer"]["trajectories"]
    )


def test_graceful_drain_finishes_in_flight_requests(
    small_kb, running_server
):
    async def scenario():
        service = TaraService(small_kb)
        original = service.execute_on

        def slow_execute(snapshot, query):
            time.sleep(0.2)
            return original(snapshot, query)

        service.execute_on = slow_execute  # instance shadow, test-only
        async with running_server(service, drain_timeout=5.0) as server:
            host, port = server.address
            client = await ServeClient.open(host, port)
            in_flight = asyncio.create_task(
                client.execute(TrajectoryQuery(setting=SETTING, anchor_window=0))
            )
            while server.gateway.in_flight == 0:
                await asyncio.sleep(0.005)
            stop = asyncio.create_task(server.stop())
            status, envelope = await in_flight
            await stop
            await client.aclose()
            # Drained: new connections are refused.
            try:
                await asyncio.open_connection(host, port)
                refused = False
            except (ConnectionError, OSError):
                refused = True
            return status, envelope, refused

    status, envelope, refused = asyncio.run(scenario())
    assert status == 200  # the in-flight request completed during drain
    assert envelope["ok"] is True
    assert refused


def test_draining_gateway_rejects_new_queries(small_kb, running_server):
    async def scenario():
        async with running_server(small_kb) as server:
            host, port = server.address
            client = await ServeClient.open(host, port)
            try:
                server.gateway.begin_drain()
                health_status, health = await client.healthz()
                status, envelope = await client.execute(
                    TrajectoryQuery(setting=SETTING, anchor_window=0)
                )
            finally:
                await client.aclose()
        return health_status, health, status, envelope

    health_status, health, status, envelope = asyncio.run(scenario())
    assert health_status == 200  # health stays observable while draining
    assert health["status"] == "draining"
    assert status == 503
    assert envelope["error"]["code"] == "draining"
