"""Shared helpers for the network-tier tests.

No pytest-asyncio in the toolchain: every test drives its scenario with
a plain ``asyncio.run``.  The ``running_server`` fixture returns an
async context manager that boots a :class:`TaraServer` on an ephemeral
port and drains it on exit, so tests never collide on ports and never
leak sockets.
"""

from __future__ import annotations

import contextlib
from typing import AsyncIterator, Union

import pytest

from repro.core import TaraKnowledgeBase
from repro.serve import ServeConfig, TaraServer
from repro.service import TaraService


@pytest.fixture()
def running_server():
    """Factory fixture: ``async with running_server(kb_or_service, **cfg)``."""

    @contextlib.asynccontextmanager
    async def _run(
        source: Union[TaraKnowledgeBase, TaraService], **overrides: object
    ) -> AsyncIterator[TaraServer]:
        service = (
            source if isinstance(source, TaraService) else TaraService(source)
        )
        config = ServeConfig(port=0, **overrides)  # type: ignore[arg-type]
        server = TaraServer(service, config)
        await server.start()
        try:
            yield server
        finally:
            await server.stop()

    return _run
