"""Unit tests for the encoded-response byte cache."""

from __future__ import annotations

import pytest

from repro.common.errors import ValidationError
from repro.serve.respcache import (
    ENTRY_OVERHEAD,
    GZIP,
    IDENTITY,
    ResponseCache,
)
from repro.service.keys import EPOCH_FREE

KEY_A = ((1, 2, 3), ())
KEY_B = ((4, 5, 6), ())
KEY_ECHO = ((1, 2, 3), (0.25, 0.5))


def filled(budget=1 << 20):
    cache = ResponseCache(budget)
    cache.put(KEY_A, b"alpha", 3)
    return cache


class TestLookup:
    def test_miss_then_hit(self):
        cache = filled()
        assert cache.lookup(KEY_B, accept_gzip=False) is None
        found = cache.lookup(KEY_A, accept_gzip=False)
        assert found is not None
        assert found.encoding == IDENTITY and found.body == b"alpha"
        assert cache.hits == 1 and cache.misses == 1

    def test_echo_tag_distinguishes_entries(self):
        cache = filled()
        # Same region key, different raw caller floats: distinct bytes.
        assert cache.lookup(KEY_ECHO, accept_gzip=False) is None
        cache.put(KEY_ECHO, b"echoed", 3)
        assert cache.lookup(KEY_ECHO, accept_gzip=False).body == b"echoed"
        assert cache.lookup(KEY_A, accept_gzip=False).body == b"alpha"

    def test_gzip_preferred_when_accepted(self):
        cache = filled()
        cache.put_gzip(KEY_A, b"gz", 3)
        assert cache.lookup(KEY_A, accept_gzip=True).encoding == GZIP
        assert cache.lookup(KEY_A, accept_gzip=False).encoding == IDENTITY

    def test_identity_fallback_counts_one_hit(self):
        cache = filled()
        found = cache.lookup(KEY_A, accept_gzip=True)
        assert found.encoding == IDENTITY  # no variant yet
        assert cache.hits == 1 and cache.misses == 0

    def test_gzip_variant_counter_counts_new_entries_once(self):
        cache = filled()
        cache.put_gzip(KEY_A, b"gz1", 3)
        cache.put_gzip(KEY_A, b"gz2", 3)  # refresh, not a new variant
        assert cache.gzip_variants == 1


class TestBudget:
    def test_eviction_is_least_recently_served(self):
        body = b"x" * 100
        budget = 3 * (len(body) + ENTRY_OVERHEAD)
        cache = ResponseCache(budget)
        keys = [((n,), ()) for n in range(3)]
        for key in keys:
            cache.put(key, body, EPOCH_FREE)
        cache.lookup(keys[0], accept_gzip=False)  # refresh the oldest
        cache.put(((9,), ()), body, EPOCH_FREE)  # forces one eviction
        assert cache.evictions == 1
        assert cache.lookup(keys[1], accept_gzip=False) is None  # evicted
        assert cache.lookup(keys[0], accept_gzip=False) is not None

    def test_byte_accounting(self):
        cache = ResponseCache(1 << 20)
        cache.put(KEY_A, b"abcd", EPOCH_FREE)
        expected = 4 + ENTRY_OVERHEAD
        assert cache.current_bytes == expected
        cache.put(KEY_A, b"ab", EPOCH_FREE)  # refresh shrinks the charge
        assert cache.current_bytes == 2 + ENTRY_OVERHEAD
        assert cache.peak_bytes == expected

    def test_oversize_body_rejected(self):
        cache = ResponseCache(64)
        cache.put(KEY_A, b"y" * 65, EPOCH_FREE)
        assert cache.rejected == 1
        assert len(cache) == 0 and cache.current_bytes == 0

    def test_budget_must_be_positive(self):
        with pytest.raises(ValidationError, match="budget_bytes"):
            ResponseCache(0)


class TestEpochRetirement:
    def test_other_epochs_purged_current_kept(self):
        cache = ResponseCache(1 << 20)
        cache.put(KEY_A, b"old", 3)
        cache.put(KEY_B, b"new", 4)
        cache.observe_epoch(4)
        assert cache.lookup(KEY_A, accept_gzip=False) is None
        assert cache.lookup(KEY_B, accept_gzip=False).body == b"new"
        assert cache.purged_entries == 1 and cache.purged_epochs == 1
        assert cache.current_bytes == 3 + ENTRY_OVERHEAD

    def test_epoch_free_entries_survive(self):
        cache = ResponseCache(1 << 20)
        cache.put(KEY_A, b"forever", EPOCH_FREE)
        cache.put(KEY_B, b"scoped", 3)
        cache.observe_epoch(9)
        assert cache.lookup(KEY_A, accept_gzip=False).body == b"forever"
        assert cache.lookup(KEY_B, accept_gzip=False) is None

    def test_purge_drops_gzip_variant_with_its_epoch(self):
        cache = ResponseCache(1 << 20)
        cache.put(KEY_A, b"body", 3)
        cache.put_gzip(KEY_A, b"gz", 3)
        cache.observe_epoch(4)
        assert len(cache) == 0
        assert cache.purged_entries == 2

    def test_observe_same_epoch_is_noop(self):
        cache = ResponseCache(1 << 20)
        cache.put(KEY_A, b"body", 3)
        cache.observe_epoch(3)
        cache.observe_epoch(3)
        assert cache.lookup(KEY_A, accept_gzip=False) is not None
        assert cache.purged_entries == 0 and cache.purged_epochs == 0


class TestCounters:
    def test_counter_snapshot_keys(self):
        cache = filled()
        cache.record_served(42)
        cache.record_not_modified()
        counters = cache.counters()
        assert counters["entries"] == 1
        assert counters["stores"] == 1
        assert counters["bytes_served"] == 42
        assert counters["not_modified"] == 1
        assert set(counters) == {
            "entries",
            "budget_bytes",
            "current_bytes",
            "peak_bytes",
            "hits",
            "misses",
            "stores",
            "evictions",
            "rejected",
            "purged_entries",
            "purged_epochs",
            "gzip_variants",
            "bytes_served",
            "not_modified",
        }
