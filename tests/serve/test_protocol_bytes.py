"""Byte-level answer encoding: identity with the dict encoder, chunking.

The wire-hot path serves cached bytes produced by
``encode_answer_bytes`` while every correctness statement in the test
suite (and every external client) is written against the dict form of
``encode_answer``.  These tests pin the bridge: for every query class
and any chunk target, concatenating the iterator's chunks yields
exactly ``json.dumps(encode_answer(...), separators=(",", ":"))``.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ProtocolError
from repro.core import (
    CompareQuery,
    ContentQuery,
    ParameterSetting,
    RecommendQuery,
    RollupQuery,
    TrajectoryQuery,
)
from repro.data import PeriodSpec
from repro.serve.protocol import (
    dumps_bytes,
    encode_answer,
    encode_answer_blob,
    encode_answer_bytes,
    envelope_prefix,
)
from repro.service import TaraService


def reference_bytes(query_class, answer):
    """The ground truth: dict encoder + canonical compact JSON."""
    return json.dumps(
        encode_answer(query_class, answer), separators=(",", ":")
    ).encode("utf-8")


def class_queries(first, second):
    """One query per class at the given settings (first loosest)."""
    return {
        "Q1": TrajectoryQuery(setting=first, anchor_window=0),
        "Q2": CompareQuery(first=first, second=second),
        "Q3": RecommendQuery(setting=first),
        "Q5": ContentQuery(setting=first, items=(0, 1, 5)),
        "rollup": RollupQuery(setting=first, spec=PeriodSpec([0, 1])),
    }


setting_strategy = st.tuples(
    st.floats(min_value=0.02, max_value=0.5),
    st.floats(min_value=0.1, max_value=0.9),
).map(lambda pair: ParameterSetting(*pair))

chunk_target_strategy = st.integers(min_value=1, max_value=128 * 1024)


class TestByteIdentity:
    @settings(max_examples=20, deadline=None)
    @given(setting=setting_strategy, chunk_target=chunk_target_strategy)
    def test_all_classes_byte_identical(self, small_kb, setting, chunk_target):
        service = TaraService(small_kb)
        tighter = ParameterSetting(
            min(setting.min_support * 1.5, 1.0), setting.min_confidence
        )
        for query_class, query in class_queries(setting, tighter).items():
            answer = service.execute(query)
            chunks = list(
                encode_answer_bytes(
                    query_class, answer, chunk_target=chunk_target
                )
            )
            assert all(isinstance(chunk, bytes) for chunk in chunks)
            assert all(chunks), "no empty chunks"
            assert b"".join(chunks) == reference_bytes(query_class, answer)

    def test_blob_equals_joined_chunks(self, small_kb):
        service = TaraService(small_kb)
        setting = ParameterSetting(0.02, 0.1)
        for query_class, query in class_queries(
            setting, ParameterSetting(0.05, 0.1)
        ).items():
            answer = service.execute(query)
            assert encode_answer_blob(query_class, answer) == reference_bytes(
                query_class, answer
            )

    def test_small_target_chunks_large_answers(self, small_kb):
        service = TaraService(small_kb)
        query = TrajectoryQuery(
            setting=ParameterSetting(0.02, 0.1), anchor_window=0
        )
        answer = service.execute(query)
        chunks = list(encode_answer_bytes("Q1", answer, chunk_target=256))
        assert len(chunks) > 1
        # Fragments pack up to roughly the target; only a single row
        # fragment larger than the target may overshoot it.
        assert b"".join(chunks) == reference_bytes("Q1", answer)

    def test_empty_ruleset_still_encodes(self, small_kb):
        service = TaraService(small_kb)
        query = TrajectoryQuery(
            setting=ParameterSetting(0.99, 0.99), anchor_window=0
        )
        answer = service.execute(query)
        blob = encode_answer_blob("Q1", answer)
        assert blob == reference_bytes("Q1", answer)
        assert json.loads(blob) == {"trajectories": []}

    def test_unknown_class_rejected(self):
        with pytest.raises(ProtocolError, match="Q4"):
            list(encode_answer_bytes("Q4", object()))


class TestEnvelopePrefix:
    def test_prefix_matches_dict_envelope(self):
        prefix = envelope_prefix("Q1", 7, coalesced=True, cached=False)
        body = prefix + b'{"trajectories":[]}' + b"}"
        assert json.loads(body) == {
            "ok": True,
            "query_class": "Q1",
            "epoch": 7,
            "snapshot_epoch": 7,
            "coalesced": True,
            "cached": False,
            "answer": {"trajectories": []},
        }

    def test_dumps_bytes_is_compact(self):
        assert dumps_bytes({"a": [1, 2], "b": "x"}) == b'{"a":[1,2],"b":"x"}'
