"""End-to-end tests over a real socket: protocol, errors, metrics."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core import (
    CompareQuery,
    ContentQuery,
    ParameterSetting,
    RecommendQuery,
    RollupQuery,
    TrajectoryQuery,
)
from repro.data import PeriodSpec
from repro.serve import ServeClient
from repro.serve.httpd import read_response
from repro.serve.protocol import encode_answer
from repro.service import TaraService, canonicalize

SETTING = ParameterSetting(min_support=0.03, min_confidence=0.2)
TIGHTER = ParameterSetting(min_support=0.05, min_confidence=0.2)

SERVED_QUERIES = [
    TrajectoryQuery(setting=SETTING, anchor_window=0),
    CompareQuery(first=SETTING, second=TIGHTER),
    RecommendQuery(setting=SETTING),
    ContentQuery(setting=SETTING, items=(0, 1)),
    RollupQuery(setting=SETTING, spec=PeriodSpec([0, 1])),
]


@pytest.mark.parametrize(
    "query", SERVED_QUERIES, ids=lambda q: type(q).__name__
)
def test_served_answer_equals_direct_execution(
    query, small_kb, running_server
):
    async def scenario():
        service = TaraService(small_kb)
        async with running_server(service) as server:
            host, port = server.address
            client = await ServeClient.open(host, port)
            try:
                status, envelope = await client.execute(query)
            finally:
                await client.aclose()
        canonical = canonicalize(query, small_kb, small_kb.window_count)
        expected = encode_answer(
            canonical.query_class, service.uncached(query)
        )
        return status, envelope, canonical, expected

    status, envelope, canonical, expected = asyncio.run(scenario())
    assert status == 200
    assert envelope["ok"] is True
    assert envelope["query_class"] == canonical.query_class
    assert envelope["coalesced"] is False
    assert envelope["answer"] == expected


def test_keep_alive_serves_multiple_requests(small_kb, running_server):
    async def scenario():
        async with running_server(small_kb) as server:
            host, port = server.address
            client = await ServeClient.open(host, port)
            try:
                first = await client.execute(RecommendQuery(setting=SETTING))
                second = await client.execute(RecommendQuery(setting=SETTING))
                assert not client.closed  # same connection, both served
            finally:
                await client.aclose()
        return first, second

    (status_1, envelope_1), (status_2, envelope_2) = asyncio.run(scenario())
    assert status_1 == status_2 == 200
    assert envelope_1["answer"] == envelope_2["answer"]


class TestErrorEnvelopes:
    def test_malformed_json_is_400(self, small_kb, running_server):
        async def scenario():
            async with running_server(small_kb) as server:
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                body = b"{not json"
                writer.write(
                    b"POST /v1/query/recommend HTTP/1.1\r\n"
                    b"Content-Type: application/json\r\n"
                    b"Content-Length: " + str(len(body)).encode() + b"\r\n"
                    b"\r\n" + body
                )
                await writer.drain()
                status, _, raw = await read_response(reader)
                writer.close()
                await writer.wait_closed()
                return status, json.loads(raw)

        status, envelope = asyncio.run(scenario())
        assert status == 400
        assert envelope["ok"] is False
        assert envelope["error"]["code"] == "protocol"
        assert "JSON" in envelope["error"]["message"]

    def test_non_object_body_is_400(self, small_kb, running_server):
        async def scenario():
            async with running_server(small_kb) as server:
                host, port = server.address
                client = await ServeClient.open(host, port)
                try:
                    return await client.query("recommend", {"setting": None})
                finally:
                    await client.aclose()

        status, envelope = asyncio.run(scenario())
        assert status == 400
        assert envelope["ok"] is False
        assert envelope["error"]["code"] == "protocol"

    def test_unknown_field_is_400(self, small_kb, running_server):
        async def scenario():
            async with running_server(small_kb) as server:
                host, port = server.address
                client = await ServeClient.open(host, port)
                try:
                    return await client.query(
                        "recommend",
                        {
                            "setting": {"minsupp": 0.03, "minconf": 0.2},
                            "windw": 1,
                        },
                    )
                finally:
                    await client.aclose()

        status, envelope = asyncio.run(scenario())
        assert status == 400
        assert envelope["error"]["code"] == "protocol"
        assert "windw" in envelope["error"]["message"]

    def test_domain_error_is_400(self, small_kb, running_server):
        async def scenario():
            async with running_server(small_kb) as server:
                host, port = server.address
                client = await ServeClient.open(host, port)
                try:
                    return await client.execute(
                        RecommendQuery(setting=SETTING, window=99)
                    )
                finally:
                    await client.aclose()

        status, envelope = asyncio.run(scenario())
        assert status == 400
        assert envelope["ok"] is False
        assert envelope["error"]["code"] in ("query", "validation")

    def test_unknown_route_is_404(self, small_kb, running_server):
        async def scenario():
            async with running_server(small_kb) as server:
                host, port = server.address
                client = await ServeClient.open(host, port)
                try:
                    return await client.request("GET", "/nope")
                finally:
                    await client.aclose()

        status, envelope = asyncio.run(scenario())
        assert status == 404
        assert envelope["error"]["code"] == "route"

    def test_unknown_kind_is_404(self, small_kb, running_server):
        async def scenario():
            async with running_server(small_kb) as server:
                host, port = server.address
                client = await ServeClient.open(host, port)
                try:
                    return await client.query("trajectories", {})
                finally:
                    await client.aclose()

        status, envelope = asyncio.run(scenario())
        assert status == 404
        assert envelope["error"]["code"] == "route"

    def test_wrong_method_is_405(self, small_kb, running_server):
        async def scenario():
            async with running_server(small_kb) as server:
                host, port = server.address
                client = await ServeClient.open(host, port)
                try:
                    return await client.request("GET", "/v1/query/recommend")
                finally:
                    await client.aclose()

        status, envelope = asyncio.run(scenario())
        assert status == 405
        assert envelope["error"]["code"] == "method"

    def test_oversized_body_is_413_and_closes(self, small_kb, running_server):
        async def scenario():
            async with running_server(small_kb, max_body=64) as server:
                host, port = server.address
                client = await ServeClient.open(host, port)
                status, envelope = await client.query(
                    "content",
                    {
                        "setting": {"minsupp": 0.03, "minconf": 0.2},
                        "items": list(range(200)),
                    },
                )
                closed = client.closed  # server answered Connection: close
                await client.aclose()
                return status, envelope, closed

        status, envelope, closed = asyncio.run(scenario())
        assert status == 413
        assert envelope["error"]["code"] == "protocol"
        assert closed

    def test_garbage_request_line_is_400(self, small_kb, running_server):
        async def scenario():
            async with running_server(small_kb) as server:
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"NOT HTTP\r\n\r\n")
                await writer.drain()
                status, _, body = await read_response(reader)
                writer.close()
                await writer.wait_closed()
                return status, json.loads(body)

        status, envelope = asyncio.run(scenario())
        assert status == 400
        assert envelope["ok"] is False


class TestObservability:
    def test_healthz_reports_epoch_and_state(self, small_kb, running_server):
        async def scenario():
            async with running_server(small_kb) as server:
                host, port = server.address
                client = await ServeClient.open(host, port)
                try:
                    return await client.healthz()
                finally:
                    await client.aclose()

        status, payload = asyncio.run(scenario())
        assert status == 200
        assert payload["status"] == "serving"
        assert payload["epoch"] == small_kb.window_count
        assert payload["windows"] == small_kb.window_count

    def test_metrics_counts_requests(self, small_kb, running_server):
        async def scenario():
            async with running_server(small_kb) as server:
                host, port = server.address
                client = await ServeClient.open(host, port)
                try:
                    await client.execute(RecommendQuery(setting=SETTING))
                    await client.execute(RecommendQuery(setting=SETTING))
                    return await client.metrics()
                finally:
                    await client.aclose()

        status, payload = asyncio.run(scenario())
        assert status == 200
        metrics = payload["metrics"]
        endpoint = metrics["endpoints"]["query/recommend"]
        assert endpoint["requests"] == 2
        assert endpoint["statuses"] == {"2xx": 2}
        assert endpoint["latency"]["count"] == 2
        assert metrics["coalesce"]["executions"] >= 1
        assert metrics["requests"] == 2
        assert metrics["peak_in_flight"] >= 1
