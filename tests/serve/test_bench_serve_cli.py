"""``repro bench-serve --quick`` integration: artifact shape and gates."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


@pytest.fixture()
def tiny_retail(monkeypatch):
    """Shrink the retail workload so the quick matrix runs in seconds."""
    import repro.bench as bench
    import repro.bench.workloads as workloads

    monkeypatch.setitem(bench._WORKLOADS, "retail", (150, 3, 0.05, 0.30))
    # The queried setting must sit above the shrunk generation
    # thresholds (same trick as the bench-online CLI test).
    monkeypatch.setitem(workloads.ONLINE_SUPPORT_SWEEP, "retail", (0.06, 0.08))
    monkeypatch.setitem(workloads.ONLINE_FIXED_CONFIDENCE, "retail", 0.4)


def test_bench_serve_quick_writes_artifact(tmp_path, tiny_retail, capsys):
    out = tmp_path / "BENCH_serve.json"
    code = main(
        [
            "bench-serve",
            "--quick",
            "--requests", "8",
            "--concurrency", "2", "4",
            "--out", str(out),
        ]
    )
    assert code == 0
    payload = json.loads(out.read_text())
    assert payload["schema"] == "repro-bench-serve/2"
    assert payload["quick"] is True
    assert payload["concurrency"] == [2, 4]
    assert payload["gate"]["improvement_floor"] == 50
    assert payload["pool_size"] >= 1  # resolved from the 'auto' default

    results = payload["results"]
    # 4 query classes x 2 concurrency levels on the quick dataset.
    assert len(results) == 8
    assert {row["query_class"] for row in results} == {"Q1", "Q2", "Q3", "Q5"}
    assert {row["concurrency"] for row in results} == {2, 4}
    for row in results:
        assert row["dataset"] == "retail"
        assert row["verified"] is True
        assert row["requests"] == 8
        assert 0.0 < row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"]
        assert row["rps"] > 0.0
        assert row["warm_p50_ms"] > 0.0
        assert row["warm_identity_p50_ms"] > 0.0
        assert row["respcache_hits"] > 0
        assert 0.0 < row["respcache_hit_rate"] <= 1.0
        assert row["bytes_served"] > 0
        assert row["not_modified"] >= 1
        assert 0 < row["gzip_bytes"]
        assert 0 < row["body_bytes"]
    # The identical-request workload must have coalesced somewhere.
    assert sum(row["coalesce_hits"] for row in results) > 0

    captured = capsys.readouterr().out
    assert "wrote" in captured and "repro-bench-serve/2" in captured


def test_bench_serve_rejects_bad_concurrency(tiny_retail):
    code = main(
        ["bench-serve", "--quick", "--concurrency", "0", "--out", "-"]
    )
    assert code == 1  # ValidationError -> CLI error convention
