"""ASGI adapter tests: same gateway, same envelopes, no server needed.

The adapter is driven directly through hand-rolled ``receive``/``send``
callables (the ASGI 3 protocol is just two async functions), proving it
needs no third-party server to be exercised — and that its answers are
byte-identical to the asyncio front door's, since both delegate to the
same :class:`QueryGateway`.
"""

from __future__ import annotations

import asyncio
import json

from repro.core import ParameterSetting, RecommendQuery
from repro.serve import create_asgi_app
from repro.serve.protocol import encode_answer, encode_request
from repro.service import TaraService

SETTING = ParameterSetting(min_support=0.03, min_confidence=0.2)


async def _call(app, method, path, payload=None):
    """Drive one http-scope request through *app*; returns (status, body)."""
    body = b"" if payload is None else json.dumps(payload).encode("utf-8")
    received = [
        {"type": "http.request", "body": body, "more_body": False}
    ]
    sent = []

    async def receive():
        return received.pop(0)

    async def send(message):
        sent.append(message)

    await app({"type": "http", "method": method, "path": path}, receive, send)
    start = next(m for m in sent if m["type"] == "http.response.start")
    chunks = b"".join(
        m.get("body", b"") for m in sent if m["type"] == "http.response.body"
    )
    return start["status"], json.loads(chunks)


def test_asgi_query_matches_direct_execution(small_kb):
    async def scenario():
        service = TaraService(small_kb)
        app = create_asgi_app(service)
        query = RecommendQuery(setting=SETTING)
        kind, payload = encode_request(query)
        status, envelope = await _call(app, "POST", f"/v1/query/{kind}", payload)
        app.gateway.aclose()
        expected = encode_answer("Q3", service.uncached(query))
        return status, envelope, expected

    status, envelope, expected = asyncio.run(scenario())
    assert status == 200
    assert envelope["ok"] is True
    assert envelope["answer"] == expected


def test_asgi_routes_and_errors(small_kb):
    async def scenario():
        app = create_asgi_app(TaraService(small_kb))
        health = await _call(app, "GET", "/healthz")
        missing = await _call(app, "GET", "/nope")
        bad = await _call(
            app, "POST", "/v1/query/recommend", {"bogus": True}
        )
        app.gateway.aclose()
        return health, missing, bad

    health, missing, bad = asyncio.run(scenario())
    assert health[0] == 200 and health[1]["status"] == "serving"
    assert missing[0] == 404
    assert bad[0] == 400 and bad[1]["error"]["code"] == "protocol"


def test_asgi_lifespan_drains_gateway(small_kb):
    async def scenario():
        app = create_asgi_app(TaraService(small_kb))
        messages = [
            {"type": "lifespan.startup"},
            {"type": "lifespan.shutdown"},
        ]
        sent = []

        async def receive():
            return messages.pop(0)

        async def send(message):
            sent.append(message)

        await app({"type": "lifespan"}, receive, send)
        return app, sent

    app, sent = asyncio.run(scenario())
    assert [m["type"] for m in sent] == [
        "lifespan.startup.complete",
        "lifespan.shutdown.complete",
    ]
    assert app.gateway.draining
