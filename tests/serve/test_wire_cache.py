"""End-to-end wire-hot path: chunking, gzip, ETags, the byte cache.

Everything here talks to a real :class:`TaraServer` over a real socket
through :class:`ServeClient` — chunked reassembly, content negotiation,
and conditional requests are exercised exactly as an external client
would see them.
"""

from __future__ import annotations

import asyncio
import gzip
import json

import pytest

from repro.common.errors import ValidationError
from repro.core import ParameterSetting, TrajectoryQuery
from repro.serve import auto_pool_size, resolve_pool_size
from repro.serve.client import ServeClient
from repro.serve.protocol import encode_request

SETTING = ParameterSetting(min_support=0.02, min_confidence=0.1)
QUERY = TrajectoryQuery(setting=SETTING, anchor_window=0)


def wire(query):
    kind, payload = encode_request(query)
    return f"/v1/query/{kind}", payload


async def connect(server):
    host, port = server.address
    return await ServeClient.open(host, port)


class TestChunkedStreaming:
    def test_large_body_streams_and_reassembles(
        self, small_kb, running_server, monkeypatch
    ):
        # Force streaming for any realistic body size, then check the
        # reassembled bytes are exactly the non-streamed ones.
        import repro.serve.gateway as gateway

        target, payload = wire(QUERY)

        async def scenario():
            async with running_server(small_kb) as server:
                client = await connect(server)
                monkeypatch.setattr(gateway, "STREAM_THRESHOLD", 256)
                status, headers, chunked_body = await client.exchange(
                    "POST", target, payload
                )
                assert status == 200
                assert headers.get("transfer-encoding") == "chunked"
                assert "content-length" not in headers
                monkeypatch.setattr(gateway, "STREAM_THRESHOLD", 1 << 30)
                status, headers, plain_body = await client.exchange(
                    "POST", target, payload
                )
                assert status == 200
                assert "transfer-encoding" not in headers
                assert int(headers["content-length"]) == len(plain_body)
                await client.aclose()
                return chunked_body, plain_body

        chunked_body, plain_body = asyncio.run(scenario())
        first = json.loads(chunked_body)
        second = json.loads(plain_body)
        assert first["answer"] == second["answer"]
        # Chunked transfer framing must be invisible to the payload:
        # same bytes after the envelope's per-request cached flag.
        assert chunked_body.split(b'"answer":', 1)[1] == plain_body.split(
            b'"answer":', 1
        )[1]


class TestResponseCacheOnTheWire:
    def test_second_request_is_served_from_cache(
        self, small_kb, running_server
    ):
        target, payload = wire(QUERY)

        async def scenario():
            async with running_server(small_kb) as server:
                client = await connect(server)
                _, _, first = await client.exchange("POST", target, payload)
                _, _, second = await client.exchange("POST", target, payload)
                _, metrics = await client.metrics()
                await client.aclose()
                return first, second, metrics

        first, second, metrics = asyncio.run(scenario())
        assert json.loads(first)["cached"] is False
        assert json.loads(second)["cached"] is True
        assert json.loads(first)["answer"] == json.loads(second)["answer"]
        respcache = metrics["metrics"]["respcache"]
        assert respcache["hits"] == 1
        assert respcache["misses"] == 1
        assert respcache["stores"] == 1
        assert respcache["bytes_served"] > 0

    def test_tiny_budget_rejects_and_reencodes(
        self, small_kb, running_server
    ):
        target, payload = wire(QUERY)

        async def scenario():
            async with running_server(
                small_kb, response_cache_bytes=128
            ) as server:
                client = await connect(server)
                _, _, first = await client.exchange("POST", target, payload)
                _, _, second = await client.exchange("POST", target, payload)
                _, metrics = await client.metrics()
                await client.aclose()
                return first, second, metrics

        first, second, metrics = asyncio.run(scenario())
        # The body never fits, so nothing is ever served from cache …
        assert json.loads(second)["cached"] is False
        respcache = metrics["metrics"]["respcache"]
        assert respcache["rejected"] >= 1
        assert respcache["hits"] == 0
        # … but the answers are still correct.
        assert json.loads(first)["answer"] == json.loads(second)["answer"]


class TestGzipNegotiation:
    def test_round_trip_and_cached_variant(self, small_kb, running_server):
        target, payload = wire(QUERY)

        async def scenario():
            async with running_server(small_kb) as server:
                client = await connect(server)
                # Cold miss: identity even though the client accepts gzip.
                _, cold_headers, cold = await client.exchange(
                    "POST", target, payload, accept_gzip=True
                )
                # Warm hit: compressed variant, created once.
                _, warm_headers, warm_raw = await client.exchange(
                    "POST", target, payload, accept_gzip=True,
                    decompress=False,
                )
                _, _, repeat_raw = await client.exchange(
                    "POST", target, payload, accept_gzip=True,
                    decompress=False,
                )
                _, metrics = await client.metrics()
                await client.aclose()
                return cold_headers, cold, warm_headers, warm_raw, \
                    repeat_raw, metrics

        cold_headers, cold, warm_headers, warm_raw, repeat_raw, metrics = (
            asyncio.run(scenario())
        )
        assert "content-encoding" not in cold_headers
        assert warm_headers.get("content-encoding") == "gzip"
        assert warm_headers.get("vary") == "Accept-Encoding"
        warm = json.loads(gzip.decompress(warm_raw))
        assert warm["cached"] is True
        assert warm["answer"] == json.loads(cold)["answer"]
        # Deterministic compression: the repeat body is byte-identical,
        # and the variant was compressed exactly once.
        assert repeat_raw == warm_raw
        assert metrics["metrics"]["respcache"]["gzip_variants"] == 1

    def test_gzip_not_served_when_not_accepted(
        self, small_kb, running_server
    ):
        target, payload = wire(QUERY)

        async def scenario():
            async with running_server(small_kb) as server:
                client = await connect(server)
                await client.exchange(
                    "POST", target, payload, accept_gzip=True
                )
                await client.exchange(
                    "POST", target, payload, accept_gzip=True
                )  # creates the variant
                _, headers, body = await client.exchange(
                    "POST", target, payload
                )
                await client.aclose()
                return headers, body

        headers, body = asyncio.run(scenario())
        assert "content-encoding" not in headers
        assert json.loads(body)["cached"] is True


class TestConditionalRequests:
    def test_etag_round_trip_yields_304(self, small_kb, running_server):
        target, payload = wire(QUERY)

        async def scenario():
            async with running_server(small_kb) as server:
                client = await connect(server)
                _, headers, _ = await client.exchange(
                    "POST", target, payload
                )
                etag = headers["etag"]
                status, cond_headers, body = await client.exchange(
                    "POST", target, payload, if_none_match=etag
                )
                status_star, _, _ = await client.exchange(
                    "POST", target, payload, if_none_match='"nope", *'
                )
                _, metrics = await client.metrics()
                await client.aclose()
                return etag, status, cond_headers, body, status_star, metrics

        etag, status, cond_headers, body, status_star, metrics = asyncio.run(
            scenario()
        )
        assert etag.startswith('W/"')
        assert status == 304 and body == b""
        assert cond_headers.get("etag") == etag
        assert status_star == 304  # '*' matches any representation
        assert metrics["metrics"]["respcache"]["not_modified"] == 2

    def test_stale_etag_gets_full_answer(self, small_kb, running_server):
        target, payload = wire(QUERY)

        async def scenario():
            async with running_server(small_kb) as server:
                client = await connect(server)
                await client.exchange("POST", target, payload)
                status, _, body = await client.exchange(
                    "POST", target, payload, if_none_match='W/"deadbeef"'
                )
                await client.aclose()
                return status, body

        status, body = asyncio.run(scenario())
        assert status == 200
        assert json.loads(body)["ok"] is True


class TestPoolSizing:
    def test_auto_resolves_to_cpu_count(self):
        assert resolve_pool_size("auto") == auto_pool_size()
        assert auto_pool_size() >= 1

    def test_explicit_counts_pass_through(self):
        assert resolve_pool_size(3) == 3
        assert resolve_pool_size("5") == 5

    @pytest.mark.parametrize("bad", ["0", "-2", "many", "", "1.5"])
    def test_invalid_sizes_rejected(self, bad):
        with pytest.raises(ValidationError, match="pool"):
            resolve_pool_size(bad)
