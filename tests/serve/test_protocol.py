"""Wire-protocol tests: round-trips, strictness, answer determinism."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.common.errors import ProtocolError
from repro.core import (
    CompareQuery,
    ContentQuery,
    MatchMode,
    ParameterSetting,
    RecommendQuery,
    RollupQuery,
    TrajectoryQuery,
)
from repro.data import PeriodSpec
from repro.serve.protocol import (
    QUERY_KINDS,
    decode_request,
    encode_answer,
    encode_request,
)
from repro.service import TaraService, canonicalize

SETTING = ParameterSetting(min_support=0.03, min_confidence=0.2)
TIGHTER = ParameterSetting(min_support=0.05, min_confidence=0.2)

#: One request per endpoint kind, defaults and explicit windows mixed.
ROUND_TRIP_QUERIES = [
    TrajectoryQuery(setting=SETTING, anchor_window=1),
    TrajectoryQuery(setting=SETTING, anchor_window=0, spec=PeriodSpec([0, 2])),
    CompareQuery(first=SETTING, second=TIGHTER),
    CompareQuery(
        first=SETTING,
        second=TIGHTER,
        spec=PeriodSpec([1, 3]),
        mode=MatchMode.EXACT,
    ),
    RecommendQuery(setting=SETTING),
    RecommendQuery(setting=SETTING, window=2),
    ContentQuery(setting=SETTING, items=(3, 1, 7)),
    ContentQuery(setting=SETTING, items=(2,), spec=PeriodSpec([0, 1])),
    RollupQuery(setting=SETTING, spec=PeriodSpec([0, 1, 2])),
]


class TestRequestRoundTrip:
    @pytest.mark.parametrize(
        "query", ROUND_TRIP_QUERIES, ids=lambda q: type(q).__name__
    )
    def test_decode_inverts_encode(self, query):
        kind, payload = encode_request(query)
        assert kind in QUERY_KINDS
        assert decode_request(kind, payload) == query

    @pytest.mark.parametrize(
        "query", ROUND_TRIP_QUERIES, ids=lambda q: type(q).__name__
    )
    def test_round_trip_preserves_canonical_key(self, query, small_kb):
        kind, payload = encode_request(query)
        decoded = decode_request(kind, payload)
        epoch = small_kb.window_count
        original = canonicalize(query, small_kb, epoch)
        again = canonicalize(decoded, small_kb, epoch)
        assert again.key == original.key
        assert again.query_class == original.query_class


class TestStrictDecoding:
    def test_unknown_field_rejected(self):
        payload = {
            "setting": {"minsupp": 0.03, "minconf": 0.2},
            "anchor_window": 0,
            "ancor_window": 1,  # typo must not be silently ignored
        }
        with pytest.raises(ProtocolError, match="ancor_window"):
            decode_request("trajectory", payload)

    def test_unknown_setting_field_rejected(self):
        payload = {
            "setting": {"minsupp": 0.03, "minconf": 0.2, "minsup": 0.1},
            "anchor_window": 0,
        }
        with pytest.raises(ProtocolError, match="minsup"):
            decode_request("trajectory", payload)

    def test_missing_required_field(self):
        with pytest.raises(ProtocolError, match="anchor_window"):
            decode_request(
                "trajectory", {"setting": {"minsupp": 0.03, "minconf": 0.2}}
            )

    def test_non_object_body(self):
        with pytest.raises(ProtocolError, match="object"):
            decode_request("recommend", [1, 2, 3])

    def test_boolean_is_not_a_number(self):
        with pytest.raises(ProtocolError, match="number"):
            decode_request(
                "recommend", {"setting": {"minsupp": True, "minconf": 0.2}}
            )

    def test_non_integer_window(self):
        payload = {
            "setting": {"minsupp": 0.03, "minconf": 0.2},
            "anchor_window": 0,
            "windows": [0, 1.5],
        }
        with pytest.raises(ProtocolError, match="integer"):
            decode_request("trajectory", payload)

    def test_empty_windows_rejected(self):
        payload = {
            "setting": {"minsupp": 0.03, "minconf": 0.2},
            "anchor_window": 0,
            "windows": [],
        }
        with pytest.raises(ProtocolError, match="non-empty"):
            decode_request("trajectory", payload)

    def test_unknown_kind(self):
        with pytest.raises(ProtocolError, match="unknown query kind"):
            decode_request("trajectories", {})

    def test_bad_compare_mode(self):
        payload = {
            "first": {"minsupp": 0.03, "minconf": 0.2},
            "second": {"minsupp": 0.05, "minconf": 0.2},
            "mode": "both",
        }
        with pytest.raises(ProtocolError, match="mode"):
            decode_request("compare", payload)


class TestAnswerEncoding:
    def test_encoding_is_deterministic(self, small_kb):
        service = TaraService(small_kb)
        query = TrajectoryQuery(setting=SETTING, anchor_window=0)
        first = encode_answer("Q1", service.execute(query))
        second = encode_answer("Q1", service.execute(query))
        assert first == second

    def test_recommendation_carries_exact_fractions(self, small_kb):
        service = TaraService(small_kb)
        answer = service.execute(RecommendQuery(setting=SETTING))
        payload = encode_answer("Q3", answer)
        region = payload["region"]
        numerator, denominator = map(
            int, region["support_floor_exact"].split("/")
        )
        exact = Fraction(numerator, denominator)
        assert exact == answer.region.support_floor
        assert region["support_floor"] == float(exact)

    def test_every_class_encodes(self, small_kb):
        service = TaraService(small_kb)
        queries = {
            "Q1": TrajectoryQuery(setting=SETTING, anchor_window=0),
            "Q2": CompareQuery(first=SETTING, second=TIGHTER),
            "Q3": RecommendQuery(setting=SETTING),
            "Q5": ContentQuery(setting=SETTING, items=(0, 1)),
            "rollup": RollupQuery(setting=SETTING, spec=PeriodSpec([0, 1])),
        }
        for query_class, query in queries.items():
            payload = encode_answer(query_class, service.execute(query))
            assert isinstance(payload, dict) and payload

    def test_unknown_class_rejected(self):
        with pytest.raises(ProtocolError, match="Q4"):
            encode_answer("Q4", object())
