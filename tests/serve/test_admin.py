"""The writer path (`POST /v1/admin/append`) and snapshot introspection.

End-to-end over real sockets: a client publishes window batches into a
running server while other clients read, and the snapshot route exposes
the publisher's state.  The 409 writer-conflict path is made
deterministic by holding the publisher's build flag open from the test.
"""

from __future__ import annotations

import asyncio

from repro.core import (
    GenerationConfig,
    IncrementalTara,
    ParameterSetting,
    TrajectoryQuery,
)
from repro.serve import ServeClient
from repro.service import TaraService

CONFIG = GenerationConfig(0.02, 0.1)
SETTING = ParameterSetting(min_support=0.03, min_confidence=0.2)


def _publisher(small_windows, count=2) -> IncrementalTara:
    incremental = IncrementalTara(CONFIG)
    incremental.publish([small_windows.window(i) for i in range(count)])
    return incremental


class TestAppendRoute:
    def test_append_publishes_and_answers_from_the_new_snapshot(
        self, small_windows, running_server
    ):
        async def scenario():
            incremental = _publisher(small_windows)
            async with running_server(TaraService(incremental)) as server:
                host, port = server.address
                client = await ServeClient.open(host, port)
                before_status, before = await client.snapshot()
                status, envelope = await client.admin_append(
                    [small_windows.window(2)]
                )
                after_status, after = await client.snapshot()
                query_status, answer = await client.execute(
                    TrajectoryQuery(setting=SETTING, anchor_window=0)
                )
                await client.aclose()
            return (
                before_status, before, status, envelope,
                after_status, after, query_status, answer,
            )

        (
            before_status, before, status, envelope,
            after_status, after, query_status, answer,
        ) = asyncio.run(scenario())
        assert before_status == 200
        assert before["snapshot"]["windows"] == 2
        assert before["snapshot"]["building"] is False
        assert status == 200
        assert envelope["ok"] is True
        assert envelope["snapshot_epoch"] == 3
        assert envelope["windows"] == 3
        assert envelope["windows_added"] == 1
        assert after_status == 200
        assert after["snapshot"]["windows"] == 3
        assert after["snapshot"]["retired_snapshots"] >= 1
        assert query_status == 200
        # The read after the append answers from the new snapshot.
        assert answer["snapshot_epoch"] == 3
        assert {len(t["measures"]) for t in answer["answer"]["trajectories"]} == {3}

    def test_append_while_building_is_409(self, small_windows, running_server):
        async def scenario():
            incremental = _publisher(small_windows)
            async with running_server(
                TaraService(incremental), pool_size=2
            ) as server:
                host, port = server.address
                client = await ServeClient.open(host, port)
                # Deterministic conflict: claim the writer slot directly,
                # as a concurrent in-flight build would.
                with incremental._lock:
                    incremental._building = True
                try:
                    status, envelope = await client.admin_append(
                        [small_windows.window(2)]
                    )
                finally:
                    with incremental._lock:
                        incremental._building = False
                retry_status, retry = await client.admin_append(
                    [small_windows.window(2)]
                )
                await client.aclose()
            return status, envelope, retry_status, retry

        status, envelope, retry_status, retry = asyncio.run(scenario())
        assert status == 409
        assert envelope["ok"] is False
        assert envelope["error"]["code"] == "building"
        # The canonical client reaction — retry once the build lands.
        assert retry_status == 200
        assert retry["windows"] == 3

    def test_malformed_batches_are_400(self, small_windows, running_server):
        async def scenario():
            incremental = _publisher(small_windows)
            async with running_server(TaraService(incremental)) as server:
                host, port = server.address
                client = await ServeClient.open(host, port)
                results = [
                    await client.request("POST", "/v1/admin/append", body)
                    for body in (
                        {"batches": []},
                        {"batches": [[{"items": [], "time": 0}]]},
                        {"batches": [[{"items": [1], "time": 0, "extra": 1}]]},
                        {"windows": [[]]},
                    )
                ]
                await client.aclose()
            return results

        for status, envelope in asyncio.run(scenario()):
            assert status == 400
            assert envelope["ok"] is False
            assert envelope["error"]["code"] == "protocol"

    def test_static_source_rejects_appends(self, small_kb, running_server):
        async def scenario():
            async with running_server(small_kb) as server:
                host, port = server.address
                client = await ServeClient.open(host, port)
                status, envelope = await client.request(
                    "POST",
                    "/v1/admin/append",
                    {"batches": [[{"items": [1], "time": 0}]]},
                )
                await client.aclose()
            return status, envelope

        status, envelope = asyncio.run(scenario())
        assert status == 400
        assert envelope["error"]["code"] == "validation"
        assert "static" in envelope["error"]["message"]

    def test_draining_server_rejects_appends(
        self, small_windows, running_server
    ):
        async def scenario():
            incremental = _publisher(small_windows)
            async with running_server(TaraService(incremental)) as server:
                host, port = server.address
                client = await ServeClient.open(host, port)
                server.gateway.begin_drain()
                status, envelope = await client.admin_append(
                    [small_windows.window(2)]
                )
                await client.aclose()
            return status, envelope

        status, envelope = asyncio.run(scenario())
        assert status == 503
        assert envelope["error"]["code"] == "draining"

    def test_wrong_methods_are_405(self, small_kb, running_server):
        async def scenario():
            async with running_server(small_kb) as server:
                host, port = server.address
                client = await ServeClient.open(host, port)
                get_append = await client.request("GET", "/v1/admin/append")
                post_snapshot = await client.request(
                    "POST", "/v1/snapshot", {}
                )
                await client.aclose()
            return get_append, post_snapshot

        get_append, post_snapshot = asyncio.run(scenario())
        assert get_append[0] == 405
        assert post_snapshot[0] == 405


class TestSnapshotRoute:
    def test_static_source_reports_one_standing_snapshot(
        self, small_kb, running_server
    ):
        async def scenario():
            async with running_server(small_kb) as server:
                host, port = server.address
                client = await ServeClient.open(host, port)
                status, envelope = await client.snapshot()
                await client.aclose()
            return status, envelope

        status, envelope = asyncio.run(scenario())
        assert status == 200
        snapshot = envelope["snapshot"]
        assert snapshot["windows"] == small_kb.window_count
        assert snapshot["building"] is False
        assert snapshot["retired_snapshots"] == 0
        assert snapshot["refs"] >= 1
