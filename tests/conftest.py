"""Shared fixtures: small deterministic datasets used across the suite."""

from __future__ import annotations

import random

import pytest

from repro.common.deprecation import reset_deprecation_registry
from repro.core import GenerationConfig, build_knowledge_base
from repro.data import TransactionDatabase, WindowedDatabase
from repro.maras import Report, ReportDatabase


@pytest.fixture(autouse=True)
def _fresh_deprecation_registry():
    """Each test sees the once-per-process warning registry empty.

    The shims warn once per process; without the reset, whichever test
    touched a legacy surface first would swallow the warning every
    other test asserts on.
    """
    reset_deprecation_registry()
    yield


def random_itemlists(seed: int, count: int, item_count: int, max_len: int):
    """Deterministic random transactions (raw item lists)."""
    rng = random.Random(seed)
    return [
        sorted({rng.randrange(item_count) for _ in range(rng.randint(1, max_len))})
        for _ in range(count)
    ]


@pytest.fixture(scope="session")
def tiny_db() -> TransactionDatabase:
    """The paper's Table 1 example data, reverse-engineered.

    Two windows of 11 and 9 transactions over items a=0, b=1, c=2 whose
    per-window supports match the pregenerated example: in T1,
    supp(a)=0.36..., supp(ab)=0.18..., etc.  (11 and 9 transactions give
    4/11 ≈ 0.36, 2/11 ≈ 0.18, 4/9 ≈ 0.44, 3/9 ≈ 0.33, 1/9 ≈ 0.11.)
    """
    a, b, c = 0, 1, 2
    window_1 = [
        [a, b],
        [a, b],  # ab twice -> supp 2/11 = 0.18
        [a, c],
        [a, c],  # ac twice, a total 4 -> 4/11 = 0.36
        [b, c],  # bc once -> 1/11 = 0.09
        [b],
        [b],  # b total 5 -> 0.45
        [c],  # c total 4 -> 0.36
        [3],
        [3],
        [3],
    ]
    window_2 = [
        [a, c],
        [a, c],
        [a, c],  # ac 3/9 = 0.33
        [a, b],  # ab 1/9 = 0.11, a total 4/9 = 0.44
        [b, c],  # bc 1/9 = 0.11, b total 2/9 = 0.22, c total 4/9 = 0.44
        [3],
        [3],
        [3],
        [3],
    ]
    itemlists = window_1 + window_2
    return TransactionDatabase.from_itemlists(itemlists)


@pytest.fixture(scope="session")
def tiny_windows(tiny_db) -> WindowedDatabase:
    """The Table 1 data split into its two windows (11 + 9 by count split
    would be uneven; use explicit time partitioning)."""
    # Window width 11 puts transactions 0..10 in window 0, 11..19 in 1.
    return WindowedDatabase.partition_by_time(tiny_db, window_width=11)


@pytest.fixture(scope="session")
def small_windows() -> WindowedDatabase:
    """4 windows x 250 random transactions over 15 items (mid-size)."""
    itemlists = random_itemlists(seed=101, count=1000, item_count=15, max_len=6)
    db = TransactionDatabase.from_itemlists(itemlists)
    return WindowedDatabase.partition_by_count(db, 4)


@pytest.fixture(scope="session")
def small_kb(small_windows):
    """Knowledge base over ``small_windows`` with the TARA-S item index."""
    config = GenerationConfig(
        min_support=0.02, min_confidence=0.1, build_item_index=True
    )
    return build_knowledge_base(small_windows, config)


@pytest.fixture(scope="session")
def toy_reports() -> ReportDatabase:
    """The paper's Section 2.3.2 example reports plus background noise.

    Report t_i = {d1,d2,d3} + {a1,a2}, t_j = {d1,d2,d4} + {a1,a2}; the
    association (d1,d2) => (a1,a2) is *implicitly* supported by their
    intersection.  Extra reports give the single drugs background
    exposure so confidences are non-trivial.
    """
    d1, d2, d3, d4 = 0, 1, 2, 3
    a1, a2, a3 = 0, 1, 2
    reports = [
        Report.create([d1, d2, d3], [a1, a2], 0),
        Report.create([d1, d2, d4], [a1, a2], 1),
        Report.create([d1], [a3], 2),
        Report.create([d2], [a3], 3),
        Report.create([d3], [a3], 4),
        Report.create([d4], [a3], 5),
        Report.create([d1], [a3], 6),
    ]
    return ReportDatabase(reports)
