"""Shared protocol of the state-of-the-art competitor systems.

The paper compares TARA against DCTAR, H-Mine and PARAS on the same
online operations.  To make rulesets comparable *across* systems —
including TARA, whose rules live in a catalog — baselines key rules by
``(antecedent, consequent)`` tuples and report each rule together with
the (support, confidence) it measured.

The generic implementations of trajectory (Q1) and comparison (Q2)
queries live here; each system only supplies its own strategy for
(a) producing the ruleset of a setting in one window and (b) measuring
given rules' parameter values in a window.  That mirrors the paper's
experimental setup, where the competitors answer Q1/Q2 through their
rule-derivation machinery ("we implement a subroutine in their rule
derivation module", Section 2.5.4).
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.common.errors import QueryError
from repro.core.queries import MatchMode
from repro.core.regions import ParameterSetting
from repro.data.items import Itemset
from repro.data.periods import PeriodSpec
from repro.data.transactions import Transaction
from repro.data.windows import WindowedDatabase
from repro.mining.rules import Rule

RuleKey = Tuple[Itemset, Itemset]
Measures = Tuple[float, float]  # (support, confidence)


def rule_key(rule: Rule) -> RuleKey:
    """The cross-system identity of a rule."""
    return (rule.antecedent, rule.consequent)


def count_rule_measures(
    transactions: Sequence[Transaction], rules: Iterable[RuleKey]
) -> Dict[RuleKey, Optional[Measures]]:
    """Measure rules by direct counting over raw transactions.

    This is the from-scratch fallback used by DCTAR (always) and PARAS
    (for windows other than the latest): one pass per window counting
    each rule's full itemset and antecedent.
    """
    rules = list(rules)
    n = len(transactions)
    itemset_counts = [0] * len(rules)
    antecedent_counts = [0] * len(rules)
    wanted = [(set(a) | set(c), set(a)) for a, c in rules]
    for transaction in transactions:
        present = set(transaction.items)
        for index, (full, antecedent) in enumerate(wanted):
            if antecedent.issubset(present):
                antecedent_counts[index] += 1
                if full.issubset(present):
                    itemset_counts[index] += 1
    result: Dict[RuleKey, Optional[Measures]] = {}
    for index, key in enumerate(rules):
        if n == 0 or antecedent_counts[index] == 0 or itemset_counts[index] == 0:
            result[key] = None
        else:
            result[key] = (
                itemset_counts[index] / n,
                itemset_counts[index] / antecedent_counts[index],
            )
    return result


class BaselineSystem(abc.ABC):
    """A competitor system bound to one windowed database."""

    #: Human-readable system name used in benchmark output.
    name: str = "baseline"

    def __init__(self, windows: WindowedDatabase) -> None:
        self.windows = windows

    # ------------------------------------------------------------------
    # offline phase
    # ------------------------------------------------------------------
    def preprocess(self) -> None:
        """Run the system's offline phase (no-op for DCTAR)."""

    # ------------------------------------------------------------------
    # system-specific primitives
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def ruleset(
        self, setting: ParameterSetting, window: int
    ) -> Dict[RuleKey, Measures]:
        """Rules valid at *setting* in *window*, with their measures."""

    @abc.abstractmethod
    def rule_measures(
        self, rules: Iterable[RuleKey], window: int
    ) -> Dict[RuleKey, Optional[Measures]]:
        """Parameter values of the given rules in *window* (None = absent)."""

    # ------------------------------------------------------------------
    # generic online operations (Q1 / Q2)
    # ------------------------------------------------------------------
    def trajectory(
        self,
        setting: ParameterSetting,
        anchor_window: int,
        spec: PeriodSpec,
    ) -> Dict[RuleKey, Dict[int, Optional[Measures]]]:
        """Q1: rules matching in the anchor window, measured across *spec*."""
        anchor = self.ruleset(setting, anchor_window)
        keys = list(anchor)
        result: Dict[RuleKey, Dict[int, Optional[Measures]]] = {
            key: {} for key in keys
        }
        for window in spec:
            if window == anchor_window:
                for key in keys:
                    result[key][window] = anchor[key]
                continue
            measured = self.rule_measures(keys, window)
            for key in keys:
                result[key][window] = measured[key]
        return result

    def compare(
        self,
        first: ParameterSetting,
        second: ParameterSetting,
        spec: PeriodSpec,
        mode: MatchMode = MatchMode.SINGLE,
    ) -> Tuple[Set[RuleKey], Set[RuleKey]]:
        """Q2: rules on which the two settings disagree, per *mode*.

        Returns ``(only_first, only_second)`` aggregated over *spec*.
        The implementation avoids generating the overlapping ruleset
        twice per window by deriving at the looser of the two settings
        and splitting by thresholds — the "optimized subroutine" the
        paper adds to the competitors.
        """
        loose = ParameterSetting(
            min(first.min_support, second.min_support),
            min(first.min_confidence, second.min_confidence),
        )
        first_votes: Dict[RuleKey, int] = {}
        second_votes: Dict[RuleKey, int] = {}
        for window in spec:
            union_rules = self.ruleset(loose, window)
            for key, (support, confidence) in union_rules.items():
                in_first = (
                    support >= first.min_support
                    and confidence >= first.min_confidence
                )
                in_second = (
                    support >= second.min_support
                    and confidence >= second.min_confidence
                )
                if in_first and not in_second:
                    first_votes[key] = first_votes.get(key, 0) + 1
                elif in_second and not in_first:
                    second_votes[key] = second_votes.get(key, 0) + 1
        needed = len(spec) if mode is MatchMode.EXACT else 1
        only_first = {key for key, votes in first_votes.items() if votes >= needed}
        only_second = {key for key, votes in second_votes.items() if votes >= needed}
        return only_first, only_second

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _check_window(self, window: int) -> None:
        if not 0 <= window < self.windows.window_count:
            raise QueryError(
                f"window {window} out of range "
                f"[0, {self.windows.window_count})"
            )


def ruleset_keys(rules: Dict[RuleKey, Measures]) -> List[RuleKey]:
    """Sorted rule keys of a ruleset answer (stable comparison order)."""
    return sorted(rules)
