"""DCTAR baseline: direct computation of temporal association rules.

The paper's weakest competitor "derives the ruleset directly from the
raw data given a parameter configuration.  It computes the associations
from scratch whenever a new batch of data arrives" — i.e. every online
request is a full mining run over the requested window's transactions,
and trajectory requests re-scan the raw transactions of every other
requested window.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.baselines.base import (
    BaselineSystem,
    Measures,
    RuleKey,
    count_rule_measures,
    rule_key,
)
from repro.core.regions import ParameterSetting
from repro.mining.apriori import mine_apriori
from repro.mining.rules import derive_rules


class Dctar(BaselineSystem):
    """From-scratch miner: no offline phase, no reuse between requests."""

    name = "DCTAR"

    def ruleset(
        self, setting: ParameterSetting, window: int
    ) -> Dict[RuleKey, Measures]:
        """Mine the window's raw transactions at the query thresholds."""
        self._check_window(window)
        transactions = self.windows.window(window)
        itemsets = mine_apriori(transactions, setting.min_support)
        scored = derive_rules(itemsets, setting.min_confidence)
        return {
            rule_key(s.rule): (s.support, s.confidence)
            for s in scored
            if s.support >= setting.min_support
        }

    def rule_measures(
        self, rules: Iterable[RuleKey], window: int
    ) -> Dict[RuleKey, Optional[Measures]]:
        """Measure by re-scanning the window's raw transactions."""
        self._check_window(window)
        return count_rule_measures(self.windows.window(window), rules)
