"""H-Mine baseline: pregenerated itemsets, query-time rule derivation.

The paper's strongest competitor "pregenerates the intermediate frequent
item sets offline.  For specific parameter settings, the algorithm
utilizes the itemsets to generate the associations online instead of
extracting them from the raw data."  The final rule derivation — and any
measure evaluation — therefore remains a query-time task, which is
exactly the cost gap TARA's pregenerated rules close.

The offline phase is timed per window with the same
:class:`~repro.common.timing.PhaseTimer` task name the TARA builder uses
for itemset generation, so the Figure 9 comparison lines up.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.baselines.base import BaselineSystem, Measures, RuleKey, rule_key
from repro.common.errors import NotBuiltError, QueryError
from repro.common.timing import PhaseTimer
from repro.core.builder import PHASE_ITEMSETS
from repro.core.regions import ParameterSetting
from repro.data.items import Itemset
from repro.data.windows import WindowedDatabase
from repro.mining.hmine import mine_hmine
from repro.mining.itemsets import FrequentItemsets, min_count_for
from repro.mining.rules import derive_rules


class HMineOnline(BaselineSystem):
    """Per-window frequent-itemset store with online rule derivation."""

    name = "H-Mine"

    def __init__(
        self, windows: WindowedDatabase, generation_support: float
    ) -> None:
        super().__init__(windows)
        self.generation_support = generation_support
        self._itemsets: List[FrequentItemsets] = []
        self.timer = PhaseTimer()

    # ------------------------------------------------------------------
    # offline phase
    # ------------------------------------------------------------------
    def preprocess(self) -> None:
        """Mine and store every window's frequent itemsets (H-Mine miner)."""
        self._itemsets = []
        for index in range(self.windows.window_count):
            with self.timer.phase(PHASE_ITEMSETS):
                mined = mine_hmine(
                    self.windows.window(index), self.generation_support
                )
            self._itemsets.append(mined)

    def index_entry_count(self) -> int:
        """Stored itemset entries across windows (Figure 12's H-Mine size)."""
        self._require_built()
        return sum(len(itemsets) for itemsets in self._itemsets)

    def index_size_bytes(self) -> int:
        """Approximate bytes of the itemset store: one (itemset pointer,
        count) record of 8-byte fields per itemset per window, plus the
        item ids themselves at 4 bytes each."""
        self._require_built()
        total = 0
        for itemsets in self._itemsets:
            for itemset in itemsets:
                total += 2 * 8 + 4 * len(itemset)
        return total

    # ------------------------------------------------------------------
    # online phase
    # ------------------------------------------------------------------
    def ruleset(
        self, setting: ParameterSetting, window: int
    ) -> Dict[RuleKey, Measures]:
        """Derive rules *online* from the pregenerated itemsets.

        A query support below the generation threshold cannot be
        answered completely from the store and is rejected, matching the
        contract of TARA's index.
        """
        self._check_window(window)
        self._require_built()
        if setting.min_support < self.generation_support:
            raise QueryError(
                f"query support {setting.min_support} below the generation "
                f"threshold {self.generation_support}"
            )
        stored = self._itemsets[window]
        threshold = min_count_for(setting.min_support, stored.transaction_count)
        filtered = FrequentItemsets(
            counts={
                itemset: count
                for itemset, count in stored.items()
                if count >= threshold
            },
            transaction_count=stored.transaction_count,
            min_count=threshold,
        )
        scored = derive_rules(filtered, setting.min_confidence)
        return {rule_key(s.rule): (s.support, s.confidence) for s in scored}

    def rule_measures(
        self, rules: Iterable[RuleKey], window: int
    ) -> Dict[RuleKey, Optional[Measures]]:
        """Measure rules by itemset-store lookups (no raw-data access).

        A rule is measurable only if its full itemset is stored for the
        window; otherwise it reports ``None`` — the same information
        loss TARA's archive has for sub-threshold windows.
        """
        self._check_window(window)
        self._require_built()
        stored = self._itemsets[window]
        n = stored.transaction_count
        result: Dict[RuleKey, Optional[Measures]] = {}
        for antecedent, consequent in rules:
            full: Itemset = tuple(sorted(set(antecedent) | set(consequent)))
            itemset_count = stored.count(full)
            antecedent_count = stored.count(antecedent)
            if itemset_count == 0 or antecedent_count == 0 or n == 0:
                result[(antecedent, consequent)] = None
            else:
                result[(antecedent, consequent)] = (
                    itemset_count / n,
                    itemset_count / antecedent_count,
                )
        return result

    def _require_built(self) -> None:
        if len(self._itemsets) != self.windows.window_count:
            raise NotBuiltError("H-Mine store not built; call preprocess() first")
