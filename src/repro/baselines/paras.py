"""PARAS baseline: a static parameter-space index on the latest window.

PARAS (Lin et al.) is the pre-TARA parameter-space work: it "pregenerates
frequent itemsets and rules offline for the entire data set assuming all
data is static ... we construct the PARAS index for a single time
period.  However at online time if request comes for different periods
it then generates the associations from scratch."

This implementation reuses TARA's own :class:`WindowSlice` machinery to
build the one-window index (PARAS pioneered that structure); every query
touching any *other* window degrades to DCTAR-style from-scratch mining,
which is precisely the behaviour the Figures 7-11 curves show.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.baselines.base import (
    BaselineSystem,
    Measures,
    RuleKey,
    count_rule_measures,
    rule_key,
)
from repro.common.errors import NotBuiltError, QueryError
from repro.common.timing import PhaseTimer
from repro.core.builder import PHASE_EPS, PHASE_ITEMSETS, PHASE_RULES
from repro.core.locations import group_by_location
from repro.core.regions import ParameterSetting, WindowSlice
from repro.data.windows import WindowedDatabase
from repro.mining.apriori import mine_apriori
from repro.mining.fpgrowth import mine_fpgrowth
from repro.mining.rules import RuleCatalog, derive_rules


class Paras(BaselineSystem):
    """Single-window parameter-space index + from-scratch fallback."""

    name = "PARAS"

    def __init__(
        self,
        windows: WindowedDatabase,
        generation_support: float,
        generation_confidence: float,
    ) -> None:
        super().__init__(windows)
        self.generation_support = generation_support
        self.generation_confidence = generation_confidence
        self.indexed_window = windows.window_count - 1
        self._slice: Optional[WindowSlice] = None
        self._catalog = RuleCatalog()
        self._measures: Dict[int, Measures] = {}
        self.timer = PhaseTimer()

    # ------------------------------------------------------------------
    # offline phase (latest window only)
    # ------------------------------------------------------------------
    def preprocess(self) -> None:
        """Build the parameter-space index for the latest window."""
        transactions = self.windows.window(self.indexed_window)
        with self.timer.phase(PHASE_ITEMSETS):
            itemsets = mine_fpgrowth(transactions, self.generation_support)
        with self.timer.phase(PHASE_RULES):
            scored = derive_rules(
                itemsets, self.generation_confidence, catalog=self._catalog
            )
        with self.timer.phase(PHASE_EPS):
            groups = group_by_location(scored)
            self._slice = WindowSlice(
                self.indexed_window,
                groups,
                generation_setting=ParameterSetting(
                    self.generation_support, self.generation_confidence
                ),
            )
        self._measures = {
            s.rule_id: (s.support, s.confidence) for s in scored
        }

    # ------------------------------------------------------------------
    # online phase
    # ------------------------------------------------------------------
    def ruleset(
        self, setting: ParameterSetting, window: int
    ) -> Dict[RuleKey, Measures]:
        """Index lookup on the latest window; re-mining elsewhere."""
        self._check_window(window)
        if window == self.indexed_window:
            return self._indexed_ruleset(setting)
        return self._scratch_ruleset(setting, window)

    def rule_measures(
        self, rules: Iterable[RuleKey], window: int
    ) -> Dict[RuleKey, Optional[Measures]]:
        """Measure via the index when possible, else by raw-data counting."""
        self._check_window(window)
        if window == self.indexed_window:
            return self._indexed_measures(rules)
        return count_rule_measures(self.windows.window(window), rules)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _require_built(self) -> WindowSlice:
        if self._slice is None:
            raise NotBuiltError("PARAS index not built; call preprocess() first")
        return self._slice

    def _indexed_ruleset(self, setting: ParameterSetting) -> Dict[RuleKey, Measures]:
        window_slice = self._require_built()
        if setting.min_support < self.generation_support:
            raise QueryError(
                f"query support {setting.min_support} below the generation "
                f"threshold {self.generation_support}"
            )
        result: Dict[RuleKey, Measures] = {}
        for rule_id in window_slice.collect(setting):
            rule = self._catalog.get(rule_id)
            result[rule_key(rule)] = self._measures[rule_id]
        return result

    def _indexed_measures(
        self, rules: Iterable[RuleKey]
    ) -> Dict[RuleKey, Optional[Measures]]:
        self._require_built()
        result: Dict[RuleKey, Optional[Measures]] = {}
        for antecedent, consequent in rules:
            rule_id = self._catalog.find(antecedent, consequent)
            result[(antecedent, consequent)] = (
                self._measures.get(rule_id) if rule_id is not None else None
            )
        return result

    def _scratch_ruleset(
        self, setting: ParameterSetting, window: int
    ) -> Dict[RuleKey, Measures]:
        itemsets = mine_apriori(self.windows.window(window), setting.min_support)
        scored = derive_rules(itemsets, setting.min_confidence)
        return {rule_key(s.rule): (s.support, s.confidence) for s in scored}
