"""State-of-the-art competitor systems the paper evaluates against.

* :class:`Dctar` — mines from the raw data on every request;
* :class:`HMineOnline` — pregenerated itemsets, query-time rules;
* :class:`Paras` — parameter-space index on the latest window only.
"""

from repro.baselines.base import (
    BaselineSystem,
    Measures,
    RuleKey,
    count_rule_measures,
    rule_key,
    ruleset_keys,
)
from repro.baselines.dctar import Dctar
from repro.baselines.hmine_online import HMineOnline
from repro.baselines.paras import Paras

__all__ = [
    "BaselineSystem",
    "Dctar",
    "HMineOnline",
    "Measures",
    "Paras",
    "RuleKey",
    "count_rule_measures",
    "rule_key",
    "rule_key",
    "ruleset_keys",
]
