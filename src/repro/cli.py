"""Command-line interface to the reproduction.

Covers the full workflow without writing Python:

``repro generate``
    Emit a synthetic dataset (quest / retail / webdocs as timed-FIMI
    transactions, faers as an ADR-report TSV).
``repro build``
    Run the offline phase over a FIMI file and save the knowledge base
    (``--format 2`` segmented container by default; ``--format 1`` for
    the deprecated eager JSON envelope).
``repro convert``
    Rewrite a saved knowledge base into another format (v1 JSON ->
    v2 segmented container, or back for old tooling).
``repro kb-info``
    Inspect a saved knowledge base without materializing it: format
    version, shard layout, rule/window counts, on-disk vs decoded
    sizes.
``repro mine``
    Traditional mining request against a saved knowledge base.
``repro recommend``
    Q3 parameter recommendation (the enclosing stable region).
``repro compare``
    Q2 ruleset comparison between two settings.
``repro maras``
    Rank MDAR signals from an ADR-report TSV.
``repro lint``
    Run the AST-based invariant checker over the source tree.
``repro bench``
    Offline-phase perf harness: build the fixed workload matrix under
    every executor strategy and emit ``BENCH_offline.json``.
``repro bench-online``
    Serving-layer perf harness: drive the region-keyed query cache
    through the E6/E7 sweeps and emit ``BENCH_online.json``.
``repro serve``
    Serve a saved knowledge base over HTTP (asyncio network tier with
    request coalescing; see docs/serving.md).
``repro bench-serve``
    Network-tier load harness: drive a served knowledge base with
    concurrent clients and emit ``BENCH_serve.json``.
``repro bench-ingest``
    Mixed append+query harness: concurrent clients query while a
    writer publishes snapshots; emits ``BENCH_ingest.json``.
``repro bench-persist``
    Storage harness: eager v1 loader vs lazy v2 container under a
    memory budget, peak RSS measured per child process; emits
    ``BENCH_persist.json``.

Commands that read a saved knowledge base (``mine``, ``recommend``,
``compare``, ``serve``, ``convert``) accept ``--memory-budget BYTES``
(suffixes ``k``/``M``/``G``) to bound the decoded-series cache of a
lazily loaded v2 container.

Query thresholds are spelled ``--minsupp`` / ``--minconf`` uniformly
across ``mine``, ``recommend``, and ``compare`` (``compare`` adds
``--second-minsupp`` / ``--second-minconf``); the original spellings
(``--min-support``, ``--first SUPP CONF``, ...) keep working as hidden
aliases but emit one :class:`DeprecationWarning` per process.

Every subcommand prints plain text to stdout; exit code 0 on success,
2 on argument errors (argparse convention), 1 on domain errors with the
message on stderr.
"""

from __future__ import annotations

import argparse
import base64
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro._version import __version__
from repro.analysis.cli import add_lint_arguments, run_lint
from repro.bench import (
    add_bench_arguments,
    add_bench_ingest_arguments,
    add_bench_online_arguments,
    add_bench_persist_arguments,
    add_bench_serve_arguments,
    run_bench,
    run_bench_ingest,
    run_bench_online,
    run_bench_persist,
    run_bench_serve,
)
from repro.common.deprecation import warn_deprecated
from repro.common.errors import DataFormatError, ReproError
from repro.core import (
    CompareQuery,
    GenerationConfig,
    LazyTaraKnowledgeBase,
    MatchMode,
    ParameterSetting,
    RecommendQuery,
    TaraExplorer,
    build_knowledge_base,
    load_knowledge_base,
    save_knowledge_base,
)
from repro.core.persistence import DEFAULT_FORMAT_VERSION, FORMAT_VERSION
from repro.core.storage.format import DEFAULT_SHARD_SIZE, MAGIC
from repro.core.storage.lru import DECODED_ENTRY_COST, SERIES_BASE_COST
from repro.core.storage.reader import ShardedSeriesSource
from repro.data import WindowedDatabase
from repro.data.io import read_fimi, write_fimi
from repro.maras.io import read_reports, write_reports
from repro.datagen import (
    QuestParameters,
    RetailParameters,
    WebdocsParameters,
    generate_faers,
    generate_quest,
    generate_retail,
    generate_webdocs,
    FaersParameters,
)
from repro.maras import MarasAnalyzer, MarasConfig
from repro.serve import (
    DEFAULT_DRAIN_TIMEOUT,
    DEFAULT_MAX_ENTRIES,
    DEFAULT_POOL_SIZE,
    DEFAULT_PORT,
    DEFAULT_RESPONSE_CACHE_BYTES,
    ServeConfig,
    resolve_pool_size,
    run_server,
)


class _DeprecatedAlias(argparse.Action):
    """A hidden legacy flag spelling: warn once per process, then store.

    argparse cannot otherwise tell which spelling of a shared ``dest``
    the user typed; routing the legacy option strings through this
    action is what lets the deprecation fire only for the old ones.
    """

    def __init__(self, *args: object, preferred: str = "", **kwargs: object) -> None:
        self._preferred = preferred
        super().__init__(*args, **kwargs)  # type: ignore[arg-type]

    def __call__(
        self,
        parser: argparse.ArgumentParser,
        namespace: argparse.Namespace,
        values: object,
        option_string: Optional[str] = None,
    ) -> None:
        spelling = option_string or self.option_strings[0]
        warn_deprecated(
            f"cli.{spelling}",
            f"{spelling} is deprecated: use {self._preferred}",
        )
        setattr(namespace, self.dest, values)


def _parse_memory_budget(text: str) -> int:
    """Parse a byte count with an optional ``k``/``M``/``G`` suffix."""
    raw = text.strip()
    multiplier = 1
    if raw and raw[-1] in "kMG":
        multiplier = {"k": 1024, "M": 1024 ** 2, "G": 1024 ** 3}[raw[-1]]
        raw = raw[:-1]
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid memory budget {text!r}: expected an integer byte "
            f"count with an optional k/M/G suffix (e.g. 64M)"
        ) from None
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"memory budget must be positive, got {text!r}"
        )
    return value * multiplier


def _add_memory_budget_argument(parser: argparse.ArgumentParser) -> None:
    """Install ``--memory-budget`` on a KB-loading subcommand."""
    parser.add_argument(
        "--memory-budget", type=_parse_memory_budget, default=None,
        metavar="BYTES",
        help="decoded-series cache budget for lazily loaded v2 "
             "containers (suffixes k/M/G; default: unbounded)",
    )


def _add_threshold_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the unified ``--minsupp`` / ``--minconf`` query flags.

    The historical ``--min-support`` / ``--min-confidence`` spellings
    stay accepted as hidden aliases (same destination, mutually
    exclusive with the new spelling) so existing scripts keep working —
    at the price of one :class:`DeprecationWarning` per process.
    """
    support = parser.add_mutually_exclusive_group(required=True)
    support.add_argument(
        "--minsupp", dest="min_support", type=float,
        help="query minimum support",
    )
    support.add_argument(
        "--min-support", dest="min_support", type=float,
        action=_DeprecatedAlias, preferred="--minsupp",
        help=argparse.SUPPRESS,
    )
    confidence = parser.add_mutually_exclusive_group(required=True)
    confidence.add_argument(
        "--minconf", dest="min_confidence", type=float,
        help="query minimum confidence",
    )
    confidence.add_argument(
        "--min-confidence", dest="min_confidence", type=float,
        action=_DeprecatedAlias, preferred="--minconf",
        help=argparse.SUPPRESS,
    )


def build_parser() -> argparse.ArgumentParser:
    """The full argparse tree (exposed for --help testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Interactive temporal association analytics (EDBT'16 reproduction)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="emit a synthetic dataset"
    )
    generate.add_argument(
        "dataset", choices=("quest", "retail", "webdocs", "faers")
    )
    generate.add_argument("--out", required=True, help="output file path")
    generate.add_argument("--size", type=int, default=5000,
                          help="transactions / documents / reports to generate")
    generate.add_argument("--items", type=int, default=500,
                          help="item universe size (transaction datasets)")
    generate.add_argument("--seed", type=int, default=1)

    build = commands.add_parser(
        "build", help="run the offline phase over a FIMI file"
    )
    build.add_argument("--input", required=True, help="timed or plain FIMI file")
    build.add_argument("--out", required=True, help="knowledge-base output path")
    build.add_argument("--batches", type=int, default=5,
                       help="number of equal count-based windows")
    build.add_argument("--min-support", type=float, required=True)
    build.add_argument("--min-confidence", type=float, required=True)
    build.add_argument("--miner", default="vertical",
                       choices=("apriori", "eclat", "fpgrowth", "hmine",
                                "vertical"))
    build.add_argument("--item-index", action="store_true",
                       help="build the TARA-S per-region item index")
    build.add_argument("--format", type=int, dest="format_version",
                       choices=(FORMAT_VERSION, DEFAULT_FORMAT_VERSION),
                       default=DEFAULT_FORMAT_VERSION,
                       help="knowledge-base file format: 2 = segmented "
                            "container (default), 1 = deprecated eager JSON")
    build.add_argument("--shard-size", type=int, default=DEFAULT_SHARD_SIZE,
                       help=f"rules per v2 shard (default: {DEFAULT_SHARD_SIZE})")

    convert = commands.add_parser(
        "convert", help="rewrite a saved knowledge base in another format"
    )
    convert.add_argument("src", help="existing knowledge-base path (v1 or v2)")
    convert.add_argument("dst", help="output path")
    convert.add_argument("--format", type=int, dest="format_version",
                         choices=(FORMAT_VERSION, DEFAULT_FORMAT_VERSION),
                         default=DEFAULT_FORMAT_VERSION,
                         help="target format (default: 2, the segmented "
                              "container)")
    convert.add_argument("--shard-size", type=int, default=DEFAULT_SHARD_SIZE,
                         help=f"rules per v2 shard (default: {DEFAULT_SHARD_SIZE})")
    _add_memory_budget_argument(convert)

    kb_info = commands.add_parser(
        "kb-info", help="inspect a saved knowledge base without loading it"
    )
    kb_info.add_argument("kb", help="knowledge-base path (v1 or v2)")

    mine = commands.add_parser("mine", help="mine a saved knowledge base")
    mine.add_argument("--kb", required=True)
    _add_threshold_arguments(mine)
    mine.add_argument("--window", type=int, default=None,
                      help="basic window index (default: latest)")
    mine.add_argument("--top", type=int, default=20,
                      help="print at most this many rules")
    _add_memory_budget_argument(mine)

    recommend = commands.add_parser(
        "recommend", help="Q3: stable region around a setting"
    )
    recommend.add_argument("--kb", required=True)
    _add_threshold_arguments(recommend)
    recommend.add_argument("--window", type=int, default=None)
    _add_memory_budget_argument(recommend)

    compare = commands.add_parser(
        "compare", help="Q2: difference of two settings"
    )
    compare.add_argument("--kb", required=True)
    _add_memory_budget_argument(compare)
    compare.add_argument("--minsupp", type=float, default=None,
                         help="first setting's minimum support")
    compare.add_argument("--minconf", type=float, default=None,
                         help="first setting's minimum confidence")
    compare.add_argument("--second-minsupp", type=float, default=None,
                         help="second setting's minimum support")
    compare.add_argument("--second-minconf", type=float, default=None,
                         help="second setting's minimum confidence")
    # Hidden legacy aliases: --first/--second SUPP CONF pairs.
    compare.add_argument("--first", nargs=2, type=float, default=None,
                         action=_DeprecatedAlias,
                         preferred="--minsupp/--minconf",
                         metavar=("SUPP", "CONF"), help=argparse.SUPPRESS)
    compare.add_argument("--second", nargs=2, type=float, default=None,
                         action=_DeprecatedAlias,
                         preferred="--second-minsupp/--second-minconf",
                         metavar=("SUPP", "CONF"), help=argparse.SUPPRESS)
    compare.add_argument("--mode", choices=("single", "exact"), default="single")

    maras = commands.add_parser(
        "maras", help="rank MDAR signals from an ADR-report TSV"
    )
    maras.add_argument("--reports", required=True)
    maras.add_argument("--min-count", type=int, default=5)
    maras.add_argument("--top", type=int, default=10)
    maras.add_argument("--theta", type=float, default=0.75)

    lint = commands.add_parser(
        "lint", help="run the AST-based invariant checker (see docs/static_analysis.md)"
    )
    add_lint_arguments(lint)

    bench = commands.add_parser(
        "bench",
        help="offline-build perf harness -> BENCH_offline.json (see docs/performance.md)",
    )
    add_bench_arguments(bench)

    bench_online = commands.add_parser(
        "bench-online",
        help="serving-layer perf harness -> BENCH_online.json (see docs/serving.md)",
    )
    add_bench_online_arguments(bench_online)

    serve = commands.add_parser(
        "serve",
        help="serve a saved knowledge base over HTTP (see docs/serving.md)",
    )
    serve.add_argument("--kb", required=True, help="saved knowledge-base path")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=DEFAULT_PORT,
                       help=f"bind port (default: {DEFAULT_PORT}; 0 for ephemeral)")
    serve.add_argument("--pool-size", default=str(DEFAULT_POOL_SIZE),
                       help="query worker threads: a count or 'auto' "
                            "(one per CPU; "
                            f"default: {DEFAULT_POOL_SIZE})")
    serve.add_argument("--max-entries", type=int, default=DEFAULT_MAX_ENTRIES,
                       help=f"region-keyed cache capacity (default: {DEFAULT_MAX_ENTRIES})")
    serve.add_argument("--response-cache", type=_parse_memory_budget,
                       default=DEFAULT_RESPONSE_CACHE_BYTES, metavar="BYTES",
                       help="encoded-response byte-cache budget "
                            "(suffixes k/M/G; default: 64M)")
    serve.add_argument("--drain-timeout", type=float, default=DEFAULT_DRAIN_TIMEOUT,
                       help="graceful-shutdown drain seconds "
                            f"(default: {DEFAULT_DRAIN_TIMEOUT:g})")
    _add_memory_budget_argument(serve)

    bench_serve = commands.add_parser(
        "bench-serve",
        help="network-tier load harness -> BENCH_serve.json (see docs/benchmarks.md)",
    )
    add_bench_serve_arguments(bench_serve)

    bench_ingest = commands.add_parser(
        "bench-ingest",
        help="mixed append+query harness -> BENCH_ingest.json (see docs/benchmarks.md)",
    )
    add_bench_ingest_arguments(bench_ingest)

    bench_persist = commands.add_parser(
        "bench-persist",
        help="storage harness: eager v1 vs lazy v2 loader -> "
             "BENCH_persist.json (see docs/storage.md)",
    )
    add_bench_persist_arguments(bench_persist)
    return parser


# ----------------------------------------------------------------------
# subcommand implementations
# ----------------------------------------------------------------------
def _cmd_generate(args: argparse.Namespace) -> int:
    if args.dataset == "quest":
        database = generate_quest(
            QuestParameters(
                transaction_count=args.size,
                avg_transaction_size=10.0,
                item_count=args.items,
                seed=args.seed,
            )
        )
        count = write_fimi(database, args.out)
    elif args.dataset == "retail":
        database, _ = generate_retail(
            RetailParameters(
                transaction_count=args.size, item_count=args.items, seed=args.seed
            )
        )
        count = write_fimi(database, args.out)
    elif args.dataset == "webdocs":
        database = generate_webdocs(
            WebdocsParameters(
                document_count=args.size,
                vocabulary_size=max(args.items, 1000),
                seed=args.seed,
            )
        )
        count = write_fimi(database, args.out)
    else:  # faers
        reports, reference, _ = generate_faers(
            FaersParameters(report_count=args.size, seed=args.seed)
        )
        count = write_reports(reports, args.out)
        print(f"planted interactions: {len(reference)}")
    print(f"wrote {count} records to {args.out}")
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    database = read_fimi(args.input)
    windows = WindowedDatabase.partition_by_count(database, args.batches)
    config = GenerationConfig(
        min_support=args.min_support,
        min_confidence=args.min_confidence,
        miner=args.miner,
        build_item_index=args.item_index,
    )
    knowledge_base = build_knowledge_base(windows, config)
    written = save_knowledge_base(
        knowledge_base, args.out,
        format_version=args.format_version, shard_size=args.shard_size,
    )
    print(
        f"built {knowledge_base.window_count} windows, "
        f"{len(knowledge_base.catalog)} rules, "
        f"{knowledge_base.archive.entry_count()} archive entries; "
        f"saved {written} bytes to {args.out} "
        f"(format v{args.format_version})"
    )
    print(knowledge_base.timer.report("offline phase"))
    return 0


def _sniff_format(path: Path) -> int:
    """Report a saved KB's format version from its leading bytes."""
    try:
        with open(path, "rb") as handle:
            magic = handle.read(len(MAGIC))
    except OSError as error:
        raise DataFormatError(f"cannot read {path}: {error}") from error
    return DEFAULT_FORMAT_VERSION if magic == MAGIC else FORMAT_VERSION


def _cmd_convert(args: argparse.Namespace) -> int:
    src_format = _sniff_format(Path(args.src))
    knowledge_base = load_knowledge_base(
        args.src, memory_budget=args.memory_budget
    )
    try:
        written = save_knowledge_base(
            knowledge_base, args.dst,
            format_version=args.format_version, shard_size=args.shard_size,
        )
    finally:
        if isinstance(knowledge_base, LazyTaraKnowledgeBase):
            knowledge_base.close()
    src_bytes = Path(args.src).stat().st_size
    print(
        f"converted {args.src} (format v{src_format}, {src_bytes} bytes) "
        f"-> {args.dst} (format v{args.format_version}, {written} bytes)"
    )
    return 0


def _cmd_kb_info(args: argparse.Namespace) -> int:
    path = Path(args.kb)
    if _sniff_format(path) == DEFAULT_FORMAT_VERSION:
        return _kb_info_v2(path)
    return _kb_info_v1(path)


def _kb_info_v2(path: Path) -> int:
    file_bytes = path.stat().st_size
    with ShardedSeriesSource(path) as source:
        counts = source.meta.get("counts", {})
        rules = len(source)
        windows = source.window_count
        entries = int(counts.get("entries", 0))
        encoded = int(counts.get("encoded_bytes", 0))
        shards = source.counters()["shard_count"]
        shard_size = source.meta.get("shard_size", "?")
    decoded = rules * SERIES_BASE_COST + entries * DECODED_ENTRY_COST
    print(f"{path}: TARA knowledge base, format v2 (segmented container)")
    print(f"  file size        {file_bytes:>14,} bytes")
    print(f"  windows          {windows:>14,}")
    print(f"  rules            {rules:>14,}")
    print(f"  archive entries  {entries:>14,}")
    print(f"  shards           {shards:>14,}  ({shard_size} rules/shard)")
    print(f"  series on disk   {encoded:>14,} bytes (raw varint)")
    print(f"  decoded estimate {decoded:>14,} bytes if fully materialized")
    print("  loads lazily; bound resident decode with --memory-budget")
    return 0


def _kb_info_v1(path: Path) -> int:
    file_bytes = path.stat().st_size
    try:
        payload = json.loads(path.read_text("utf-8"))
    except (OSError, ValueError) as error:
        raise DataFormatError(
            f"{path} is neither a v2 container nor readable v1 JSON: {error}"
        ) from error
    version = payload.get("format_version", "?")
    archive = payload.get("archive", {})
    rules = len(payload.get("catalog", []))
    windows = len(payload.get("window_sizes", []))
    entries = sum(len(ids) for ids in payload.get("rules_in_window", []))
    encoded_b85 = sum(len(blob) for blob in archive.values())
    encoded = sum(
        len(base64.b85decode(blob)) for blob in archive.values()
    )
    decoded = rules * SERIES_BASE_COST + entries * DECODED_ENTRY_COST
    print(f"{path}: TARA knowledge base, format v{version} "
          f"(eager JSON envelope)")
    print(f"  file size        {file_bytes:>14,} bytes")
    print(f"  windows          {windows:>14,}")
    print(f"  rules            {rules:>14,}")
    print(f"  archive entries  {entries:>14,}")
    print(f"  series on disk   {encoded_b85:>14,} bytes (base85; "
          f"{encoded:,} raw)")
    print(f"  decoded estimate {decoded:>14,} bytes, all resident on load")
    print("  v1 writes are deprecated; migrate with: "
          f"repro convert {path} {path}.tara2")
    return 0


def _cmd_mine(args: argparse.Namespace) -> int:
    knowledge_base = load_knowledge_base(
        args.kb, memory_budget=args.memory_budget
    )
    explorer = TaraExplorer(knowledge_base)
    from repro.data import PeriodSpec

    window = (
        args.window if args.window is not None else knowledge_base.window_count - 1
    )
    setting = ParameterSetting(args.min_support, args.min_confidence)
    mined = explorer.mine(setting, PeriodSpec.single(window))[window]
    mined.sort(key=lambda rule: (-rule.confidence, -rule.support))
    print(f"{len(mined)} rules in window {window} at "
          f"(supp>={setting.min_support}, conf>={setting.min_confidence})")
    for rule in mined[: args.top]:
        print(
            f"  {rule.rule.format():<40} supp={rule.support:.4f} "
            f"conf={rule.confidence:.3f}"
        )
    return 0


def _cmd_recommend(args: argparse.Namespace) -> int:
    knowledge_base = load_knowledge_base(
        args.kb, memory_budget=args.memory_budget
    )
    explorer = TaraExplorer(knowledge_base)
    setting = ParameterSetting(args.min_support, args.min_confidence)
    recommendation = explorer.execute(
        RecommendQuery(setting=setting, window=args.window)
    )
    region = recommendation.region
    if region.is_empty:
        print("no rules at or above this setting in the window")
        return 0
    print(
        f"window {recommendation.window}: same {region.ruleset_size} rules for any "
        f"supp in ({float(region.support_floor):.5f}, "
        f"{region.cut.support_float:.5f}] and conf in "
        f"({float(region.confidence_floor):.5f}, "
        f"{region.cut.confidence_float:.5f}]"
    )
    for direction, neighbor in recommendation.neighbors.items():
        delta = neighbor.ruleset_size - region.ruleset_size
        print(f"  {direction:<18} -> {neighbor.ruleset_size} rules ({delta:+d})")
    return 0


def _resolve_compare_setting(
    pair: Optional[Sequence[float]],
    minsupp: Optional[float],
    minconf: Optional[float],
    label: str,
) -> ParameterSetting:
    """Resolve one compare setting from the new or legacy spelling.

    Raises :class:`SystemExit` with code 2 (argparse's usage-error
    convention) when the spellings are mixed, incomplete, or missing.
    """
    prefix = "" if label == "first" else "second-"
    new_given = minsupp is not None or minconf is not None
    if pair is not None and new_given:
        print(
            f"error: give the {label} setting either via "
            f"--{prefix}minsupp/--{prefix}minconf or via the legacy "
            f"--{label} pair, not both",
            file=sys.stderr,
        )
        raise SystemExit(2)
    if pair is not None:
        return ParameterSetting(*pair)
    if minsupp is None or minconf is None:
        print(
            f"error: the {label} setting needs both --{prefix}minsupp "
            f"and --{prefix}minconf",
            file=sys.stderr,
        )
        raise SystemExit(2)
    return ParameterSetting(minsupp, minconf)


def _cmd_compare(args: argparse.Namespace) -> int:
    first = _resolve_compare_setting(
        args.first, args.minsupp, args.minconf, "first"
    )
    second = _resolve_compare_setting(
        args.second, args.second_minsupp, args.second_minconf, "second"
    )
    knowledge_base = load_knowledge_base(
        args.kb, memory_budget=args.memory_budget
    )
    explorer = TaraExplorer(knowledge_base)
    mode = MatchMode.EXACT if args.mode == "exact" else MatchMode.SINGLE
    result = explorer.execute(
        CompareQuery(first=first, second=second, mode=mode)
    )
    print(
        f"{len(result.only_first)} rules only under the first setting, "
        f"{len(result.only_second)} only under the second "
        f"({args.mode} match over {len(result.per_window)} windows)"
    )
    for diff in result.per_window:
        print(
            f"  window {diff.window}: +{len(diff.only_first)} "
            f"-{len(diff.only_second)} ={len(diff.common)}"
        )
    return 0


def _cmd_maras(args: argparse.Namespace) -> int:
    database = read_reports(args.reports)
    analyzer = MarasAnalyzer(
        database, MarasConfig(min_count=args.min_count, theta=args.theta)
    )
    signals = analyzer.signals(top_k=args.top)
    print(
        f"{len(database)} reports, {database.drug_count} drugs, "
        f"{database.adr_count} ADRs -> top {len(signals)} signals:"
    )
    for rank, signal in enumerate(signals, start=1):
        print(f"  #{rank} {signal.describe(database)}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    knowledge_base = load_knowledge_base(
        args.kb, memory_budget=args.memory_budget
    )
    config = ServeConfig(
        host=args.host,
        port=args.port,
        pool_size=resolve_pool_size(args.pool_size),
        max_entries=args.max_entries,
        drain_timeout=args.drain_timeout,
        response_cache_bytes=args.response_cache,
    )
    print(
        f"serving {knowledge_base.window_count} windows, "
        f"{len(knowledge_base.catalog)} rules from {args.kb}"
    )

    def on_ready(host: str, port: int) -> None:
        print(f"listening on http://{host}:{port} (Ctrl-C to drain and stop)")

    run_server(knowledge_base, config, on_ready=on_ready)
    print("drained; bye")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "build": _cmd_build,
    "convert": _cmd_convert,
    "kb-info": _cmd_kb_info,
    "mine": _cmd_mine,
    "recommend": _cmd_recommend,
    "compare": _cmd_compare,
    "maras": _cmd_maras,
    "lint": run_lint,
    "bench": run_bench,
    "bench-online": run_bench_online,
    "serve": _cmd_serve,
    "bench-serve": run_bench_serve,
    "bench-ingest": run_bench_ingest,
    "bench-persist": run_bench_persist,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
