"""Summary statistics used by trajectory measures and the MARAS scores.

Pure-Python implementations (no numpy dependency at this layer) so the
innermost scoring loops stay allocation-light and easily testable.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.common.errors import ValidationError

#: Relative tolerance below which a derived float statistic is treated
#: as zero.  Derived quantities (means, standard deviations) accumulate
#: rounding error even when the underlying data is exactly constant —
#: e.g. ``population_std([0.1, 0.1, 0.1])`` is ~1.4e-17, not 0 — so
#: exact ``== 0.0`` guards both miss true zeros and let near-zero
#: divisors blow ratios up to 1e16.  See docs/static_analysis.md (R001).
ZERO_TOLERANCE = 1e-12


def near_zero(value: float, *, scale: float = 1.0) -> bool:
    """True when *value* is zero up to rounding error at *scale*.

    *scale* should be the magnitude of the data the statistic was
    derived from (e.g. the largest absolute input); the guard is
    ``|value| <= ZERO_TOLERANCE * max(1, |scale|)`` so it behaves
    absolutely near 1.0 and relatively for large-magnitude data.
    """
    return abs(value) <= ZERO_TOLERANCE * max(1.0, abs(scale))


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on an empty sequence."""
    if not values:
        raise ValidationError("mean of empty sequence")
    return sum(values) / len(values)


def population_variance(values: Sequence[float]) -> float:
    """Population (``ddof=0``) variance; raises on an empty sequence."""
    center = mean(values)
    return sum((value - center) ** 2 for value in values) / len(values)


def population_std(values: Sequence[float]) -> float:
    """Population standard deviation."""
    return math.sqrt(population_variance(values))


def sample_variance(values: Sequence[float]) -> float:
    """Sample (``ddof=1``) variance; 0.0 for fewer than two values."""
    if len(values) < 2:
        return 0.0
    center = mean(values)
    return sum((value - center) ** 2 for value in values) / (len(values) - 1)


def sample_std(values: Sequence[float]) -> float:
    """Sample standard deviation (``ddof=1``)."""
    return math.sqrt(sample_variance(values))


def coefficient_of_variation(values: Sequence[float]) -> float:
    """Sample std divided by the mean (Formula 8's :math:`C_v`).

    The MARAS penalty term uses the coefficient of variation of the
    contextual associations' confidences.  The *sample* (``ddof=1``)
    standard deviation reproduces the paper's worked example
    (``contrast_cv(C_1) = 0.18``, ``contrast_cv(C_2) = 0.45`` at
    ``θ = 0.75``); the population form would give 0.275/0.458.  A zero
    mean (all-zero confidences) has no meaningful dispersion ratio; we
    return 0.0 so the penalty degrades gracefully instead of dividing
    by zero.
    """
    center = mean(values)
    if near_zero(center, scale=max(abs(value) for value in values)):
        return 0.0
    return sample_std(values) / center


def z_score(value: float, reference: Sequence[float]) -> float:
    """Standard score of *value* against the *reference* population.

    When the reference has zero spread (up to rounding error — a
    bit-for-bit constant reference can still yield a ~1e-17 standard
    deviation) the z-score is defined here as 0.0 if the value matches
    the (constant) reference, else signed infinity.
    """
    center = mean(reference)
    spread = population_std(reference)
    scale = max(abs(value) for value in reference)
    if near_zero(spread, scale=scale):
        if near_zero(value - center, scale=max(scale, abs(value))):
            return 0.0
        return math.inf if value > center else -math.inf
    return (value - center) / spread


def min_max(values: Sequence[float]) -> tuple[float, float]:
    """Return ``(min, max)`` in one pass; raises on an empty sequence."""
    if not values:
        raise ValidationError("min_max of empty sequence")
    lo = hi = values[0]
    for value in values[1:]:
        if value < lo:
            lo = value
        elif value > hi:
            hi = value
    return lo, hi


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of *values* (``q`` in [0, 100]).

    The nearest-rank method always returns an observed value, which is
    the convention latency reports want: ``percentile(lat, 99)`` is a
    request that actually happened, not an interpolated phantom.  Raises
    on an empty sequence or an out-of-range *q*.
    """
    if not values:
        raise ValidationError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValidationError(f"percentile rank must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[max(rank, 1) - 1]
