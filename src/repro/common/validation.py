"""Small argument-validation helpers used throughout the library.

These helpers keep the public API functions short and make error messages
uniform: every check raises :class:`~repro.common.errors.ValidationError`
naming the offending parameter and the constraint it violated.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.common.errors import ValidationError


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValidationError` with *message* unless *condition* holds."""
    if not condition:
        raise ValidationError(message)


def check_fraction(value: float, name: str, *, allow_zero: bool = True) -> float:
    """Validate that *value* is a finite fraction in ``[0, 1]``.

    Parameters such as *minimum support* and *minimum confidence* are
    fractions by definition (Formulas 1-2 of the paper).

    Returns the value unchanged so checks can be inlined in assignments.
    """
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ValidationError(f"{name} must be a number, got {type(value).__name__}")
    if math.isnan(value) or math.isinf(value):
        raise ValidationError(f"{name} must be finite, got {value!r}")
    out_of_range = value < 0.0 or value > 1.0 or (not allow_zero and value <= 0.0)
    if out_of_range:
        bound = "[0, 1]" if allow_zero else "(0, 1]"
        raise ValidationError(f"{name} must be in {bound}, got {value!r}")
    return float(value)


def check_positive_int(value: int, name: str) -> int:
    """Validate that *value* is an ``int`` strictly greater than zero."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise ValidationError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValidationError(f"{name} must be positive, got {value}")
    return value


def check_non_negative_int(value: int, name: str) -> int:
    """Validate that *value* is an ``int`` greater than or equal to zero."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise ValidationError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value}")
    return value


def check_non_empty(items: "Sequence[object] | Iterable[object]", name: str) -> None:
    """Validate that a sized or iterable argument holds at least one element."""
    try:
        size = len(items)  # type: ignore[arg-type]
    except TypeError:
        size = sum(1 for _ in items)
    if size == 0:
        raise ValidationError(f"{name} must not be empty")


def check_sorted_unique(values: Sequence[int], name: str) -> None:
    """Validate that *values* is strictly increasing (sorted, no duplicates)."""
    for earlier, later in zip(values, values[1:]):
        if earlier >= later:
            raise ValidationError(
                f"{name} must be strictly increasing; "
                f"saw {earlier!r} before {later!r}"
            )
