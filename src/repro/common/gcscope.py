"""Cyclic-GC pause scope for bulk-allocation phases.

The offline build materializes hundreds of thousands of objects that
are all *retained* (split plans, interned rules, scored tuples, index
rows).  CPython's generational collector triggers a young-generation
scan every ~700 net allocations, and during a bulk build every one of
those scans is pure overhead: nothing allocated by the build is garbage
until the build finishes.  On the retail quick workload these scans
account for roughly a quarter of the rule-derivation wall time.

:func:`paused_gc` disables the cyclic collector for the duration of a
bulk phase and restores the previous state afterwards.  Reference
counting (the primary deallocation mechanism) is unaffected — only the
cycle detector is paused, so the peak-memory impact is bounded by the
cyclic garbage produced inside the scope, which for the build loops is
none.

The pause is process-global, like the collector itself; nested scopes
are safe (the inner scope sees the collector already disabled and
leaves it so).
"""

from __future__ import annotations

import gc
from contextlib import contextmanager
from typing import Iterator


@contextmanager
def paused_gc() -> Iterator[None]:
    """Disable cyclic garbage collection inside the ``with`` block.

    Restores the collector's previous enabled/disabled state on exit
    (also on error), so nesting and already-disabled environments
    behave as expected.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()
