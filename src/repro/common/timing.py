"""Instrumentation for the offline/online phase breakdowns.

The paper's Figure 9 reports the offline preprocessing time *stacked by
task* (frequent-itemset generation, rule derivation, archival, EPS index
update).  :class:`PhaseTimer` collects named, nestable phase durations so
both the knowledge-base builder and the benchmark harness can report the
same per-task decomposition.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Set

from repro.common.errors import ValidationError


# Mutable by design: a timer accumulates durations in place and is never
# used as a dict key or set member.
@dataclass  # repro-lint: disable=R004
class PhaseTimer:
    """Accumulates wall-clock durations per named phase.

    Phases accumulate: timing the same name twice adds the durations,
    which is the behaviour wanted when the same task runs once per
    window.

    A phase may be recorded as *informational*: it is reported but
    excluded from :attr:`total`.  The parallel offline build uses this
    to attribute pool wall-clock time (which overlaps the per-task
    durations measured inside the workers) without double-counting it
    in the Figure 9 task stack — see docs/performance.md.
    """

    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)
    _order: List[str] = field(default_factory=list)
    _informational: Set[str] = field(default_factory=set)

    def _register(self, name: str, informational: bool) -> None:
        if name not in self.totals:
            self.totals[name] = 0.0
            self.counts[name] = 0
            self._order.append(name)
            if informational:
                self._informational.add(name)
        elif informational != (name in self._informational):
            raise ValidationError(
                f"phase {name!r} already recorded as "
                f"{'informational' if name in self._informational else 'counted'}"
            )

    @contextmanager
    def phase(self, name: str, *, informational: bool = False) -> Iterator[None]:
        """Context manager measuring one execution of the phase *name*."""
        self._register(name, informational)
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.totals[name] += elapsed
            self.counts[name] += 1

    def add(self, name: str, seconds: float, *, informational: bool = False) -> None:
        """Record *seconds* against phase *name* without a context manager."""
        self._register(name, informational)
        self.totals[name] += seconds
        self.counts[name] += 1

    def is_informational(self, name: str) -> bool:
        """True when *name* is reported but excluded from :attr:`total`."""
        return name in self._informational

    @property
    def total(self) -> float:
        """Sum of all counted (non-informational) phase durations."""
        return sum(
            seconds
            for name, seconds in self.totals.items()
            if name not in self._informational
        )

    def merge(self, other: "PhaseTimer") -> None:
        """Fold another timer's phases into this one (used across windows)."""
        for name in other._order:
            self.add(
                name,
                other.totals[name],
                informational=name in other._informational,
            )
            # ``add`` counted one execution; fix up to the real count.
            self.counts[name] += other.counts[name] - 1

    def breakdown(self) -> Dict[str, float]:
        """Phase name -> seconds, in first-recorded order."""
        return {name: self.totals[name] for name in self._order}

    def report(self, title: str = "phase breakdown") -> str:
        """Human-readable multi-line report of the breakdown.

        Informational phases are flagged with ``*`` and excluded from
        the total (they overlap the counted phases' durations).
        """
        lines = [title]
        width = max((len(name) for name in self._order), default=0)
        for name in self._order:
            if name in self._informational:
                lines.append(
                    f"  {name.ljust(width)}  {self.totals[name] * 1e3:10.3f} ms"
                    f"  (* wall, n={self.counts[name]})"
                )
                continue
            share = self.totals[name] / self.total if self.total else 0.0
            lines.append(
                f"  {name.ljust(width)}  {self.totals[name] * 1e3:10.3f} ms"
                f"  ({share:6.1%}, n={self.counts[name]})"
            )
        lines.append(f"  {'total'.ljust(width)}  {self.total * 1e3:10.3f} ms")
        if self._informational:
            lines.append("  (* overlaps counted phases; excluded from total)")
        return "\n".join(lines)


@contextmanager
def stopwatch() -> Iterator["Stopwatch"]:
    """Measure a block's wall-clock duration.

    Usage::

        with stopwatch() as clock:
            work()
        print(clock.seconds)
    """
    clock = Stopwatch()
    clock._start = time.perf_counter()
    try:
        yield clock
    finally:
        clock.seconds = time.perf_counter() - clock._start


class Stopwatch:
    """Holds the duration measured by :func:`stopwatch`."""

    def __init__(self) -> None:
        self._start = 0.0
        self.seconds = 0.0

    @property
    def millis(self) -> float:
        """Measured duration in milliseconds."""
        return self.seconds * 1e3


class Ticker:
    """A monotonic elapsed-seconds reader for long-lived processes.

    Where :func:`stopwatch` measures one bounded block, a ``Ticker`` is
    read repeatedly while still running — the serving tier uses it for
    uptime and requests-per-second gauges.  Like every other timing
    primitive it lives here so clock access stays confined to this
    module (rule R005).
    """

    def __init__(self) -> None:
        self._start = time.perf_counter()

    @property
    def seconds(self) -> float:
        """Seconds elapsed since construction (monotonic)."""
        return time.perf_counter() - self._start
