"""Execution strategies for embarrassingly parallel offline work.

The offline phase (Figure 2) is independent per basic window: the TAR
Archive is append-only per rule and the EPS index is sliced by time, so
per-window mining can run anywhere as long as the results are *merged
back in window order*.  This module provides the strategy half of that
split: :func:`run_ordered` maps a function over work items under one of
three interchangeable strategies —

``serial``
    a plain in-process loop (the reference behaviour);
``thread``
    a :class:`~concurrent.futures.ThreadPoolExecutor` — useful when the
    work releases the GIL (I/O, native extensions); pure-Python mining
    is GIL-bound and gains little (docs/performance.md);
``process``
    a :class:`~concurrent.futures.ProcessPoolExecutor` — the strategy
    for CPU-bound mining; the function and every work item must be
    picklable, and each item pays a serialization toll.

All three return results **in submission order**, so a deterministic
caller-side merge sees exactly the serial sequence regardless of the
order workers finish in.  The layering contract keeps this module
generic: it knows nothing about windows, miners or archives — callers
(e.g. ``repro.core.builder``) supply picklable work units.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from repro.common.errors import ValidationError

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")

#: The recognised strategy names, in documentation order.
EXECUTOR_STRATEGIES: Tuple[str, ...] = ("serial", "thread", "process")


def available_cpus() -> int:
    """CPUs usable by this process (affinity-aware; at least 1)."""
    getter = getattr(os, "sched_getaffinity", None)
    if getter is not None:
        try:
            return max(1, len(getter(0)))
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return max(1, os.cpu_count() or 1)


@dataclass(frozen=True)
class ExecutorConfig:
    """How to execute a batch of independent work items.

    Attributes:
        strategy: one of :data:`EXECUTOR_STRATEGIES`.
        max_workers: worker cap; ``None`` means "all available CPUs".
            The effective count never exceeds the item count.
        chunk_size: items handed to a process worker per pickling round
            trip; ``None`` picks ``ceil(items / (workers * 4))`` so the
            pool stays load-balanced without per-item pickling overhead.
            Ignored by the serial and thread strategies.
    """

    strategy: str = "serial"
    max_workers: Optional[int] = None
    chunk_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.strategy not in EXECUTOR_STRATEGIES:
            raise ValidationError(
                f"unknown executor strategy {self.strategy!r}; "
                f"known: {list(EXECUTOR_STRATEGIES)}"
            )
        if self.max_workers is not None and self.max_workers < 1:
            raise ValidationError(
                f"max_workers must be >= 1, got {self.max_workers}"
            )
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValidationError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )

    @property
    def is_parallel(self) -> bool:
        """True for the strategies that may use worker pools."""
        return self.strategy != "serial"

    def resolved_workers(self, item_count: int) -> int:
        """Effective worker count for a batch of *item_count* items."""
        cap = self.max_workers if self.max_workers is not None else available_cpus()
        return max(1, min(cap, item_count))

    def resolved_chunk_size(self, item_count: int, workers: int) -> int:
        """Effective process-pool chunk size for a batch."""
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, -(-item_count // (workers * 4)))


def run_ordered(
    function: Callable[[ItemT], ResultT],
    items: Sequence[ItemT],
    config: Optional[ExecutorConfig] = None,
) -> List[ResultT]:
    """Apply *function* to every item, returning results in input order.

    The degenerate cases — serial strategy, a single resolved worker, or
    fewer than two items — run in-process without spawning a pool, so
    callers can route every batch through here unconditionally.

    For the ``process`` strategy, *function* must be a module-level
    callable and every item (and result) picklable.
    """
    if config is None:
        config = ExecutorConfig()
    work = list(items)
    if not work:
        return []
    workers = config.resolved_workers(len(work))
    if not config.is_parallel or workers == 1 or len(work) == 1:
        return [function(item) for item in work]
    if config.strategy == "thread":
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(function, work))
    chunk = config.resolved_chunk_size(len(work), workers)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(function, work, chunksize=chunk))
