"""Cross-cutting utilities: errors, validation, timing, codecs, statistics."""

from repro.common.errors import (
    CodecError,
    DataFormatError,
    NotBuiltError,
    QueryError,
    ReproError,
    UnknownRuleError,
    UnknownWindowError,
    ValidationError,
)

__all__ = [
    "CodecError",
    "DataFormatError",
    "NotBuiltError",
    "QueryError",
    "ReproError",
    "UnknownRuleError",
    "UnknownWindowError",
    "ValidationError",
]
