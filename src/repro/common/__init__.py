"""Cross-cutting utilities: errors, validation, timing, codecs, executors."""

from repro.common.errors import (
    CodecError,
    DataFormatError,
    NotBuiltError,
    QueryError,
    ReproError,
    UnknownRuleError,
    UnknownWindowError,
    ValidationError,
)
from repro.common.executors import (
    EXECUTOR_STRATEGIES,
    ExecutorConfig,
    available_cpus,
    run_ordered,
)
from repro.common.gcscope import paused_gc

__all__ = [
    "CodecError",
    "DataFormatError",
    "EXECUTOR_STRATEGIES",
    "ExecutorConfig",
    "NotBuiltError",
    "QueryError",
    "ReproError",
    "UnknownRuleError",
    "UnknownWindowError",
    "ValidationError",
    "available_cpus",
    "paused_gc",
    "run_ordered",
]
