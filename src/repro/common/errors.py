"""Exception hierarchy shared across the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers embedding the library can catch a single
base class.  Subclasses separate the main failure domains: invalid user
input, malformed data, codec failures, and queries that reference state
the knowledge base does not hold.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ValidationError(ReproError, ValueError):
    """An argument supplied by the caller is outside its legal domain.

    Also a :class:`ValueError` so that idiomatic ``except ValueError``
    call sites keep working.
    """


class DataFormatError(ReproError, ValueError):
    """Raw input data (transactions, reports, files) is malformed."""


class CodecError(ReproError):
    """Encoding or decoding of an archived byte stream failed."""


class UnknownRuleError(ReproError, KeyError):
    """A rule identifier was requested that the archive does not hold."""


class UnknownWindowError(ReproError, KeyError):
    """A time window was requested that the knowledge base does not cover."""


class QueryError(ReproError):
    """An online query is inconsistent (e.g. empty period set, bad mode)."""


class ProtocolError(ReproError):
    """A network request violates the serving wire protocol.

    Raised by the serving tier (:mod:`repro.serve`) for malformed HTTP
    framing or JSON request bodies — client errors that map to 4xx
    responses, as opposed to :class:`ValidationError`/:class:`QueryError`
    which describe well-formed requests with out-of-domain contents.
    """


class NotBuiltError(ReproError, RuntimeError):
    """An online operation ran before the offline knowledge base was built."""


class BuildInFlightError(ReproError):
    """A snapshot publish was requested while another build is in flight.

    :meth:`repro.core.IncrementalTara.publish` admits one writer at a
    time; the serving tier maps this error to HTTP 409 so admin clients
    can retry once the in-flight build lands.
    """


class RetiredSnapshotError(ReproError, RuntimeError):
    """A pin was attempted on a snapshot whose last reader already drained.

    Unreachable through the supported API — the publisher hands out
    handles only for the current (never-retired) snapshot — but raised
    defensively instead of silently resurrecting freed state.
    """
