"""Variable-length integer codec used by the TAR Archive.

The paper stores each rule's per-window parameter values in a compact
archive ("our specially designed encoding and decoding strategies achieve
fast access", Section 2.1.5).  We realize that design with the classic
LEB128-style *varint*: small non-negative integers occupy one byte, and
each additional 7 bits of magnitude costs one more byte.  Combined with
delta-encoding of window ids and counts (see
:mod:`repro.core.archive`), the typical archived value fits in 1-2 bytes.

A zigzag transform maps signed deltas onto unsigned varints so that small
negative deltas stay small on the wire.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.common.errors import CodecError

_CONTINUATION = 0x80
_PAYLOAD = 0x7F


def encode_uvarint(value: int, out: bytearray) -> None:
    """Append the unsigned varint encoding of *value* to *out*."""
    if value < 0:
        raise CodecError(f"uvarint cannot encode negative value {value}")
    while True:
        byte = value & _PAYLOAD
        value >>= 7
        if value:
            out.append(byte | _CONTINUATION)
        else:
            out.append(byte)
            return


def decode_uvarint(data: bytes, offset: int) -> Tuple[int, int]:
    """Decode one unsigned varint from *data* starting at *offset*.

    Returns ``(value, next_offset)``.
    """
    result = 0
    shift = 0
    position = offset
    while True:
        if position >= len(data):
            raise CodecError("truncated uvarint")
        byte = data[position]
        position += 1
        result |= (byte & _PAYLOAD) << shift
        if not byte & _CONTINUATION:
            return result, position
        shift += 7
        if shift > 63:
            raise CodecError("uvarint too long (more than 64 bits)")


def zigzag(value: int) -> int:
    """Map a signed integer to an unsigned one with small magnitudes first.

    ``0 -> 0, -1 -> 1, 1 -> 2, -2 -> 3, ...``
    """
    return (value << 1) ^ (value >> 63) if value < 0 else value << 1


def unzigzag(value: int) -> int:
    """Inverse of :func:`zigzag`."""
    return (value >> 1) ^ -(value & 1)


def encode_svarint(value: int, out: bytearray) -> None:
    """Append the zigzag varint encoding of a signed *value* to *out*."""
    encode_uvarint(zigzag(value), out)


def decode_svarint(data: bytes, offset: int) -> Tuple[int, int]:
    """Decode one signed (zigzag) varint; returns ``(value, next_offset)``."""
    raw, position = decode_uvarint(data, offset)
    return unzigzag(raw), position


def encode_uvarint_sequence(values: Iterable[int]) -> bytes:
    """Encode an iterable of unsigned integers as concatenated varints."""
    out = bytearray()
    for value in values:
        encode_uvarint(value, out)
    return bytes(out)


def decode_uvarint_sequence(data: bytes) -> List[int]:
    """Decode a buffer written by :func:`encode_uvarint_sequence`."""
    values: List[int] = []
    offset = 0
    while offset < len(data):
        value, offset = decode_uvarint(data, offset)
        values.append(value)
    return values
