"""Variable-length integer codec used by the TAR Archive.

The paper stores each rule's per-window parameter values in a compact
archive ("our specially designed encoding and decoding strategies achieve
fast access", Section 2.1.5).  We realize that design with the classic
LEB128-style *varint*: small non-negative integers occupy one byte, and
each additional 7 bits of magnitude costs one more byte.  Combined with
delta-encoding of window ids and counts (see
:mod:`repro.core.archive`), the typical archived value fits in 1-2 bytes.

A zigzag transform maps signed deltas onto unsigned varints so that small
negative deltas stay small on the wire.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.common.errors import CodecError

_CONTINUATION = 0x80
_PAYLOAD = 0x7F

#: The codec is a 64-bit wire format: 10 bytes of 7 payload bits cover
#: every ``uint64``.  Hard caps on both directions keep a malformed or
#: adversarial buffer from consuming unbounded bytes (or memory) and
#: keep encode/decode exactly inverse of each other.
UINT64_MAX = 2**64 - 1
MAX_UVARINT_BYTES = 10


def encode_uvarint(value: int, out: bytearray) -> None:
    """Append the unsigned varint encoding of *value* to *out*.

    *value* must fit the 64-bit wire format; out-of-range values raise
    :class:`CodecError` rather than emitting bytes a compliant decoder
    would reject.
    """
    if value < 0:
        raise CodecError(f"uvarint cannot encode negative value {value}")
    if value > UINT64_MAX:
        raise CodecError(f"uvarint cannot encode {value} (exceeds 64 bits)")
    while True:
        byte = value & _PAYLOAD
        value >>= 7
        if value:
            out.append(byte | _CONTINUATION)
        else:
            out.append(byte)
            return


def decode_uvarint(data: bytes, offset: int) -> Tuple[int, int]:
    """Decode one unsigned varint from *data* starting at *offset*.

    Returns ``(value, next_offset)``.  Raises :class:`CodecError` for an
    *offset* outside ``[0, len(data))``, a varint cut off by the end of
    the buffer, a continuation run past :data:`MAX_UVARINT_BYTES`, or an
    encoding whose value overflows 64 bits — a decoder fed garbage must
    fail loudly, never loop or return a wrapped value.
    """
    if offset < 0 or offset >= len(data):
        raise CodecError(
            f"decode offset {offset} outside buffer of {len(data)} byte(s)"
        )
    result = 0
    shift = 0
    position = offset
    while True:
        if position >= len(data):
            raise CodecError("truncated uvarint")
        byte = data[position]
        position += 1
        result |= (byte & _PAYLOAD) << shift
        if not byte & _CONTINUATION:
            if result > UINT64_MAX:
                raise CodecError("uvarint overflows 64 bits")
            return result, position
        shift += 7
        if position - offset >= MAX_UVARINT_BYTES:
            raise CodecError(
                f"uvarint too long (continuation past {MAX_UVARINT_BYTES} bytes)"
            )


def zigzag(value: int) -> int:
    """Map a signed integer to an unsigned one with small magnitudes first.

    ``0 -> 0, -1 -> 1, 1 -> 2, -2 -> 3, ...``
    """
    return (value << 1) ^ (value >> 63) if value < 0 else value << 1


def unzigzag(value: int) -> int:
    """Inverse of :func:`zigzag`."""
    return (value >> 1) ^ -(value & 1)


def encode_svarint(value: int, out: bytearray) -> None:
    """Append the zigzag varint encoding of a signed *value* to *out*."""
    encode_uvarint(zigzag(value), out)


def decode_svarint(data: bytes, offset: int) -> Tuple[int, int]:
    """Decode one signed (zigzag) varint; returns ``(value, next_offset)``."""
    raw, position = decode_uvarint(data, offset)
    return unzigzag(raw), position


def encode_uvarint_sequence(values: Iterable[int]) -> bytes:
    """Encode an iterable of unsigned integers as concatenated varints."""
    out = bytearray()
    for value in values:
        encode_uvarint(value, out)
    return bytes(out)


def decode_uvarint_sequence(data: bytes) -> List[int]:
    """Decode a buffer written by :func:`encode_uvarint_sequence`."""
    values: List[int] = []
    offset = 0
    while offset < len(data):
        value, offset = decode_uvarint(data, offset)
        values.append(value)
    return values
