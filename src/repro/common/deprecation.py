"""Once-per-process deprecation warnings with a test-visible registry.

The PR-8 API redesign keeps every legacy entry point alive as a thin
shim — ``IncrementalTara.append_batch``, the PR-3 explorer methods, the
hidden CLI flag aliases — but each shim must tell its caller exactly
once that it is living on borrowed time.  Python's own
``warnings.simplefilter("once")`` machinery dedupes per *location*, not
per *API*, and is global mutable state the test suite resets at will;
this module keeps its own keyed registry instead so the contract is
"one warning per deprecated surface per process", independent of the
interpreter's warning filters.

The registry is intentionally tiny: :func:`warn_deprecated` warns the
first time a key is seen, and :func:`reset_deprecation_registry` clears
the registry so tests can assert on the warning itself
(``pytest.warns(DeprecationWarning)``) without being starved by an
earlier test having consumed the one shot.
"""

from __future__ import annotations

import threading
import warnings
from typing import Set

_registry_lock = threading.Lock()
_warned_keys: Set[str] = set()


def warn_deprecated(key: str, message: str, *, stacklevel: int = 3) -> None:
    """Emit ``DeprecationWarning(message)`` the first time *key* is seen.

    *key* names the deprecated surface (``"explorer.compare"``,
    ``"cli.--min-support"``); subsequent calls with the same key are
    silent for the rest of the process.  *stacklevel* defaults to 3 so
    the warning points at the caller of the deprecated shim, not at the
    shim or at this helper.
    """
    with _registry_lock:
        if key in _warned_keys:
            return
        _warned_keys.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


def reset_deprecation_registry() -> None:
    """Forget every warned key (test aid; see the module docstring)."""
    with _registry_lock:
        _warned_keys.clear()


def deprecation_registry_snapshot() -> Set[str]:
    """The keys warned so far (test aid; returns a copy)."""
    with _registry_lock:
        return set(_warned_keys)
