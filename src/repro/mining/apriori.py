"""Apriori frequent-itemset mining (Agrawal & Srikant, VLDB'94).

The reference level-wise miner: generate candidate ``k``-itemsets from
frequent ``(k-1)``-itemsets via the join + prune steps, then count each
candidate's occurrences with one pass over the transactions.  It is the
engine behind the DCTAR baseline ("derives the ruleset directly from the
raw data") and serves as the correctness oracle for the faster miners in
the test suite.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.data.items import Itemset
from repro.mining.itemsets import (
    FrequentItemsets,
    TransactionLike,
    as_itemsets,
    min_count_for,
)


def _frequent_singletons(
    itemsets: List[Itemset], min_count: int
) -> Dict[Itemset, int]:
    counts: Dict[int, int] = {}
    for transaction in itemsets:
        for item in transaction:
            counts[item] = counts.get(item, 0) + 1
    return {
        (item,): count for item, count in counts.items() if count >= min_count
    }


def generate_candidates(frequent_previous: Set[Itemset], k: int) -> List[Itemset]:
    """Apriori-gen: join frequent ``(k-1)``-itemsets sharing a ``(k-2)``-prefix,
    then prune candidates with any infrequent ``(k-1)``-subset.

    Input itemsets are canonical (sorted tuples), so the classic
    prefix-join applies directly.
    """
    by_prefix: Dict[Itemset, List[int]] = {}
    for itemset in frequent_previous:
        by_prefix.setdefault(itemset[:-1], []).append(itemset[-1])
    candidates: List[Itemset] = []
    for prefix, tails in by_prefix.items():
        tails.sort()
        for i, a in enumerate(tails):
            for b in tails[i + 1 :]:
                candidate = prefix + (a, b)
                # prune step: all (k-1)-subsets must be frequent; subsets
                # obtained by dropping one of the *prefix* positions are
                # the only ones not guaranteed by construction.
                if all(
                    candidate[:drop] + candidate[drop + 1 :] in frequent_previous
                    for drop in range(k - 2)
                ):
                    candidates.append(candidate)
    return candidates


def _count_candidates(
    itemsets: List[Itemset], candidates: List[Itemset], k: int
) -> Dict[Itemset, int]:
    """One counting pass; candidates are matched through a hash set.

    For small candidate lists we test each candidate against the
    transaction's item set; for large lists we enumerate the
    transaction's k-subsets only when the transaction is short enough
    for that to win.  The simple containment test is the robust default.
    """
    candidate_set: Dict[Itemset, int] = {c: 0 for c in candidates}
    for transaction in itemsets:
        if len(transaction) < k:
            continue
        transaction_items = set(transaction)
        for candidate in candidates:
            count_ok = True
            for item in candidate:
                if item not in transaction_items:
                    count_ok = False
                    break
            if count_ok:
                candidate_set[candidate] += 1
    return candidate_set


def mine_apriori(
    transactions: Iterable[TransactionLike],
    min_support: float,
    *,
    max_size: int | None = None,
) -> FrequentItemsets:
    """Mine all frequent itemsets at fractional *min_support*.

    Args:
        transactions: transactions or raw item sequences.
        min_support: fraction in ``[0, 1]``; converted to the smallest
            satisfying absolute count (at least 1).
        max_size: optional cap on itemset cardinality (``None`` = no cap).

    Returns:
        :class:`FrequentItemsets` with counts for every frequent itemset.
    """
    itemsets = as_itemsets(transactions)
    n = len(itemsets)
    min_count = min_count_for(min_support, n)
    result = FrequentItemsets(transaction_count=n, min_count=min_count)
    if n == 0:
        return result

    current = _frequent_singletons(itemsets, min_count)
    k = 1
    while current:
        result.counts.update(current)
        k += 1
        if max_size is not None and k > max_size:
            break
        candidates = generate_candidates(set(current), k)
        if not candidates:
            break
        counted = _count_candidates(itemsets, candidates, k)
        current = {
            itemset: count
            for itemset, count in counted.items()
            if count >= min_count
        }
    return result
