"""Association rules, the rule catalog, and rule derivation.

A temporal association rule (Definition 1) is ``X ⇒ Y`` with disjoint
antecedent/consequent plus the time period it was derived from.  Rule
*identity* is time-independent — the same ``X ⇒ Y`` observed in two
windows is one rule with two parametric locations — so the library
interns each distinct (antecedent, consequent) pair once in a
:class:`RuleCatalog` and refers to it everywhere by a dense integer id.
That id is what the TAR Archive and the EPS index store.

Rule derivation follows ap-genrules (Agrawal & Srikant): for each
frequent itemset, consequents grow level-wise and a consequent is pruned
as soon as its confidence drops below threshold, which is sound because
moving items from the antecedent to the consequent can only lower
confidence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.common.errors import UnknownRuleError, ValidationError
from repro.common.validation import check_fraction
from repro.data.items import ItemVocabulary, Itemset, canonical_itemset, itemset_union
from repro.mining.itemsets import FrequentItemsets

RuleId = int


@dataclass(frozen=True)
class Rule:
    """An association rule ``antecedent ⇒ consequent`` (canonical itemsets)."""

    antecedent: Itemset
    consequent: Itemset

    def __post_init__(self) -> None:
        if not self.antecedent or not self.consequent:
            raise ValidationError("rule sides must be non-empty")
        if set(self.antecedent) & set(self.consequent):
            raise ValidationError(
                f"rule sides overlap: {self.antecedent} ⇒ {self.consequent}"
            )

    @property
    def items(self) -> Itemset:
        """The union ``X ∪ Y`` whose support defines the rule's support."""
        return itemset_union(self.antecedent, self.consequent)

    def format(self, vocabulary: Optional[ItemVocabulary] = None) -> str:
        """Render the rule, optionally translating ids back to names."""

        def side(itemset: Itemset) -> str:
            if vocabulary is None:
                return "{" + ", ".join(str(i) for i in itemset) + "}"
            return "{" + ", ".join(vocabulary.decode(itemset)) + "}"

        return f"{side(self.antecedent)} => {side(self.consequent)}"


@dataclass(frozen=True)
class ScoredRule:
    """A rule with the parameter values measured in one window.

    Carries the raw counts (rule itemset, antecedent, consequent,
    window size) so every registered measure — not just support and
    confidence — is reconstructible downstream.
    """

    rule_id: RuleId
    rule: Rule
    support: float
    confidence: float
    rule_count: int
    antecedent_count: int
    window_size: int
    consequent_count: int = 0

    @property
    def lift(self) -> float:
        """Formula 3 from the carried counts (0.0 when undefined)."""
        denominator = self.antecedent_count * self.consequent_count
        if denominator == 0:
            return 0.0
        return self.rule_count * self.window_size / denominator


class RuleCatalog:
    """Interning table assigning a dense id to each distinct rule.

    Shared by all windows of one knowledge base: a rule keeps its id for
    its entire lifetime across the evolving dataset, which is what lets
    the archive store one compact series per rule.
    """

    def __init__(self) -> None:
        self._rule_to_id: Dict[Tuple[Itemset, Itemset], RuleId] = {}
        self._rules: List[Rule] = []

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules)

    def intern(self, rule: Rule) -> RuleId:
        """Return the id of *rule*, assigning the next id if unseen."""
        key = (rule.antecedent, rule.consequent)
        existing = self._rule_to_id.get(key)
        if existing is not None:
            return existing
        rule_id = len(self._rules)
        self._rule_to_id[key] = rule_id
        self._rules.append(rule)
        return rule_id

    def id_of(self, rule: Rule) -> RuleId:
        """Id of an already-interned rule; raises if never seen."""
        try:
            return self._rule_to_id[(rule.antecedent, rule.consequent)]
        except KeyError:
            raise UnknownRuleError(f"rule {rule} was never interned") from None

    def get(self, rule_id: RuleId) -> Rule:
        """The rule interned under *rule_id*; raises for unknown ids."""
        if 0 <= rule_id < len(self._rules):
            return self._rules[rule_id]
        raise UnknownRuleError(f"unknown rule id {rule_id}")

    def find(
        self, antecedent: Sequence[int], consequent: Sequence[int]
    ) -> Optional[RuleId]:
        """Id for the given sides, or ``None`` if the rule was never seen."""
        key = (canonical_itemset(antecedent), canonical_itemset(consequent))
        return self._rule_to_id.get(key)


def derive_rules(
    itemsets: FrequentItemsets,
    min_confidence: float,
    *,
    catalog: Optional[RuleCatalog] = None,
) -> List[ScoredRule]:
    """Derive all rules meeting *min_confidence* from frequent itemsets.

    Every frequent itemset ``Z`` (|Z| >= 2) is split into ``X ⇒ Z \\ X``;
    supports come from the itemset counts, so the result is exact with
    respect to the miner that produced *itemsets*.

    Itemsets are processed in canonical (sorted-tuple) order, so the ids
    a shared catalog assigns do not depend on which miner produced
    *itemsets* — the property the cross-miner fingerprint gate of
    ``repro bench`` enforces.  Count lookups ride on the mining kernels'
    canonical prefix-class layout: every key in ``itemsets.counts`` is a
    sorted tuple and every antecedent/consequent built here is one too,
    so subsets are looked up directly without re-canonicalizing (no
    re-sort, no fresh tuple, one hash per lookup).

    Args:
        itemsets: mined frequent itemsets with counts.
        min_confidence: fractional threshold in ``[0, 1]``.
        catalog: rule catalog to intern into (a fresh one when omitted).

    Returns:
        One :class:`ScoredRule` per derived rule, in catalog-id order.
    """
    check_fraction(min_confidence, "min_confidence")
    if catalog is None:
        catalog = RuleCatalog()
    results: List[ScoredRule] = []
    n = itemsets.transaction_count
    counts = itemsets.counts

    for itemset, itemset_count in sorted(counts.items()):
        if len(itemset) < 2:
            continue
        support = itemset_count / n if n else 0.0
        # Level-wise consequent growth with confidence-based pruning.
        consequents: List[Itemset] = [(item,) for item in itemset]
        while consequents:
            surviving: List[Itemset] = []
            for consequent in consequents:
                consequent_items = set(consequent)
                antecedent = tuple(
                    i for i in itemset if i not in consequent_items
                )
                if not antecedent:
                    continue
                antecedent_count = counts.get(antecedent, 0)
                if antecedent_count == 0:
                    # Cannot happen for a correct miner (downward closure)
                    # but guard against inconsistent inputs.
                    continue
                confidence = itemset_count / antecedent_count
                if confidence < min_confidence:
                    continue
                surviving.append(consequent)
                rule = Rule(antecedent=antecedent, consequent=consequent)
                rule_id = catalog.intern(rule)
                results.append(
                    ScoredRule(
                        rule_id=rule_id,
                        rule=rule,
                        support=support,
                        confidence=confidence,
                        rule_count=itemset_count,
                        antecedent_count=antecedent_count,
                        window_size=n,
                        consequent_count=counts.get(consequent, 0),
                    )
                )
            if not surviving:
                break
            consequents = _grow_consequents(surviving, len(itemset))
    results.sort(key=lambda scored: scored.rule_id)
    return results


def _grow_consequents(frequent: List[Itemset], itemset_size: int) -> List[Itemset]:
    """Join surviving k-consequents into (k+1)-candidates (apriori-gen)."""
    size = len(frequent[0]) + 1
    if size >= itemset_size:
        return []
    survivors = set(frequent)
    by_prefix: Dict[Itemset, List[int]] = {}
    for consequent in frequent:
        by_prefix.setdefault(consequent[:-1], []).append(consequent[-1])
    candidates: List[Itemset] = []
    for prefix, tails in by_prefix.items():
        tails.sort()
        for i, a in enumerate(tails):
            for b in tails[i + 1 :]:
                candidate = prefix + (a, b)
                if all(
                    candidate[:drop] + candidate[drop + 1 :] in survivors
                    for drop in range(size - 1)
                ):
                    candidates.append(candidate)
    return candidates
