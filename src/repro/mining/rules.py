"""Association rules, the rule catalog, and rule derivation.

A temporal association rule (Definition 1) is ``X ⇒ Y`` with disjoint
antecedent/consequent plus the time period it was derived from.  Rule
*identity* is time-independent — the same ``X ⇒ Y`` observed in two
windows is one rule with two parametric locations — so the library
interns each distinct (antecedent, consequent) pair once in a
:class:`RuleCatalog` and refers to it everywhere by a dense integer id.
That id is what the TAR Archive and the EPS index store.

Rule derivation follows ap-genrules (Agrawal & Srikant): for each
frequent itemset, consequents grow level-wise and a consequent is pruned
as soon as its confidence drops below threshold, which is sound because
moving items from the antecedent to the consequent can only lower
confidence.

The derivation loop is count-native: for every itemset the catalog
memoizes a *split plan* — the full level/lex enumeration of consequent
candidates with their precomputed antecedents and immediate-subset
dependencies — so an itemset re-appearing in a later window replays the
plan against that window's counts instead of re-running ap-genrules
(no per-window ``set``/``tuple`` rebuilding, no apriori-gen joins).
Rules are interned by tuple key; the :class:`Rule` object is
constructed and validated once, on first intern, and the catalog's
canonical instance is reused for every later window.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from operator import itemgetter
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
    cast,
)

from repro.common.errors import UnknownRuleError, ValidationError
from repro.common.validation import check_fraction
from repro.data.items import ItemVocabulary, Itemset, canonical_itemset, itemset_union
from repro.mining.itemsets import FrequentItemsets

RuleId = int


@dataclass(frozen=True)
class Rule:
    """An association rule ``antecedent ⇒ consequent`` (canonical itemsets)."""

    antecedent: Itemset
    consequent: Itemset

    def __post_init__(self) -> None:
        if not self.antecedent or not self.consequent:
            raise ValidationError("rule sides must be non-empty")
        if not set(self.antecedent).isdisjoint(self.consequent):
            raise ValidationError(
                f"rule sides overlap: {self.antecedent} ⇒ {self.consequent}"
            )

    @property
    def items(self) -> Itemset:
        """The union ``X ∪ Y`` whose support defines the rule's support."""
        return itemset_union(self.antecedent, self.consequent)

    def format(self, vocabulary: Optional[ItemVocabulary] = None) -> str:
        """Render the rule, optionally translating ids back to names."""

        def side(itemset: Itemset) -> str:
            if vocabulary is None:
                return "{" + ", ".join(str(i) for i in itemset) + "}"
            return "{" + ", ".join(vocabulary.decode(itemset)) + "}"

        return f"{side(self.antecedent)} => {side(self.consequent)}"


class ScoredRule(NamedTuple):
    """A rule with the parameter values measured in one window.

    Carries the raw counts (rule itemset, antecedent, consequent,
    window size) so every registered measure — not just support and
    confidence — is reconstructible downstream.

    A ``NamedTuple`` rather than a frozen dataclass: the offline build
    creates one instance per scored rule per window (tens of thousands
    per build), and tuple construction is several times cheaper than a
    frozen dataclass ``__init__`` while keeping the same immutability
    and field access.
    """

    rule_id: RuleId
    rule: Rule
    support: float
    confidence: float
    rule_count: int
    antecedent_count: int
    window_size: int
    consequent_count: int = 0

    @property
    def lift(self) -> float:
        """Formula 3 from the carried counts (0.0 when undefined)."""
        denominator = self.antecedent_count * self.consequent_count
        if denominator == 0:
            return 0.0
        return self.rule_count * self.window_size / denominator


#: One ap-genrules candidate of an itemset's memoized derivation plan:
#: the 4-slot list ``[antecedent, consequent, dependencies, interned]``.
#: ``dependencies`` holds the previous-level positions of the
#: consequent's immediate subsets (all of which must have survived for
#: the candidate to be considered); ``interned`` starts as ``None`` and
#: caches the ``(rule_id, Rule)`` pair once the split first passes the
#: confidence threshold, so a replay in a later window touches no
#: interning dict at all.  A plain list rather than a slotted class:
#: plans materialize one entry per consequent subset per distinct
#: itemset, and a list literal plus a one-step unpack in the replay
#: loop beats a Python-level ``__init__`` and four attribute loads.
PlannedSplit = List[Any]
SplitPlan = List[List[PlannedSplit]]
_SplitTemplate = Tuple[
    Tuple[Tuple[Callable[[Itemset], Itemset], Callable[[Itemset], Itemset], Tuple[int, ...]], ...],
    ...,
]

#: Itemsets larger than this fall back to the plan-free derivation path:
#: a plan enumerates all 2^k consequent subsets, which the confidence
#: pruning of the direct search usually never visits for deep itemsets.
PLAN_SIZE_CAP = 12


def _tuple_getter(indices: Tuple[int, ...]) -> Callable[[Itemset], Itemset]:
    """A callable extracting *indices* from an itemset as a tuple.

    ``operator.itemgetter`` is the C-speed path but returns a bare item
    for a single index, so size-1 sides get a dedicated closure.
    """
    if len(indices) == 1:
        index = indices[0]
        return lambda items: (items[index],)
    getter = itemgetter(*indices)
    return cast("Callable[[Itemset], Itemset]", getter)


# Split templates are a function of itemset *size* alone: positions of
# each consequent's items, positions of the complementary antecedent,
# and the previous-level dependency slots.  One template per size serves
# every itemset of that size, so the per-itemset plan materialization is
# a row of itemgetter calls.
_SPLIT_TEMPLATES: Dict[int, _SplitTemplate] = {}


def _split_template(size: int) -> _SplitTemplate:
    template = _SPLIT_TEMPLATES.get(size)
    if template is not None:
        return template
    levels: List[Tuple[Tuple[Callable[[Itemset], Itemset], Callable[[Itemset], Itemset], Tuple[int, ...]], ...]] = []
    previous_positions: Dict[Tuple[int, ...], int] = {}
    for level in range(1, size):
        entries: List[
            Tuple[Callable[[Itemset], Itemset], Callable[[Itemset], Itemset], Tuple[int, ...]]
        ] = []
        positions: Dict[Tuple[int, ...], int] = {}
        for position, chosen in enumerate(combinations(range(size), level)):
            chosen_set = set(chosen)
            antecedent_indices = tuple(
                i for i in range(size) if i not in chosen_set
            )
            dependencies = (
                tuple(
                    previous_positions[chosen[:drop] + chosen[drop + 1 :]]
                    for drop in range(level)
                )
                if level > 1
                else ()
            )
            positions[chosen] = position
            entries.append(
                (_tuple_getter(antecedent_indices), _tuple_getter(chosen), dependencies)
            )
        levels.append(tuple(entries))
        previous_positions = positions
    template = tuple(levels)
    _SPLIT_TEMPLATES[size] = template
    return template


def _build_split_plan(itemset: Itemset) -> SplitPlan:
    """Materialize the ap-genrules enumeration structure of one itemset.

    Level ``l`` lists every ``l``-item consequent in lexicographic
    order — exactly the order the level-wise search visits candidates
    in — with its antecedent and the previous-level positions of its
    immediate subsets.  Replaying the plan with per-window counts
    reproduces ap-genrules bit-for-bit: a candidate is *considered* iff
    all its immediate subsets survived (the apriori-gen join + subset
    check), and *survives* iff it is considered and meets the
    confidence threshold.
    """
    return [
        [
            [antecedent_of(itemset), consequent_of(itemset), dependencies, None]
            for antecedent_of, consequent_of, dependencies in level
        ]
        for level in _split_template(len(itemset))
    ]


class RuleCatalog:
    """Interning table assigning a dense id to each distinct rule.

    Shared by all windows of one knowledge base: a rule keeps its id for
    its entire lifetime across the evolving dataset, which is what lets
    the archive store one compact series per rule.  It also owns the
    derivation memo (:meth:`split_plan`): plans are a property of the
    itemset alone, so sharing the catalog across windows lets every
    re-appearance of an itemset replay its plan instead of re-running
    ap-genrules.
    """

    def __init__(self) -> None:
        self._rule_to_id: Dict[Tuple[Itemset, Itemset], RuleId] = {}
        self._rules: List[Rule] = []
        self._split_plans: Dict[Itemset, SplitPlan] = {}

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules)

    def clone(self) -> "RuleCatalog":
        """An independent copy for copy-on-write snapshot publication.

        The id table and rule list are copied (interning into the clone
        never changes this catalog); the :class:`Rule` values themselves
        are immutable and shared.  Split plans are derivation scratch —
        replayed and overwritten during mining, never read by queries —
        so the memo dict is copied shallowly: the clone reuses existing
        plans but memoizes new itemsets privately.
        """
        copy = RuleCatalog()
        copy._rule_to_id = dict(self._rule_to_id)
        copy._rules = list(self._rules)
        copy._split_plans = dict(self._split_plans)
        return copy

    def intern(self, rule: Rule) -> RuleId:
        """Return the id of *rule*, assigning the next id if unseen."""
        key = (rule.antecedent, rule.consequent)
        existing = self._rule_to_id.get(key)
        if existing is not None:
            return existing
        rule_id = len(self._rules)
        self._rule_to_id[key] = rule_id
        self._rules.append(rule)
        return rule_id

    def intern_parts(self, antecedent: Itemset, consequent: Itemset) -> Tuple[RuleId, Rule]:
        """Intern by tuple key; construct the :class:`Rule` only on a miss.

        The hot-path twin of :meth:`intern`: a rule re-derived in a
        later window costs one dict hit and returns the catalog's
        canonical (already validated) instance instead of building and
        re-validating a fresh ``Rule``.
        """
        key = (antecedent, consequent)
        existing = self._rule_to_id.get(key)
        if existing is not None:
            return existing, self._rules[existing]
        rule = Rule(antecedent, consequent)
        rule_id = len(self._rules)
        self._rule_to_id[key] = rule_id
        self._rules.append(rule)
        return rule_id, rule

    def split_plan(self, itemset: Itemset) -> Optional[SplitPlan]:
        """The memoized derivation plan of *itemset* (see module docstring).

        Returns ``None`` for itemsets above :data:`PLAN_SIZE_CAP`, whose
        full subset enumeration would dwarf the pruned direct search.
        """
        plan = self._split_plans.get(itemset)
        if plan is None:
            if len(itemset) > PLAN_SIZE_CAP:
                return None
            plan = _build_split_plan(itemset)
            self._split_plans[itemset] = plan
        return plan

    def id_of(self, rule: Rule) -> RuleId:
        """Id of an already-interned rule; raises if never seen."""
        try:
            return self._rule_to_id[(rule.antecedent, rule.consequent)]
        except KeyError:
            raise UnknownRuleError(f"rule {rule} was never interned") from None

    def get(self, rule_id: RuleId) -> Rule:
        """The rule interned under *rule_id*; raises for unknown ids."""
        if 0 <= rule_id < len(self._rules):
            return self._rules[rule_id]
        raise UnknownRuleError(f"unknown rule id {rule_id}")

    def find(
        self, antecedent: Sequence[int], consequent: Sequence[int]
    ) -> Optional[RuleId]:
        """Id for the given sides, or ``None`` if the rule was never seen."""
        key = (canonical_itemset(antecedent), canonical_itemset(consequent))
        return self._rule_to_id.get(key)


def derive_rules(
    itemsets: FrequentItemsets,
    min_confidence: float,
    *,
    catalog: Optional[RuleCatalog] = None,
) -> List[ScoredRule]:
    """Derive all rules meeting *min_confidence* from frequent itemsets.

    Every frequent itemset ``Z`` (|Z| >= 2) is split into ``X ⇒ Z \\ X``;
    supports come from the itemset counts, so the result is exact with
    respect to the miner that produced *itemsets*.

    Itemsets are processed in canonical (sorted-tuple) order, so the ids
    a shared catalog assigns do not depend on which miner produced
    *itemsets* — the property the cross-miner fingerprint gate of
    ``repro bench`` enforces.  Count lookups ride on the mining kernels'
    canonical prefix-class layout: every key in ``itemsets.counts`` is a
    sorted tuple and every antecedent/consequent built here is one too,
    so subsets are looked up directly without re-canonicalizing (no
    re-sort, no fresh tuple, one hash per lookup).

    The pass is fused and count-native: per itemset the catalog's
    memoized split plan is replayed against this window's counts
    (:meth:`RuleCatalog.split_plan`), and every surviving split interns
    by tuple key (:meth:`RuleCatalog.intern_parts`) — a ``Rule`` is
    constructed and validated only the first time the knowledge base
    ever sees it.

    Args:
        itemsets: mined frequent itemsets with counts.
        min_confidence: fractional threshold in ``[0, 1]``.
        catalog: rule catalog to intern into (a fresh one when omitted).

    Returns:
        One :class:`ScoredRule` per derived rule, in catalog-id order.
    """
    check_fraction(min_confidence, "min_confidence")
    if catalog is None:
        catalog = RuleCatalog()
    results: List[ScoredRule] = []
    n = itemsets.transaction_count
    counts = itemsets.counts
    counts_get = counts.get
    intern_parts = catalog.intern_parts
    append = results.append
    scored_rule = ScoredRule

    for itemset, itemset_count in sorted(counts.items()):
        if len(itemset) < 2:
            continue
        support = itemset_count / n if n else 0.0
        plan = catalog.split_plan(itemset)
        if plan is None:
            _derive_itemset_levelwise(
                itemset, itemset_count, support, counts, n,
                min_confidence, catalog, results,
            )
            continue
        # Replay the memoized plan: same visit order, same pruning, no
        # per-window set/tuple construction, and — after the first
        # window that derived a split — no interning dict either.
        alive_previous: List[bool] = []
        for level in plan:
            alive = [False] * len(level)
            any_alive = False
            for position, split in enumerate(level):
                antecedent, consequent, dependencies, interned = split
                for dependency in dependencies:
                    if not alive_previous[dependency]:
                        break
                else:
                    antecedent_count = counts_get(antecedent, 0)
                    if antecedent_count == 0:
                        # Cannot happen for a correct miner (downward
                        # closure) but guard against inconsistent inputs.
                        continue
                    confidence = itemset_count / antecedent_count
                    if confidence < min_confidence:
                        continue
                    alive[position] = True
                    any_alive = True
                    if interned is None:
                        interned = intern_parts(antecedent, consequent)
                        split[3] = interned
                    rule_id, rule = interned
                    # Positional construction: field order is pinned by
                    # the NamedTuple definition above.
                    append(
                        scored_rule(
                            rule_id,
                            rule,
                            support,
                            confidence,
                            itemset_count,
                            antecedent_count,
                            n,
                            counts_get(consequent, 0),
                        )
                    )
            if not any_alive:
                break
            alive_previous = alive
    # rule_id is the first ScoredRule field; itemgetter keeps the final
    # catalog-id ordering sort entirely in C.
    results.sort(key=itemgetter(0))
    return results


def _derive_itemset_levelwise(
    itemset: Itemset,
    itemset_count: int,
    support: float,
    counts: Dict[Itemset, int],
    n: int,
    min_confidence: float,
    catalog: RuleCatalog,
    results: List[ScoredRule],
) -> None:
    """Plan-free ap-genrules for one itemset (above :data:`PLAN_SIZE_CAP`).

    Level-wise consequent growth with confidence-based pruning; visits
    candidates in the same order as a plan replay (level by level,
    lexicographic within a level), so which path an itemset takes never
    changes the derived rules or their catalog ids.
    """
    consequents: List[Itemset] = [(item,) for item in itemset]
    while consequents:
        surviving: List[Itemset] = []
        for consequent in consequents:
            consequent_items = set(consequent)
            antecedent = tuple(
                i for i in itemset if i not in consequent_items
            )
            if not antecedent:
                continue
            antecedent_count = counts.get(antecedent, 0)
            if antecedent_count == 0:
                # Cannot happen for a correct miner (downward closure)
                # but guard against inconsistent inputs.
                continue
            confidence = itemset_count / antecedent_count
            if confidence < min_confidence:
                continue
            surviving.append(consequent)
            rule_id, rule = catalog.intern_parts(antecedent, consequent)
            results.append(
                ScoredRule(
                    rule_id=rule_id,
                    rule=rule,
                    support=support,
                    confidence=confidence,
                    rule_count=itemset_count,
                    antecedent_count=antecedent_count,
                    window_size=n,
                    consequent_count=counts.get(consequent, 0),
                )
            )
        if not surviving:
            break
        consequents = _grow_consequents(surviving, len(itemset))


def _grow_consequents(frequent: List[Itemset], itemset_size: int) -> List[Itemset]:
    """Join surviving k-consequents into (k+1)-candidates (apriori-gen)."""
    size = len(frequent[0]) + 1
    if size >= itemset_size:
        return []
    survivors = set(frequent)
    by_prefix: Dict[Itemset, List[int]] = {}
    for consequent in frequent:
        by_prefix.setdefault(consequent[:-1], []).append(consequent[-1])
    candidates: List[Itemset] = []
    for prefix, tails in by_prefix.items():
        tails.sort()
        for i, a in enumerate(tails):
            for b in tails[i + 1 :]:
                candidate = prefix + (a, b)
                if all(
                    candidate[:drop] + candidate[drop + 1 :] in survivors
                    for drop in range(size - 1)
                ):
                    candidates.append(candidate)
    return candidates
