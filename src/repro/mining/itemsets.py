"""Frequent-itemset results and shared mining plumbing.

All three itemset miners (Apriori, FP-Growth, H-Mine) return the same
:class:`FrequentItemsets` container: a mapping from canonical itemset to
absolute occurrence count, plus the number of transactions mined, so
supports are always reconstructible as exact ratios of integers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple, Union

from repro.common.errors import ValidationError
from repro.common.validation import check_fraction
from repro.data.items import Itemset, canonical_itemset
from repro.data.transactions import Transaction

TransactionLike = Union[Transaction, Itemset, Sequence[int]]


def as_itemsets(transactions: Iterable[TransactionLike]) -> List[Itemset]:
    """Normalize a mix of transactions / raw item sequences to itemsets."""
    normalized: List[Itemset] = []
    for transaction in transactions:
        if isinstance(transaction, Transaction):
            normalized.append(transaction.items)
        else:
            normalized.append(canonical_itemset(transaction))
    return normalized


def min_count_for(min_support: float, transaction_count: int) -> int:
    """Smallest absolute count satisfying a fractional support threshold.

    The paper's thresholds are fractions (Table 4); miners compare
    integer counts, so ``count >= ceil(min_support * n)`` — but a
    threshold of exactly 0 still requires count >= 1 (an itemset that
    never occurs is not 'frequent at support 0' in any useful sense).
    """
    check_fraction(min_support, "min_support")
    if transaction_count < 0:
        raise ValidationError("transaction_count must be >= 0")
    exact = min_support * transaction_count
    count = int(exact)
    if count < exact:
        count += 1
    return max(count, 1)


# Mutable by design: miners insert counts incrementally while walking
# their search space; the collection itself is never hashed or keyed.
@dataclass  # repro-lint: disable=R004
class FrequentItemsets:
    """Frequent itemsets with their absolute counts.

    Attributes:
        counts: canonical itemset -> number of containing transactions.
        transaction_count: size of the mined window (``|F(∅, D, T_i)|``).
        min_count: the absolute threshold the miner applied.
    """

    counts: Dict[Itemset, int] = field(default_factory=dict)
    transaction_count: int = 0
    min_count: int = 1

    def __len__(self) -> int:
        return len(self.counts)

    def __contains__(self, itemset: Itemset) -> bool:
        return canonical_itemset(itemset) in self.counts

    def __iter__(self) -> Iterator[Itemset]:
        return iter(self.counts)

    def count(self, itemset: Itemset) -> int:
        """Absolute count of *itemset*; 0 if it was not frequent."""
        return self.counts.get(canonical_itemset(itemset), 0)

    def support(self, itemset: Itemset) -> float:
        """Fractional support of *itemset*; 0.0 if not frequent or window empty."""
        if self.transaction_count == 0:
            return 0.0
        return self.count(itemset) / self.transaction_count

    def of_size(self, k: int) -> Dict[Itemset, int]:
        """The frequent *k*-itemsets with their counts."""
        return {s: c for s, c in self.counts.items() if len(s) == k}

    def max_size(self) -> int:
        """Cardinality of the largest frequent itemset (0 when empty)."""
        return max((len(s) for s in self.counts), default=0)

    def items(self) -> Iterator[Tuple[Itemset, int]]:
        """Iterate ``(itemset, count)`` pairs."""
        return iter(self.counts.items())

    def validate_downward_closure(self) -> None:
        """Check the Apriori invariant: every subset of a frequent itemset is
        frequent with a count at least as large.

        Used by tests and by the property-based suite as a cross-miner
        oracle; raises :class:`ValidationError` on the first violation.
        """
        for itemset, count in self.counts.items():
            if len(itemset) < 2:
                continue
            for drop in range(len(itemset)):
                subset = itemset[:drop] + itemset[drop + 1 :]
                subset_count = self.counts.get(subset)
                if subset_count is None:
                    raise ValidationError(
                        f"{itemset} frequent but subset {subset} missing"
                    )
                if subset_count < count:
                    raise ValidationError(
                        f"subset {subset} count {subset_count} < "
                        f"superset {itemset} count {count}"
                    )
