"""Vertical bitmap mining kernel (Eclat/dEclat over big-int bitmasks).

The fastest miner in the repo and the default per-window kernel of the
offline Association Generator.  Same search space as Eclat — depth-first
growth of prefix equivalence classes over vertical occurrence lists —
but the tidset of every item is a single Python big int whose bit *t* is
set when transaction *t* contains the item:

* intersection is one ``&`` on machine words (CPython processes 30-bit
  digits in C, ~30 tids per digit) instead of a hash-set walk,
* support is one ``int.bit_count()`` popcount instead of ``len``,
* a class switches to dEclat-style *diffsets* (``d(PX) = t(P) \\ t(PX)``)
  when the diffsets are smaller than the tidsets, which on dense windows
  shrinks the masks geometrically with depth,
* the class walk is an explicit stack, so mining depth is bounded by
  memory, never by the interpreter recursion limit.

``docs/performance.md`` derives the cost model; the cross-miner property
suite pins exact count equality with Apriori/FP-Growth/H-Mine/Eclat, and
the ``repro bench`` fingerprint gate proves the produced knowledge bases
are byte-identical.  :func:`vertical_masks` is shared with the CHARM
closed-set miner (:mod:`repro.mining.closed`), whose subsumption checks
become popcount-plus-equality on the same masks.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.data.items import ItemId, Itemset
from repro.mining.itemsets import (
    FrequentItemsets,
    TransactionLike,
    as_itemsets,
    min_count_for,
)

# One search node: (itemset, mask, count).  Whether *mask* is a tidset
# or a diffset is a property of the node's equivalence class, carried on
# the walk frame, never mixed within one class.
_Node = Tuple[Itemset, int, int]


def vertical_masks(itemsets: List[Itemset]) -> Dict[ItemId, int]:
    """Vertical layout of a window: item -> occurrence bitmask.

    Bit ``t`` of ``masks[i]`` is set iff transaction ``t`` contains item
    ``i``.  One pass over the horizontal data; everything downstream
    (support counting, intersections, closure checks) works on the
    returned ints alone.
    """
    masks: Dict[ItemId, int] = {}
    for tid, itemset in enumerate(itemsets):
        bit = 1 << tid
        for item in itemset:
            masks[item] = masks.get(item, 0) | bit
    return masks


def _to_diffsets(parent_mask: int, children: List[_Node]) -> List[_Node]:
    """Re-express tidset children relative to their parent's tidset.

    A child's tidset is a subset of the parent's, so the diffset is the
    symmetric difference ``parent ^ child`` — one big-int op per child,
    paid only when the class-level size comparison says diffsets win.
    """
    return [
        (itemset, parent_mask ^ mask, count) for itemset, mask, count in children
    ]


def _diffsets_win(children: List[_Node], parent_count: int) -> bool:
    """dEclat switch rule: total diffset bits < total tidset bits."""
    tidset_bits = sum(count for _, _, count in children)
    return len(children) * parent_count - tidset_bits < tidset_bits


def _walk(
    roots: List[_Node],
    roots_are_diffsets: bool,
    min_count: int,
    out: Dict[Itemset, int],
    max_size: Optional[int],
) -> None:
    """Explicit-stack DFS over prefix equivalence classes.

    Each frame is one partially processed class: its sibling nodes, the
    resume index, and the class representation (tidsets or diffsets).
    Descending pushes the parent frame and continues into the children,
    giving the exact pre-order of the recursive walk without recursion.
    """
    frames: List[Tuple[List[_Node], int, bool]] = [(roots, 0, roots_are_diffsets)]
    while frames:
        nodes, index, diffsets = frames.pop()
        while index < len(nodes):
            itemset, mask, count = nodes[index]
            index += 1
            out[itemset] = count
            if max_size is not None and len(itemset) >= max_size:
                continue
            if index >= len(nodes):
                continue
            children: List[_Node] = []
            if diffsets:
                # d(PXY) = d(PY) \ d(PX); support falls by the bits that
                # remain.  Diffsets only shrink with depth, so the class
                # representation never switches back.
                child_diffsets = True
                for other_itemset, other_mask, _ in nodes[index:]:
                    child_mask = other_mask & ~mask
                    child_count = count - child_mask.bit_count()
                    if child_count >= min_count:
                        children.append(
                            (itemset + (other_itemset[-1],), child_mask, child_count)
                        )
            else:
                for other_itemset, other_mask, _ in nodes[index:]:
                    child_mask = mask & other_mask
                    child_count = child_mask.bit_count()
                    if child_count >= min_count:
                        children.append(
                            (itemset + (other_itemset[-1],), child_mask, child_count)
                        )
                child_diffsets = bool(children) and _diffsets_win(children, count)
                if child_diffsets:
                    children = _to_diffsets(mask, children)
            if children:
                frames.append((nodes, index, diffsets))
                nodes, index, diffsets = children, 0, child_diffsets


def mine_vertical(
    transactions: Iterable[TransactionLike],
    min_support: float,
    *,
    max_size: int | None = None,
) -> FrequentItemsets:
    """Mine all frequent itemsets at fractional *min_support* on bitmaps.

    Exact same contract and results as the other miners (property-tested
    against all four); typically the fastest by a wide margin because
    support counting is popcounts over big-int masks.

    Args:
        transactions: transactions or raw item sequences.
        min_support: fraction in ``[0, 1]``; converted to the smallest
            satisfying absolute count (at least 1).
        max_size: optional cap on itemset cardinality (``None`` = no cap).

    Returns:
        :class:`FrequentItemsets` with counts for every frequent itemset.
    """
    itemsets = as_itemsets(transactions)
    n = len(itemsets)
    min_count = min_count_for(min_support, n)
    result = FrequentItemsets(transaction_count=n, min_count=min_count)
    if n == 0:
        return result

    masks = vertical_masks(itemsets)
    roots: List[_Node] = []
    # Sorted item order keeps prefix classes canonical (itemsets stay
    # sorted tuples by construction).
    for item, mask in sorted(masks.items()):
        count = mask.bit_count()
        if count >= min_count:
            roots.append(((item,), mask, count))
    if not roots:
        return result

    # The root class is the child class of the empty prefix, whose
    # tidset is all n transactions — apply the same switch rule.
    roots_are_diffsets = _diffsets_win(roots, n)
    if roots_are_diffsets:
        roots = _to_diffsets((1 << n) - 1, roots)

    mined: Dict[Itemset, int] = {}
    _walk(roots, roots_are_diffsets, min_count, mined, max_size)
    result.counts = mined
    return result
