"""Mining substrate: frequent/closed itemset miners, rules, measures."""

from repro.mining.apriori import mine_apriori
from repro.mining.closed import is_closed_in, mine_closed
from repro.mining.eclat import mine_eclat
from repro.mining.fpgrowth import mine_fpgrowth
from repro.mining.hmine import mine_hmine
from repro.mining.itemsets import FrequentItemsets, min_count_for
from repro.mining.measures import (
    ContingencyCounts,
    available_measures,
    get_measure,
    improvement,
)
from repro.mining.rules import Rule, RuleCatalog, RuleId, ScoredRule, derive_rules
from repro.mining.vertical import mine_vertical

MINERS = {
    "apriori": mine_apriori,
    "eclat": mine_eclat,
    "fpgrowth": mine_fpgrowth,
    "hmine": mine_hmine,
    "vertical": mine_vertical,
}
"""Name -> miner function registry (used by the builder's ``miner=`` knob)."""

__all__ = [
    "ContingencyCounts",
    "FrequentItemsets",
    "MINERS",
    "Rule",
    "RuleCatalog",
    "RuleId",
    "ScoredRule",
    "available_measures",
    "derive_rules",
    "get_measure",
    "improvement",
    "is_closed_in",
    "min_count_for",
    "mine_apriori",
    "mine_closed",
    "mine_eclat",
    "mine_fpgrowth",
    "mine_hmine",
    "mine_vertical",
]
