"""Interestingness measures over association-rule contingency counts.

The paper's foundation (Section 2.2.2) works with *support* and
*confidence* "though others can be plugged in the future"; this module is
that plug point.  Every measure is a pure function of the four
contingency counts of a rule ``X ⇒ Y`` in a time period:

``n_xy``  transactions containing ``X ∪ Y``;
``n_x``   transactions containing ``X``;
``n_y``   transactions containing ``Y``;
``n``     all transactions in the period.

A registry maps measure names to implementations so query code and
benchmarks can select measures by string.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict

from repro.common.errors import ValidationError


@dataclass(frozen=True)
class ContingencyCounts:
    """The four counts that determine every objective rule measure."""

    n_xy: int
    n_x: int
    n_y: int
    n: int

    def __post_init__(self) -> None:
        if min(self.n_xy, self.n_x, self.n_y, self.n) < 0:
            raise ValidationError("contingency counts must be non-negative")
        if self.n_xy > self.n_x or self.n_xy > self.n_y:
            raise ValidationError(
                "joint count cannot exceed marginal counts: "
                f"n_xy={self.n_xy}, n_x={self.n_x}, n_y={self.n_y}"
            )
        if max(self.n_x, self.n_y) > self.n:
            raise ValidationError(
                f"marginal counts cannot exceed the total n={self.n}"
            )


MeasureFn = Callable[[ContingencyCounts], float]

_REGISTRY: Dict[str, MeasureFn] = {}


def register_measure(name: str) -> Callable[[MeasureFn], MeasureFn]:
    """Class decorator-style registration of a measure under *name*."""

    def decorator(fn: MeasureFn) -> MeasureFn:
        if name in _REGISTRY:
            raise ValidationError(f"measure {name!r} already registered")
        _REGISTRY[name] = fn
        return fn

    return decorator


def get_measure(name: str) -> MeasureFn:
    """Look a measure up by name; raises for unknown names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValidationError(f"unknown measure {name!r}; known: {known}") from None


def available_measures() -> tuple[str, ...]:
    """Sorted names of all registered measures."""
    return tuple(sorted(_REGISTRY))


@register_measure("support")
def support(c: ContingencyCounts) -> float:
    """Formula 1: ``|F(X∪Y)| / |F(∅)|``; 0.0 on an empty period."""
    return c.n_xy / c.n if c.n else 0.0


@register_measure("confidence")
def confidence(c: ContingencyCounts) -> float:
    """Formula 2: ``|F(X∪Y)| / |F(X)|``; 0.0 when the antecedent is absent."""
    return c.n_xy / c.n_x if c.n_x else 0.0


@register_measure("lift")
def lift(c: ContingencyCounts) -> float:
    """Formula 3 (a.k.a. reporting ratio): observed over expected co-occurrence."""
    denominator = c.n_x * c.n_y
    if denominator == 0:
        return 0.0
    return (c.n_xy * c.n) / denominator


@register_measure("leverage")
def leverage(c: ContingencyCounts) -> float:
    """Piatetsky-Shapiro leverage: ``P(XY) - P(X)P(Y)``."""
    if c.n == 0:
        return 0.0
    return c.n_xy / c.n - (c.n_x / c.n) * (c.n_y / c.n)


@register_measure("conviction")
def conviction(c: ContingencyCounts) -> float:
    """``P(X)P(¬Y) / P(X ∧ ¬Y)``; +inf for a rule with no counterexamples."""
    if c.n == 0 or c.n_x == 0:
        return 0.0
    # "No counterexamples" is an exact statement about the integer
    # counts (every X-transaction contains Y), not about a derived
    # float — testing the quotient against 0.0 would misfire once the
    # division rounds.
    if c.n_x == c.n_xy:
        return math.inf
    p_not_y = 1.0 - c.n_y / c.n
    counterexamples = (c.n_x - c.n_xy) / c.n
    return (c.n_x / c.n) * p_not_y / counterexamples


@register_measure("jaccard")
def jaccard(c: ContingencyCounts) -> float:
    """``|F(XY)| / |F(X) ∪ F(Y)|`` — co-occurrence over either-occurrence."""
    union = c.n_x + c.n_y - c.n_xy
    return c.n_xy / union if union else 0.0


@register_measure("cosine")
def cosine(c: ContingencyCounts) -> float:
    """``P(XY) / sqrt(P(X)P(Y))`` — the null-invariant IS measure."""
    denominator = math.sqrt(c.n_x * c.n_y)
    return c.n_xy / denominator if denominator else 0.0


@register_measure("kulczynski")
def kulczynski(c: ContingencyCounts) -> float:
    """Mean of the two conditional probabilities ``P(Y|X)`` and ``P(X|Y)``."""
    if c.n_x == 0 or c.n_y == 0:
        return 0.0
    return 0.5 * (c.n_xy / c.n_x + c.n_xy / c.n_y)


def improvement(rule_confidence: float, best_subrule_confidence: float) -> float:
    """Bayardo's *improvement*: confidence gain over the best simplification.

    This is the measure the paper cites as the closest relative of the
    MARAS ``contrast_max`` score (Section 2.3.5); the full contrast
    family lives in :mod:`repro.maras.contrast`.
    """
    return rule_confidence - best_subrule_confidence
