"""Eclat frequent-itemset mining (Zaki, TKDE'00).

The vertical counterpart to the horizontal miners: each item carries
its *tidset* (the ids of the transactions containing it), and a
k-itemset's count is the size of the intersection of its members'
tidsets.  Depth-first search over prefix equivalence classes keeps one
intersection per extension — no candidate counting pass at all.

Included because the EPS/CHARM machinery is tidset-based anyway (CHARM
is Eclat's closed-set sibling), and as a fourth independent
implementation for the cross-miner property tests.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.data.items import ItemId, Itemset
from repro.mining.itemsets import (
    FrequentItemsets,
    TransactionLike,
    as_itemsets,
    min_count_for,
)

_Node = Tuple[Itemset, FrozenSet[int]]


def _eclat_extend(
    nodes: List[_Node],
    min_count: int,
    out: Dict[Itemset, int],
    max_size: Optional[int],
) -> None:
    """Depth-first growth of one prefix equivalence class."""
    for index, (itemset, tidset) in enumerate(nodes):
        out[itemset] = len(tidset)
        if max_size is not None and len(itemset) >= max_size:
            continue
        children: List[_Node] = []
        for other_itemset, other_tidset in nodes[index + 1 :]:
            combined_tidset = tidset & other_tidset
            if len(combined_tidset) >= min_count:
                # Same prefix class: union differs only in the last item.
                combined = itemset + (other_itemset[-1],)
                children.append((combined, combined_tidset))
        if children:
            _eclat_extend(children, min_count, out, max_size)


def mine_eclat(
    transactions: Iterable[TransactionLike],
    min_support: float,
    *,
    max_size: int | None = None,
) -> FrequentItemsets:
    """Mine all frequent itemsets at fractional *min_support* with Eclat.

    Same contract and results as the other miners (property-tested).
    """
    itemsets = as_itemsets(transactions)
    n = len(itemsets)
    min_count = min_count_for(min_support, n)
    result = FrequentItemsets(transaction_count=n, min_count=min_count)
    if n == 0:
        return result

    vertical: Dict[ItemId, set[int]] = {}
    for tid, itemset in enumerate(itemsets):
        for item in itemset:
            vertical.setdefault(item, set()).add(tid)
    # Sorted item order keeps prefix classes canonical (itemsets stay
    # sorted tuples by construction).
    nodes: List[_Node] = [
        ((item,), frozenset(tids))
        for item, tids in sorted(vertical.items())
        if len(tids) >= min_count
    ]
    mined: Dict[Itemset, int] = {}
    _eclat_extend(nodes, min_count, mined, max_size)
    result.counts = mined
    return result
