"""Eclat frequent-itemset mining (Zaki, TKDE'00).

The vertical counterpart to the horizontal miners: each item carries
its *tidset* (the ids of the transactions containing it), and a
k-itemset's count is the size of the intersection of its members'
tidsets.  Depth-first search over prefix equivalence classes keeps one
intersection per extension — no candidate counting pass at all.

Included because the EPS/CHARM machinery is tidset-based anyway (CHARM
is Eclat's closed-set sibling), and as an independent implementation
for the cross-miner property tests.  The class walk uses the same
explicit stack as the bitmap kernel (:mod:`repro.mining.vertical`), so
mining depth is never bounded by the interpreter recursion limit, and
tidsets are plain sets shared by reference — no per-node copies.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.data.items import ItemId, Itemset
from repro.mining.itemsets import (
    FrequentItemsets,
    TransactionLike,
    as_itemsets,
    min_count_for,
)

_Node = Tuple[Itemset, Set[int]]


def _eclat_extend(
    roots: List[_Node],
    min_count: int,
    out: Dict[Itemset, int],
    max_size: Optional[int],
) -> None:
    """Depth-first growth of prefix equivalence classes, stack-based.

    Each frame is one partially processed class (sibling nodes plus the
    resume index); descending pushes the parent frame and continues into
    the child class — the recursive walk's exact pre-order, flat.
    """
    frames: List[Tuple[List[_Node], int]] = [(roots, 0)]
    while frames:
        nodes, index = frames.pop()
        while index < len(nodes):
            itemset, tidset = nodes[index]
            index += 1
            out[itemset] = len(tidset)
            if max_size is not None and len(itemset) >= max_size:
                continue
            children: List[_Node] = []
            for other_itemset, other_tidset in nodes[index:]:
                combined_tidset = tidset & other_tidset
                if len(combined_tidset) >= min_count:
                    # Same prefix class: union differs only in the last item.
                    children.append(
                        (itemset + (other_itemset[-1],), combined_tidset)
                    )
            if children:
                frames.append((nodes, index))
                nodes, index = children, 0


def mine_eclat(
    transactions: Iterable[TransactionLike],
    min_support: float,
    *,
    max_size: int | None = None,
) -> FrequentItemsets:
    """Mine all frequent itemsets at fractional *min_support* with Eclat.

    Same contract and results as the other miners (property-tested).
    """
    itemsets = as_itemsets(transactions)
    n = len(itemsets)
    min_count = min_count_for(min_support, n)
    result = FrequentItemsets(transaction_count=n, min_count=min_count)
    if n == 0:
        return result

    vertical: Dict[ItemId, Set[int]] = {}
    for tid, itemset in enumerate(itemsets):
        for item in itemset:
            vertical.setdefault(item, set()).add(tid)
    # Sorted item order keeps prefix classes canonical (itemsets stay
    # sorted tuples by construction).
    nodes: List[_Node] = [
        ((item,), tids)
        for item, tids in sorted(vertical.items())
        if len(tids) >= min_count
    ]
    mined: Dict[Itemset, int] = {}
    _eclat_extend(nodes, min_count, mined, max_size)
    result.counts = mined
    return result
