"""Closed frequent-itemset mining (CHARM; Zaki & Hsiao, SDM'02).

Closed itemsets are the theoretical backbone of MARAS: Lemma 1 of the
paper proves that the non-spurious (explicitly or implicitly supported)
Drug-ADR associations are exactly the *closed* associations of the
report database.  CHARM mines them directly over vertical occurrence
lists, applying the four itemset-tidset properties to collapse
equal-support branches, plus a subsumption check before emitting a
closed set.

The vertical layout is the bitmap kernel's
(:func:`repro.mining.vertical.vertical_masks`): every tidset is one
Python big int, so the four CHARM properties are mask equality and
subset tests (``a & b == a``), support is ``int.bit_count()``, and the
subsumption check buckets candidates by their exact mask — an equal
tidset *is* an equal dict key, no hash-then-verify pass.

A closed itemset is one with no proper superset of equal support —
equivalently, the intersection of all transactions that contain it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.data.items import Itemset, canonical_itemset, itemset_union
from repro.mining.itemsets import (
    FrequentItemsets,
    TransactionLike,
    as_itemsets,
    min_count_for,
)
from repro.mining.vertical import vertical_masks

# (itemset, occurrence bitmask, popcount of the mask)
_Node = Tuple[Itemset, int, int]


class _ClosedCollector:
    """Closed-set accumulator with mask-keyed subsumption checking.

    CHARM may generate a candidate whose closure was already emitted via
    a different branch; the candidate is *subsumed* if an existing closed
    set is a superset with the same support.  Bucketing by the tidset
    mask itself makes the check one dict lookup plus subset tests among
    the (rare) exact-tidset collisions.
    """

    def __init__(self) -> None:
        self.closed: Dict[Itemset, int] = {}
        self._buckets: Dict[int, List[Itemset]] = {}

    def add_if_closed(self, itemset: Itemset, mask: int, count: int) -> None:
        bucket = self._buckets.setdefault(mask, [])
        itemset_items = set(itemset)
        for position, existing in enumerate(bucket):
            existing_items = set(existing)
            if itemset_items.issubset(existing_items):
                return  # subsumed by a superset with identical support
            if existing_items.issubset(itemset_items):
                # The new set subsumes an earlier, smaller candidate.
                bucket[position] = itemset
                del self.closed[existing]
                self.closed[itemset] = count
                return
        bucket.append(itemset)
        self.closed[itemset] = count


def _charm_extend(
    nodes: List[_Node], collector: _ClosedCollector, min_count: int
) -> None:
    """Recursive CHARM exploration of one equivalence class.

    *nodes* are (itemset, mask, count) triples sorted by increasing
    support (the standard heuristic that maximizes equal-tidset merges).
    """
    index = 0
    while index < len(nodes):
        itemset_i, mask_i, count_i = nodes[index]
        children: List[_Node] = []
        j = index + 1
        while j < len(nodes):
            itemset_j, mask_j, _ = nodes[j]
            combined_mask = mask_i & mask_j
            combined_count = combined_mask.bit_count()
            if combined_count < min_count:
                j += 1
                continue
            combined = itemset_union(itemset_i, itemset_j)
            if mask_i == mask_j:
                # Property 1: X_j always occurs with X_i — fold it into
                # X_i and drop X_j from this class entirely.
                itemset_i = combined
                nodes[index] = (itemset_i, mask_i, count_i)
                del nodes[j]
                children = [
                    (itemset_union(child_set, itemset_j), child_mask, child_count)
                    for child_set, child_mask, child_count in children
                ]
            elif combined_mask == mask_i:
                # Property 2: X_i implies X_j — extend X_i in place but
                # keep X_j, which can still grow on its own.
                itemset_i = combined
                nodes[index] = (itemset_i, mask_i, count_i)
                children = [
                    (itemset_union(child_set, itemset_j), child_mask, child_count)
                    for child_set, child_mask, child_count in children
                ]
                j += 1
            elif combined_mask == mask_j:
                # Property 3: X_j implies X_i — X_j's closure lives in
                # X_i's subtree, so move the merge down and drop X_j.
                children.append((combined, combined_mask, combined_count))
                del nodes[j]
            else:
                # Property 4: incomparable tidsets — a genuinely new
                # equivalence class under X_i.
                children.append((combined, combined_mask, combined_count))
                j += 1
        if children:
            children.sort(key=lambda node: (node[2], node[0]))
            _charm_extend(children, collector, min_count)
        collector.add_if_closed(itemset_i, mask_i, count_i)
        index += 1


def mine_closed(
    transactions: Iterable[TransactionLike],
    min_support: float,
    *,
    min_count: int | None = None,
) -> FrequentItemsets:
    """Mine all *closed* frequent itemsets.

    Args:
        transactions: transactions or raw item sequences.
        min_support: fractional threshold; ignored when *min_count* given.
        min_count: optional absolute threshold overriding *min_support*
            (MARAS mines implicit associations at ``min_count=2``).

    Returns:
        :class:`FrequentItemsets` whose ``counts`` hold only closed sets.
    """
    itemsets = as_itemsets(transactions)
    n = len(itemsets)
    threshold = (
        min_count if min_count is not None else min_count_for(min_support, n)
    )
    if threshold < 1:
        threshold = 1
    result = FrequentItemsets(transaction_count=n, min_count=threshold)
    if n == 0:
        return result

    nodes: List[_Node] = []
    for item, mask in vertical_masks(itemsets).items():
        count = mask.bit_count()
        if count >= threshold:
            nodes.append(((item,), mask, count))
    nodes.sort(key=lambda node: (node[2], node[0]))
    collector = _ClosedCollector()
    _charm_extend(nodes, collector, threshold)
    result.counts = collector.closed
    return result


def is_closed_in(itemset: Itemset, transactions: Iterable[TransactionLike]) -> bool:
    """Direct (slow) closedness oracle used by tests.

    *itemset* is closed iff the intersection of all transactions
    containing it equals the itemset itself (and at least one contains
    it).
    """
    canonical = canonical_itemset(itemset)
    containing = [
        set(t)
        for t in as_itemsets(transactions)
        if set(canonical).issubset(set(t))
    ]
    if not containing:
        return False
    closure = set.intersection(*containing)
    return closure == set(canonical)
