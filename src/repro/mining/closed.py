"""Closed frequent-itemset mining (CHARM; Zaki & Hsiao, SDM'02).

Closed itemsets are the theoretical backbone of MARAS: Lemma 1 of the
paper proves that the non-spurious (explicitly or implicitly supported)
Drug-ADR associations are exactly the *closed* associations of the
report database.  CHARM mines them directly over vertical tid-sets,
applying the four itemset-tidset properties to collapse equal-support
branches, plus a subsumption check before emitting a closed set.

A closed itemset is one with no proper superset of equal support —
equivalently, the intersection of all transactions that contain it.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Tuple

from repro.data.items import Itemset, canonical_itemset, itemset_union
from repro.mining.itemsets import (
    FrequentItemsets,
    TransactionLike,
    as_itemsets,
    min_count_for,
)

_Tidset = FrozenSet[int]
_Node = Tuple[Itemset, _Tidset]


class _ClosedCollector:
    """Closed-set accumulator with hash-based subsumption checking.

    CHARM may generate a candidate whose closure was already emitted via
    a different branch; the candidate is *subsumed* if an existing closed
    set is a superset with the same support.  Bucketing by tidset hash
    makes the check cheap.
    """

    def __init__(self) -> None:
        self.closed: Dict[Itemset, int] = {}
        self._buckets: Dict[int, List[Tuple[Itemset, _Tidset]]] = {}

    def add_if_closed(self, itemset: Itemset, tidset: _Tidset) -> None:
        key = hash(tidset)
        bucket = self._buckets.setdefault(key, [])
        itemset_items = set(itemset)
        for position, (existing, existing_tidset) in enumerate(bucket):
            if existing_tidset != tidset:
                continue
            existing_items = set(existing)
            if itemset_items.issubset(existing_items):
                return  # subsumed by a superset with identical support
            if existing_items.issubset(itemset_items):
                # The new set subsumes an earlier, smaller candidate.
                bucket[position] = (itemset, tidset)
                del self.closed[existing]
                self.closed[itemset] = len(tidset)
                return
        bucket.append((itemset, tidset))
        self.closed[itemset] = len(tidset)


def _charm_extend(
    nodes: List[_Node], collector: _ClosedCollector, min_count: int
) -> None:
    """Recursive CHARM exploration of one equivalence class.

    *nodes* are (itemset, tidset) pairs sorted by increasing tidset size
    (the standard heuristic that maximizes equal-tidset merges).
    """
    index = 0
    while index < len(nodes):
        itemset_i, tidset_i = nodes[index]
        children: List[_Node] = []
        j = index + 1
        while j < len(nodes):
            itemset_j, tidset_j = nodes[j]
            combined_tidset = tidset_i & tidset_j
            if len(combined_tidset) < min_count:
                j += 1
                continue
            combined = itemset_union(itemset_i, itemset_j)
            if tidset_i == tidset_j:
                # Property 1: X_j always occurs with X_i — fold it into
                # X_i and drop X_j from this class entirely.
                itemset_i = combined
                nodes[index] = (itemset_i, tidset_i)
                del nodes[j]
                children = [
                    (itemset_union(child_set, itemset_j), child_tids)
                    for child_set, child_tids in children
                ]
            elif tidset_i < tidset_j:
                # Property 2: X_i implies X_j — extend X_i in place but
                # keep X_j, which can still grow on its own.
                itemset_i = combined
                nodes[index] = (itemset_i, tidset_i)
                children = [
                    (itemset_union(child_set, itemset_j), child_tids)
                    for child_set, child_tids in children
                ]
                j += 1
            elif tidset_j < tidset_i:
                # Property 3: X_j implies X_i — X_j's closure lives in
                # X_i's subtree, so move the merge down and drop X_j.
                children.append((combined, combined_tidset))
                del nodes[j]
            else:
                # Property 4: incomparable tidsets — a genuinely new
                # equivalence class under X_i.
                children.append((combined, combined_tidset))
                j += 1
        if children:
            children.sort(key=lambda node: (len(node[1]), node[0]))
            _charm_extend(children, collector, min_count)
        collector.add_if_closed(itemset_i, tidset_i)
        index += 1


def mine_closed(
    transactions: Iterable[TransactionLike],
    min_support: float,
    *,
    min_count: int | None = None,
) -> FrequentItemsets:
    """Mine all *closed* frequent itemsets.

    Args:
        transactions: transactions or raw item sequences.
        min_support: fractional threshold; ignored when *min_count* given.
        min_count: optional absolute threshold overriding *min_support*
            (MARAS mines implicit associations at ``min_count=2``).

    Returns:
        :class:`FrequentItemsets` whose ``counts`` hold only closed sets.
    """
    itemsets = as_itemsets(transactions)
    n = len(itemsets)
    threshold = (
        min_count if min_count is not None else min_count_for(min_support, n)
    )
    if threshold < 1:
        threshold = 1
    result = FrequentItemsets(transaction_count=n, min_count=threshold)
    if n == 0:
        return result

    vertical: Dict[int, set[int]] = {}
    for tid, itemset in enumerate(itemsets):
        for item in itemset:
            vertical.setdefault(item, set()).add(tid)

    nodes: List[_Node] = [
        ((item,), frozenset(tids))
        for item, tids in vertical.items()
        if len(tids) >= threshold
    ]
    nodes.sort(key=lambda node: (len(node[1]), node[0]))
    collector = _ClosedCollector()
    _charm_extend(nodes, collector, threshold)
    result.counts = collector.closed
    return result


def is_closed_in(itemset: Itemset, transactions: Iterable[TransactionLike]) -> bool:
    """Direct (slow) closedness oracle used by tests.

    *itemset* is closed iff the intersection of all transactions
    containing it equals the itemset itself (and at least one contains
    it).
    """
    canonical = canonical_itemset(itemset)
    containing = [
        set(t)
        for t in as_itemsets(transactions)
        if set(canonical).issubset(set(t))
    ]
    if not containing:
        return False
    closure = set.intersection(*containing)
    return closure == set(canonical)
