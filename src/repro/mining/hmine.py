"""H-Mine frequent-itemset mining (Pei et al., ICDM'01).

H-Mine is the miner behind the paper's strongest preprocessing baseline:
it projects each transaction onto the frequent items once, then mines by
*hyper-links* — per-item queues of (transaction, position) references —
so recursive projections share the one in-memory transaction array
instead of copying data the way FP-Growth builds conditional trees.

This implementation realizes the hyper-structure as per-call header
queues of ``(transaction_index, item_position)`` pairs: projecting onto
a prefix item advances positions, never copies item arrays.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.data.items import ItemId, Itemset
from repro.mining.itemsets import (
    FrequentItemsets,
    TransactionLike,
    as_itemsets,
    min_count_for,
)

# A projected transaction reference: (index into the shared transaction
# array, position from which the projected suffix starts).
_Ref = Tuple[int, int]


def _build_header(
    transactions: List[List[ItemId]], refs: List[_Ref]
) -> Dict[ItemId, List[_Ref]]:
    """Header table of the projected database: item -> occurrence queue.

    Each queue entry records where the item sits inside its transaction,
    so the next projection starts right after it without any search.
    """
    header: Dict[ItemId, List[_Ref]] = {}
    for index, start in refs:
        row = transactions[index]
        for position in range(start, len(row)):
            item = row[position]
            header.setdefault(item, []).append((index, position + 1))
    return header


def _hmine(
    transactions: List[List[ItemId]],
    refs: List[_Ref],
    prefix: Itemset,
    min_count: int,
    out: Dict[Itemset, int],
    max_size: Optional[int],
) -> None:
    header = _build_header(transactions, refs)
    for item in sorted(header):
        queue = header[item]
        if len(queue) < min_count:
            continue
        itemset = tuple(sorted(prefix + (item,)))
        out[itemset] = len(queue)
        if max_size is not None and len(itemset) >= max_size:
            continue
        # The queue *is* the projected database of prefix + item: only
        # suffixes can extend the pattern because rows are rank-sorted.
        if any(position < len(transactions[index]) for index, position in queue):
            _hmine(transactions, queue, itemset, min_count, out, max_size)


def mine_hmine(
    transactions: Iterable[TransactionLike],
    min_support: float,
    *,
    max_size: int | None = None,
) -> FrequentItemsets:
    """Mine all frequent itemsets at fractional *min_support* with H-Mine.

    Same contract and results as :func:`repro.mining.apriori.mine_apriori`
    and :func:`repro.mining.fpgrowth.mine_fpgrowth` (property-tested).
    """
    raw = as_itemsets(transactions)
    n = len(raw)
    min_count = min_count_for(min_support, n)
    result = FrequentItemsets(transaction_count=n, min_count=min_count)
    if n == 0:
        return result

    global_counts: Dict[ItemId, int] = {}
    for itemset in raw:
        for item in itemset:
            global_counts[item] = global_counts.get(item, 0) + 1
    frequent_rank = {
        item: rank
        for rank, (item, _) in enumerate(
            sorted(
                (
                    (item, count)
                    for item, count in global_counts.items()
                    if count >= min_count
                ),
                key=lambda pair: (-pair[1], pair[0]),
            )
        )
    }
    if not frequent_rank:
        return result

    # One-time projection of every transaction onto the frequent items,
    # rank-sorted: this array is shared by all recursive calls.
    projected: List[List[ItemId]] = []
    for itemset in raw:
        kept = [item for item in itemset if item in frequent_rank]
        if kept:
            kept.sort(key=lambda item: frequent_rank[item])
            projected.append(kept)

    refs: List[_Ref] = [(index, 0) for index in range(len(projected))]
    mined: Dict[Itemset, int] = {}
    _hmine(projected, refs, (), min_count, mined, max_size)
    result.counts = mined
    return result
