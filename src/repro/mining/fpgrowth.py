"""FP-Growth frequent-itemset mining (Han, Pei & Yin, SIGMOD'00).

The pattern-growth miner used as TARA's default Association Generator
engine: it compresses each window into an FP-tree, then mines the tree
recursively via conditional pattern bases — no candidate generation.
Includes the standard single-path shortcut that enumerates all subsets
of a chain directly.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Iterable, List, Optional, Tuple

from repro.data.items import ItemId, Itemset
from repro.mining.itemsets import (
    FrequentItemsets,
    TransactionLike,
    as_itemsets,
    min_count_for,
)


class _Node:
    """One FP-tree node: an item with a count, parent link and children."""

    __slots__ = ("item", "count", "parent", "children", "next_same_item")

    def __init__(self, item: Optional[ItemId], parent: Optional["_Node"]) -> None:
        self.item = item
        self.count = 0
        self.parent = parent
        self.children: Dict[ItemId, "_Node"] = {}
        self.next_same_item: Optional["_Node"] = None


class _Tree:
    """An FP-tree with its header table of per-item node chains."""

    def __init__(self) -> None:
        self.root = _Node(None, None)
        self.header: Dict[ItemId, _Node] = {}
        self.item_counts: Dict[ItemId, int] = {}

    def insert(self, path: List[ItemId], count: int) -> None:
        """Insert a (frequency-ordered) item path with multiplicity *count*."""
        node = self.root
        for item in path:
            child = node.children.get(item)
            if child is None:
                child = _Node(item, node)
                node.children[item] = child
                child.next_same_item = self.header.get(item)
                self.header[item] = child
            child.count += count
            self.item_counts[item] = self.item_counts.get(item, 0) + count
            node = child

    def is_single_path(self) -> Optional[List[Tuple[ItemId, int]]]:
        """Return the chain as ``(item, count)`` pairs if the tree is one path."""
        chain: List[Tuple[ItemId, int]] = []
        node = self.root
        while node.children:
            if len(node.children) > 1:
                return None
            node = next(iter(node.children.values()))
            chain.append((node.item, node.count))  # type: ignore[arg-type]
        return chain

    def prefix_paths(self, item: ItemId) -> List[Tuple[List[ItemId], int]]:
        """Conditional pattern base of *item*: root paths with multiplicities."""
        paths: List[Tuple[List[ItemId], int]] = []
        node = self.header.get(item)
        while node is not None:
            path: List[ItemId] = []
            ancestor = node.parent
            while ancestor is not None and ancestor.item is not None:
                path.append(ancestor.item)
                ancestor = ancestor.parent
            if path:
                path.reverse()
                paths.append((path, node.count))
            node = node.next_same_item
        return paths


def _build_tree(
    weighted_itemsets: Iterable[Tuple[List[ItemId], int]],
    item_order: Dict[ItemId, int],
    min_count: int,
) -> _Tree:
    tree = _Tree()
    for items, weight in weighted_itemsets:
        kept = [item for item in items if item in item_order]
        kept.sort(key=lambda item: (item_order[item], item))
        if kept:
            tree.insert(kept, weight)
    return tree


def _mine_tree(
    tree: _Tree,
    suffix: Itemset,
    min_count: int,
    out: Dict[Itemset, int],
    max_size: Optional[int],
) -> None:
    single = tree.is_single_path()
    if single is not None:
        # Single-path shortcut: every subset of the chain, joined with the
        # suffix, is frequent with the minimum count along the subset.
        for size in range(1, len(single) + 1):
            if max_size is not None and len(suffix) + size > max_size:
                break
            for combo in combinations(single, size):
                count = min(c for _, c in combo)
                if count >= min_count:
                    itemset = tuple(sorted(suffix + tuple(i for i, _ in combo)))
                    out[itemset] = count
        return

    # General case: grow each frequent item in increasing count order.
    items = sorted(
        tree.item_counts,
        key=lambda item: (tree.item_counts[item], item),
    )
    for item in items:
        count = tree.item_counts[item]
        if count < min_count:
            continue
        new_suffix = tuple(sorted(suffix + (item,)))
        out[new_suffix] = count
        if max_size is not None and len(new_suffix) >= max_size:
            continue
        base = tree.prefix_paths(item)
        # Count items in the conditional base, keep the frequent ones.
        conditional_counts: Dict[ItemId, int] = {}
        for path, weight in base:
            for path_item in path:
                conditional_counts[path_item] = (
                    conditional_counts.get(path_item, 0) + weight
                )
        order = {
            frequent_item: rank
            for rank, (frequent_item, c) in enumerate(
                sorted(
                    (
                        (i, c)
                        for i, c in conditional_counts.items()
                        if c >= min_count
                    ),
                    key=lambda pair: (-pair[1], pair[0]),
                )
            )
        }
        if not order:
            continue
        conditional_tree = _build_tree(base, order, min_count)
        _mine_tree(conditional_tree, new_suffix, min_count, out, max_size)


def mine_fpgrowth(
    transactions: Iterable[TransactionLike],
    min_support: float,
    *,
    max_size: int | None = None,
) -> FrequentItemsets:
    """Mine all frequent itemsets at fractional *min_support* with FP-Growth.

    Same contract as :func:`repro.mining.apriori.mine_apriori`; the two
    return identical results on identical inputs (property-tested).
    """
    itemsets = as_itemsets(transactions)
    n = len(itemsets)
    min_count = min_count_for(min_support, n)
    result = FrequentItemsets(transaction_count=n, min_count=min_count)
    if n == 0:
        return result

    global_counts: Dict[ItemId, int] = {}
    for transaction in itemsets:
        for item in transaction:
            global_counts[item] = global_counts.get(item, 0) + 1
    frequent = {
        item: count for item, count in global_counts.items() if count >= min_count
    }
    if not frequent:
        return result
    order = {
        item: rank
        for rank, (item, _) in enumerate(
            sorted(frequent.items(), key=lambda pair: (-pair[1], pair[0]))
        )
    }
    tree = _build_tree(
        ((list(transaction), 1) for transaction in itemsets), order, min_count
    )
    mined: Dict[Itemset, int] = {}
    _mine_tree(tree, (), min_count, mined, max_size)
    result.counts = mined
    return result
