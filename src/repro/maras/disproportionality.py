"""Classical pharmacovigilance disproportionality statistics.

The paper's related work positions MARAS against the measures drug
safety practice actually uses on spontaneous reports: the *reporting
ratio* family ([43] uses RR, [50] the proportional reporting ratio).
This module implements the standard 2x2 disproportionality analysis so
those baselines are available in their textbook form, not just via the
generic lift measure:

For a drug set ``D`` and ADR set ``A`` over ``n`` reports, the 2x2
contingency table is::

                    A present   A absent
    D present           a          b
    D absent            c          d

* **PRR**  — proportional reporting ratio: ``(a/(a+b)) / (c/(c+d))``;
* **ROR**  — reporting odds ratio: ``(a·d) / (b·c)``;
* **chi²** — Yates-corrected chi-squared of the table;
* the common signal criterion (Evans et al. 2001): PRR ≥ 2, chi² ≥ 4,
  a ≥ 3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.common.errors import ValidationError
from repro.data.items import ItemId
from repro.maras.associations import DrugAdrAssociation
from repro.maras.reports import ReportDatabase


@dataclass(frozen=True)
class ContingencyTable:
    """The 2x2 drug/ADR report contingency table."""

    a: int  # D and A
    b: int  # D without A
    c: int  # A without D
    d: int  # neither

    def __post_init__(self) -> None:
        if min(self.a, self.b, self.c, self.d) < 0:
            raise ValidationError("contingency cells must be non-negative")

    @property
    def n(self) -> int:
        """Total number of reports."""
        return self.a + self.b + self.c + self.d

    @property
    def prr(self) -> float:
        """Proportional reporting ratio; ``inf`` when only exposed reports
        show the ADR, 0.0 when undefined (no exposed reports)."""
        exposed = self.a + self.b
        unexposed = self.c + self.d
        if exposed == 0 or self.a == 0:
            return 0.0
        if unexposed == 0 or self.c == 0:
            return math.inf
        return (self.a / exposed) / (self.c / unexposed)

    @property
    def ror(self) -> float:
        """Reporting odds ratio; ``inf`` when b·c = 0 with a·d > 0."""
        if self.a == 0 or self.d == 0:
            return 0.0
        if self.b == 0 or self.c == 0:
            return math.inf
        return (self.a * self.d) / (self.b * self.c)

    @property
    def chi_squared(self) -> float:
        """Yates-corrected chi-squared statistic of the table."""
        n = self.n
        if n == 0:
            return 0.0
        row1, row2 = self.a + self.b, self.c + self.d
        col1, col2 = self.a + self.c, self.b + self.d
        if 0 in (row1, row2, col1, col2):
            return 0.0
        determinant = abs(self.a * self.d - self.b * self.c)
        corrected = max(determinant - n / 2, 0.0)
        return n * corrected**2 / (row1 * row2 * col1 * col2)

    def is_signal(
        self,
        *,
        min_prr: float = 2.0,
        min_chi_squared: float = 4.0,
        min_cases: int = 3,
    ) -> bool:
        """Evans' standard PRR signal criterion."""
        return (
            self.a >= min_cases
            and self.prr >= min_prr
            and self.chi_squared >= min_chi_squared
        )


def contingency_table(
    database: ReportDatabase,
    drugs: Sequence[ItemId],
    adrs: Sequence[ItemId],
) -> ContingencyTable:
    """The 2x2 table of a drug set vs an ADR set over *database*.

    "D present" means the report contains every drug of *drugs*;
    "A present" means it contains every ADR of *adrs* (the paper's
    containment semantics, consistent with the confidence/lift
    definitions used everywhere else).
    """
    a = database.count(drugs, adrs)
    exposed = database.count(drugs)
    with_adr = database.count((), adrs)
    n = len(database)
    b = exposed - a
    c = with_adr - a
    d = n - exposed - c
    return ContingencyTable(a=a, b=b, c=c, d=d)


def rank_by_prr(
    database: ReportDatabase,
    pool: Sequence[Tuple[DrugAdrAssociation, int]],
    *,
    apply_signal_criterion: bool = True,
) -> List[Tuple[DrugAdrAssociation, float]]:
    """Rank candidate associations by PRR (the [50]-style baseline).

    With *apply_signal_criterion* (the textbook usage), associations
    failing Evans' criterion are dropped before ranking.  Infinite PRRs
    sort above all finite ones, tie-broken by case count.
    """
    scored: List[Tuple[DrugAdrAssociation, float, int]] = []
    for association, _ in pool:
        table = contingency_table(database, association.drugs, association.adrs)
        if apply_signal_criterion and not table.is_signal():
            continue
        scored.append((association, table.prr, table.a))
    scored.sort(
        key=lambda entry: (
            -(1e18 if math.isinf(entry[1]) else entry[1]),
            -entry[2],
            entry[0].drugs,
            entry[0].adrs,
        )
    )
    return [(association, prr) for association, prr, _ in scored]


def rank_by_ror(
    database: ReportDatabase,
    pool: Sequence[Tuple[DrugAdrAssociation, int]],
    *,
    min_cases: int = 3,
) -> List[Tuple[DrugAdrAssociation, float]]:
    """Rank candidate associations by the reporting odds ratio."""
    scored: List[Tuple[DrugAdrAssociation, float, int]] = []
    for association, _ in pool:
        table = contingency_table(database, association.drugs, association.adrs)
        if table.a < min_cases:
            continue
        scored.append((association, table.ror, table.a))
    scored.sort(
        key=lambda entry: (
            -(1e18 if math.isinf(entry[1]) else entry[1]),
            -entry[2],
            entry[0].drugs,
            entry[0].adrs,
        )
    )
    return [(association, ror) for association, ror, _ in scored]
