"""Temporal MDAR signal tracking across reporting periods.

The dissertation's MeDIAR/DEVES systems (ICDE'18, CIKM'18) put the
MARAS signals into TARA's temporal frame: FAERS arrives quarterly, and
the drug-safety reviewer's question is not just "what signals exist"
but "what is *emerging*" — which signals are new this quarter, which
are strengthening, which faded.  This module runs the MARAS pipeline
per period and aligns the rankings into per-association trajectories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ValidationError
from repro.maras.associations import DrugAdrAssociation
from repro.maras.reports import ReportDatabase
from repro.maras.signals import MarasAnalyzer, MarasConfig, Signal


@dataclass(frozen=True)
class SignalSnapshot:
    """One association's standing in one period's ranking."""

    period: int
    rank: int
    score: float
    confidence: float
    count: int


@dataclass(frozen=True)
class SignalTrajectory:
    """An association's snapshots across the analyzed periods."""

    association: DrugAdrAssociation
    snapshots: Tuple[SignalSnapshot, ...]

    @property
    def first_period(self) -> int:
        """Period in which the signal first appeared."""
        return self.snapshots[0].period

    @property
    def latest(self) -> SignalSnapshot:
        """The most recent snapshot."""
        return self.snapshots[-1]

    @property
    def periods_present(self) -> Tuple[int, ...]:
        """All periods (sorted) in which the association signaled."""
        return tuple(snapshot.period for snapshot in self.snapshots)

    def score_delta(self) -> float:
        """Score change from the first to the latest snapshot."""
        return self.snapshots[-1].score - self.snapshots[0].score


@dataclass(frozen=True)
class PeriodDigest:
    """What changed in one period relative to all earlier ones."""

    period: int
    new_signals: Tuple[DrugAdrAssociation, ...]
    strengthened: Tuple[DrugAdrAssociation, ...]
    weakened: Tuple[DrugAdrAssociation, ...]
    vanished: Tuple[DrugAdrAssociation, ...]


class TemporalSignalTracker:
    """Runs MARAS per period and aligns signals into trajectories."""

    def __init__(
        self,
        config: Optional[MarasConfig] = None,
        *,
        top_k: int = 100,
        strengthen_threshold: float = 0.02,
    ) -> None:
        if top_k <= 0:
            raise ValidationError(f"top_k must be positive, got {top_k}")
        if strengthen_threshold < 0:
            raise ValidationError("strengthen_threshold must be >= 0")
        self.config = config or MarasConfig()
        self.top_k = top_k
        self.strengthen_threshold = strengthen_threshold
        self._per_period: List[List[Signal]] = []

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    @property
    def period_count(self) -> int:
        """Periods analyzed so far."""
        return len(self._per_period)

    def add_period(self, database: ReportDatabase) -> PeriodDigest:
        """Analyze one period's reports; returns the change digest.

        Periods must be added in chronological order; each is analyzed
        independently (FAERS quarters are disjoint report batches).
        """
        signals = MarasAnalyzer(database, self.config).signals(top_k=self.top_k)
        period = len(self._per_period)
        previous_scores = self._latest_scores()
        self._per_period.append(signals)

        current = {signal.association: signal for signal in signals}
        new_signals = tuple(
            association
            for association in current
            if association not in previous_scores
        )
        strengthened = tuple(
            association
            for association, signal in current.items()
            if association in previous_scores
            and signal.score
            > previous_scores[association] + self.strengthen_threshold
        )
        weakened = tuple(
            association
            for association, signal in current.items()
            if association in previous_scores
            and signal.score
            < previous_scores[association] - self.strengthen_threshold
        )
        vanished = tuple(
            association
            for association in previous_scores
            if association not in current
        )
        return PeriodDigest(
            period=period,
            new_signals=new_signals,
            strengthened=strengthened,
            weakened=weakened,
            vanished=vanished,
        )

    def _latest_scores(self) -> Dict[DrugAdrAssociation, float]:
        if not self._per_period:
            return {}
        return {
            signal.association: signal.score
            for signal in self._per_period[-1]
        }

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def signals_of_period(self, period: int) -> List[Signal]:
        """The ranked signals of one analyzed period."""
        if not 0 <= period < len(self._per_period):
            raise ValidationError(
                f"period {period} out of range [0, {len(self._per_period)})"
            )
        return list(self._per_period[period])

    def trajectories(self) -> List[SignalTrajectory]:
        """Every association's trajectory, most-persistent first."""
        by_association: Dict[DrugAdrAssociation, List[SignalSnapshot]] = {}
        for period, signals in enumerate(self._per_period):
            for rank, signal in enumerate(signals, start=1):
                by_association.setdefault(signal.association, []).append(
                    SignalSnapshot(
                        period=period,
                        rank=rank,
                        score=signal.score,
                        confidence=signal.confidence,
                        count=signal.count,
                    )
                )
        trajectories = [
            SignalTrajectory(association=association, snapshots=tuple(snapshots))
            for association, snapshots in by_association.items()
        ]
        trajectories.sort(
            key=lambda trajectory: (
                -len(trajectory.snapshots),
                -trajectory.latest.score,
                trajectory.association.drugs,
            )
        )
        return trajectories

    def persistent_signals(
        self, min_periods: Optional[int] = None
    ) -> List[SignalTrajectory]:
        """Trajectories present in at least *min_periods* periods.

        Persistence across independent reporting periods is the
        strongest non-experimental evidence an SRS can give; defaults
        to "every analyzed period".
        """
        needed = min_periods if min_periods is not None else len(self._per_period)
        if needed <= 0:
            raise ValidationError("min_periods must be positive")
        return [
            trajectory
            for trajectory in self.trajectories()
            if len(trajectory.snapshots) >= needed
        ]

    def emerging_signals(self, last_periods: int = 1) -> List[SignalTrajectory]:
        """Trajectories that first appeared within the last *last_periods*."""
        if last_periods <= 0:
            raise ValidationError("last_periods must be positive")
        cutoff = len(self._per_period) - last_periods
        return [
            trajectory
            for trajectory in self.trajectories()
            if trajectory.first_period >= cutoff
        ]
