"""The MARAS signal pipeline: learn → cluster → score → rank.

Glues Sections 2.3.3-2.3.5 together: non-spurious multi-drug Drug-ADR
associations are learned from the reports, each gets its contextual
association cluster, the cluster is scored by the final contrast
measure, and the signals are returned ranked most-suspicious-first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.common.errors import ValidationError
from repro.maras.associations import (
    DrugAdrAssociation,
    LearnedAssociation,
    SupportKind,
    learn_associations,
)
from repro.maras.cac import ContextualAssociationCluster, build_cluster
from repro.maras.contrast import DEFAULT_THETA, contrast_score
from repro.maras.reports import ReportDatabase


@dataclass(frozen=True)
class Signal:
    """One ranked MDAR signal with its full evidence trail."""

    association: DrugAdrAssociation
    kind: SupportKind
    score: float
    confidence: float
    count: int
    cluster: ContextualAssociationCluster

    def describe(self, database: ReportDatabase) -> str:
        """One-line readable rendering for reports and benchmarks."""
        return (
            f"{self.association.format(database)}  "
            f"score={self.score:.4f} conf={self.confidence:.3f} n={self.count}"
        )


@dataclass(frozen=True)
class MarasConfig:
    """Tunable knobs of the signal pipeline.

    Attributes:
        min_count: minimum supporting reports per association.
        min_drugs: minimum drugs in the antecedent (>= 2 for MDAR).
        max_drugs: drop targets with more drugs than this (clusters are
            exponential in the antecedent size).
        theta: dispersion-penalty strength (Formula 8).
        min_score: drop signals scoring at or below this value (a
            non-positive contrast means some subset explains the ADRs
            at least as well — the anti-signal case).
    """

    min_count: int = 2
    min_drugs: int = 2
    max_drugs: int = 6
    theta: float = DEFAULT_THETA
    min_score: float = 0.0

    def __post_init__(self) -> None:
        if self.min_drugs < 2:
            raise ValidationError("MDAR signals need min_drugs >= 2")
        if self.max_drugs < self.min_drugs:
            raise ValidationError("max_drugs must be >= min_drugs")


class MarasAnalyzer:
    """End-to-end MARAS over one report database."""

    def __init__(
        self, database: ReportDatabase, config: Optional[MarasConfig] = None
    ) -> None:
        self.database = database
        self.config = config or MarasConfig()

    def learned_associations(self) -> List[LearnedAssociation]:
        """The non-spurious multi-drug associations (pipeline stage 1)."""
        return [
            learned
            for learned in learn_associations(
                self.database,
                min_count=self.config.min_count,
                min_drugs=self.config.min_drugs,
            )
            if learned.association.drug_count <= self.config.max_drugs
        ]

    def score(self, association: DrugAdrAssociation) -> Tuple[float, ContextualAssociationCluster]:
        """Contrast score and cluster of one target association."""
        cluster = build_cluster(self.database, association)
        return contrast_score(cluster, self.config.theta), cluster

    def signals(self, top_k: Optional[int] = None) -> List[Signal]:
        """Ranked MDAR signals, strongest contrast first.

        Ties break on confidence, then count, then content — fully
        deterministic output for a given database.
        """
        results: List[Signal] = []
        for learned in self.learned_associations():
            score, cluster = self.score(learned.association)
            if score <= self.config.min_score:
                continue
            results.append(
                Signal(
                    association=learned.association,
                    kind=learned.kind,
                    score=score,
                    confidence=learned.confidence,
                    count=learned.count,
                    cluster=cluster,
                )
            )
        results.sort(
            key=lambda signal: (
                -signal.score,
                -signal.confidence,
                -signal.count,
                signal.association.drugs,
                signal.association.adrs,
            )
        )
        if top_k is not None:
            if top_k <= 0:
                raise ValidationError(f"top_k must be positive, got {top_k}")
            results = results[:top_k]
        return results
