"""Reference knowledge base of known drug-drug interactions.

The paper evaluates MARAS by checking its top signals against
Drugs.com and DrugBank — curated lists of *known* multi-drug
interactions.  Neither resource can ship with an offline reproduction,
so this module defines the same abstraction: a set of known interactions
(an interacting drug set plus the ADRs it is known to cause), with the
hit test the precision@K evaluation needs.  The synthetic FAERS
generator emits a ground-truth instance of this class alongside the
reports it plants the interactions into.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator, List, Tuple

from repro.common.errors import ValidationError
from repro.data.items import ItemId
from repro.maras.associations import DrugAdrAssociation


@dataclass(frozen=True)
class KnownInteraction:
    """One curated interaction: interacting drugs and their known ADRs."""

    drugs: FrozenSet[ItemId]
    adrs: FrozenSet[ItemId]

    def __post_init__(self) -> None:
        if len(self.drugs) < 2:
            raise ValidationError("a drug-drug interaction needs >= 2 drugs")
        if not self.adrs:
            raise ValidationError("a known interaction needs >= 1 ADR")

    @classmethod
    def create(
        cls, drugs: Iterable[ItemId], adrs: Iterable[ItemId]
    ) -> "KnownInteraction":
        """Convenience constructor from any iterables."""
        return cls(drugs=frozenset(drugs), adrs=frozenset(adrs))


class ReferenceKnowledgeBase:
    """A queryable collection of known interactions (Drugs.com stand-in)."""

    def __init__(self, interactions: Iterable[KnownInteraction] = ()) -> None:
        self._interactions: List[KnownInteraction] = list(interactions)

    def __len__(self) -> int:
        return len(self._interactions)

    def __iter__(self) -> Iterator[KnownInteraction]:
        return iter(self._interactions)

    def add(self, interaction: KnownInteraction) -> None:
        """Register one more known interaction."""
        self._interactions.append(interaction)

    def is_hit(self, association: DrugAdrAssociation) -> bool:
        """Does a signal *hit* a known interaction?

        Following the paper's evaluation ("precision in terms of a hit
        of a known MDAR"), a signal counts as a hit when its drug set
        contains some known interaction's full drug set and its ADRs
        overlap that interaction's known ADRs.
        """
        signal_drugs = set(association.drugs)
        signal_adrs = set(association.adrs)
        for interaction in self._interactions:
            if interaction.drugs <= signal_drugs and (
                interaction.adrs & signal_adrs
            ):
                return True
        return False

    def matching_interactions(
        self, association: DrugAdrAssociation
    ) -> Tuple[KnownInteraction, ...]:
        """All known interactions the signal hits (for case studies)."""
        signal_drugs = set(association.drugs)
        signal_adrs = set(association.adrs)
        return tuple(
            interaction
            for interaction in self._interactions
            if interaction.drugs <= signal_drugs
            and interaction.adrs & signal_adrs
        )
