"""MARAS: multi-drug adverse-reaction signals via the contrast measure."""

from repro.maras.associations import (
    DrugAdrAssociation,
    LearnedAssociation,
    SupportKind,
    is_explicitly_supported,
    is_implicitly_supported,
    learn_associations,
)
from repro.maras.baselines import (
    enumerate_candidate_pool,
    rank_by_confidence,
    rank_by_reporting_ratio,
    rank_of_association,
)
from repro.maras.cac import (
    ContextualAssociation,
    ContextualAssociationCluster,
    build_cluster,
)
from repro.maras.disproportionality import (
    ContingencyTable,
    contingency_table,
    rank_by_prr,
    rank_by_ror,
)
from repro.maras.contrast import (
    DEFAULT_THETA,
    contrast_avg,
    contrast_cv,
    contrast_max,
    contrast_score,
    dispersion_penalty,
    level_weight,
)
from repro.maras.evaluation import (
    PrecisionCurve,
    average_precision,
    hit_table,
    precision_at_k,
    recall_of_known,
)
from repro.maras.reference_kb import KnownInteraction, ReferenceKnowledgeBase
from repro.maras.reports import Report, ReportDatabase
from repro.maras.signals import MarasAnalyzer, MarasConfig, Signal
from repro.maras.temporal import (
    PeriodDigest,
    SignalSnapshot,
    SignalTrajectory,
    TemporalSignalTracker,
)

__all__ = [
    "ContingencyTable",
    "ContextualAssociation",
    "ContextualAssociationCluster",
    "DEFAULT_THETA",
    "DrugAdrAssociation",
    "KnownInteraction",
    "LearnedAssociation",
    "MarasAnalyzer",
    "MarasConfig",
    "PeriodDigest",
    "PrecisionCurve",
    "SignalSnapshot",
    "SignalTrajectory",
    "TemporalSignalTracker",
    "ReferenceKnowledgeBase",
    "Report",
    "ReportDatabase",
    "Signal",
    "SupportKind",
    "average_precision",
    "build_cluster",
    "contingency_table",
    "contrast_avg",
    "contrast_cv",
    "contrast_max",
    "contrast_score",
    "dispersion_penalty",
    "enumerate_candidate_pool",
    "hit_table",
    "is_explicitly_supported",
    "is_implicitly_supported",
    "learn_associations",
    "level_weight",
    "precision_at_k",
    "rank_by_confidence",
    "rank_by_prr",
    "rank_by_ror",
    "rank_by_reporting_ratio",
    "rank_of_association",
    "recall_of_known",
]
