"""Learning non-spurious Drug-ADR associations (Section 2.3).

Definitions 3/4 of the paper separate the Drug-ADR associations worth
signaling from the *spurious* partial interpretations traditional ARL
floods the analyst with:

* **explicitly supported** — at least one report contains *exactly* the
  association's drugs and ADRs;
* **implicitly supported** — the association is the intersection of at
  least two reports (common drug combination with common ADRs) and is
  not explicit.

Lemma 1 proves ``S_exp ∪ S_imp`` equals the set of *closed* Drug-ADR
associations, which is how we compute it: CHARM over the combined
drug/ADR item space finds every closed itemset with support ≥ 2 (all
intersections of two or more reports), and the distinct report contents
contribute the support-1 closed sets directly (each report's own itemset
is trivially closed).  Associations whose closure has an empty drug or
ADR side are discarded per Definition 2.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.common.errors import ValidationError
from repro.data.items import Itemset
from repro.maras.reports import Report, ReportDatabase, combine_report, split_combined
from repro.mining.closed import mine_closed


class SupportKind(enum.Enum):
    """How a non-spurious association is supported by the reports."""

    EXPLICIT = "explicit"
    IMPLICIT = "implicit"


@dataclass(frozen=True)
class DrugAdrAssociation:
    """A Drug-ADR association ``drugs ⇒ adrs`` (Definition 2)."""

    drugs: Itemset
    adrs: Itemset

    def __post_init__(self) -> None:
        if not self.drugs or not self.adrs:
            raise ValidationError("both association sides must be non-empty")

    @property
    def drug_count(self) -> int:
        """Number of drugs in the antecedent."""
        return len(self.drugs)

    def format(self, database: ReportDatabase) -> str:
        """Readable rendering using the database's vocabularies."""
        drugs = " ".join(f"[{database.drug_name(d)}]" for d in self.drugs)
        adrs = " ".join(f"[{database.adr_name(a)}]" for a in self.adrs)
        return f"{drugs} => {adrs}"


@dataclass(frozen=True)
class LearnedAssociation:
    """A non-spurious association with its evidence statistics."""

    association: DrugAdrAssociation
    kind: SupportKind
    count: int
    confidence: float
    support: float
    lift: float


def learn_associations(
    database: ReportDatabase,
    *,
    min_count: int = 1,
    min_drugs: int = 1,
) -> List[LearnedAssociation]:
    """Learn every non-spurious Drug-ADR association from *database*.

    Args:
        database: the report collection.
        min_count: minimum number of supporting reports (containment
            count) an association needs to be returned.  1 keeps every
            explicit association; MDAR screening typically uses >= 2.
        min_drugs: minimum antecedent size (2 for MDAR signals).

    Returns:
        Learned associations sorted by descending count (ties by
        association content for determinism).
    """
    if min_count < 1:
        raise ValidationError(f"min_count must be >= 1, got {min_count}")
    if min_drugs < 1:
        raise ValidationError(f"min_drugs must be >= 1, got {min_drugs}")

    closed: Dict[Tuple[Itemset, Itemset], int] = {}

    # Intersections of >= 2 reports: closed itemsets at support 2 in the
    # combined space.
    combined = [combine_report(report) for report in database]
    mined = mine_closed(combined, 0.0, min_count=max(2, min_count))
    for itemset, count in mined.items():
        drugs, adrs = split_combined(itemset)
        if drugs and adrs:
            closed[(drugs, adrs)] = count

    # Distinct report contents are closed with whatever containment
    # count they actually have (>= 1); they may coincide with mined
    # intersections, in which case the counts agree by construction.
    for report in database:
        key = report.signature
        if key not in closed:
            count = database.count(report.drugs, report.adrs)
            if count >= min_count:
                closed[key] = count

    results: List[LearnedAssociation] = []
    for (drugs, adrs), count in closed.items():
        if count < min_count or len(drugs) < min_drugs:
            continue
        association = DrugAdrAssociation(drugs=drugs, adrs=adrs)
        kind = (
            SupportKind.EXPLICIT
            if database.has_exact_report(drugs, adrs)
            else SupportKind.IMPLICIT
        )
        results.append(
            LearnedAssociation(
                association=association,
                kind=kind,
                count=count,
                confidence=database.confidence(drugs, adrs),
                support=count / len(database),
                lift=database.lift(drugs, adrs),
            )
        )
    results.sort(key=lambda la: (-la.count, la.association.drugs, la.association.adrs))
    return results


def is_explicitly_supported(
    database: ReportDatabase, association: DrugAdrAssociation
) -> bool:
    """Definition 3 test (direct, used by tests as an oracle)."""
    return database.has_exact_report(association.drugs, association.adrs)


def is_implicitly_supported(
    database: ReportDatabase, association: DrugAdrAssociation
) -> bool:
    """Definition 4 test, generalized to multi-report intersections.

    The paper's Definition 4 asks for *two* reports whose drug/ADR
    intersections equal the association exactly; its Lemma 1 then
    identifies the non-spurious associations with the *closed* ones.
    The two are not literally equivalent: a closed association can be
    the intersection of three or more reports while no single pair
    intersects to it exactly (e.g. reports ``{d2,d3}{a1}``,
    ``{d1,d2}{a1,a2}``, ``{d1,d2,d3}{a1,a3}`` all contain ``d2 ⇒ a1``,
    whose closure is itself, yet every pairwise intersection is
    strictly larger).  Since the paper's *algorithm* is the closed-set
    characterization ("We use Lemma 1 ... to efficiently identify
    non-spurious Drug-ADR associations"), we follow it and read
    Definition 4 as "the intersection of the (two or more) reports
    containing the association is the association itself":

    * at least two containing reports exist, and
    * the intersection of *all* containing reports equals the
      association exactly (i.e. the association is closed), and
    * the association is not explicitly supported.
    """
    if is_explicitly_supported(database, association):
        return False
    containing = [
        report
        for report in database
        if set(association.drugs).issubset(report.drugs)
        and set(association.adrs).issubset(report.adrs)
    ]
    if len(containing) < 2:
        return False
    drugs = set(containing[0].drugs)
    adrs = set(containing[0].adrs)
    for report in containing[1:]:
        drugs &= set(report.drugs)
        adrs &= set(report.adrs)
    return (
        tuple(sorted(drugs)) == association.drugs
        and tuple(sorted(adrs)) == association.adrs
    )


def iter_spurious_variants(
    report: Report,
) -> Iterator[DrugAdrAssociation]:
    """All partial interpretations of one report (test/demo helper).

    These are the ``(2^o - 1)(2^u - 1) - 1`` associations traditional
    ARL would additionally derive from a single report (Section 2.3.2's
    "24 variants" example) — everything except the full content.
    """
    from itertools import combinations

    drugs, adrs = report.drugs, report.adrs
    for drug_size in range(1, len(drugs) + 1):
        for drug_subset in combinations(drugs, drug_size):
            for adr_size in range(1, len(adrs) + 1):
                for adr_subset in combinations(adrs, adr_size):
                    if drug_subset == drugs and adr_subset == adrs:
                        continue
                    yield DrugAdrAssociation(
                        drugs=drug_subset, adrs=adr_subset
                    )
