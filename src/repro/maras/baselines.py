"""Ranking baselines for Table 2: raw confidence and reporting ratio.

The paper contrasts MARAS's top signals against the same associations
ranked by *confidence* and by *reporting ratio* (lift): "These two
methods do not filter spurious associations.  As a result, there are
many similar redundant and possibly misleading signals."

To reproduce that redundancy, the baselines rank over the *unfiltered*
association pool: every multi-drug association derivable from the
reports (all drug-subset × ADR-subset combinations present in at least
``min_count`` reports), not just the closed/non-spurious ones MARAS
keeps.  Enumerating that pool exactly is exponential, so the pool is
built from the partial interpretations of the observed reports — which
is precisely the set traditional ARL would produce.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ValidationError
from repro.data.items import Itemset
from repro.maras.associations import DrugAdrAssociation
from repro.maras.reports import ReportDatabase


def enumerate_candidate_pool(
    database: ReportDatabase,
    *,
    min_count: int = 2,
    min_drugs: int = 2,
    max_drugs: int = 4,
    max_adrs: int = 3,
) -> List[Tuple[DrugAdrAssociation, int]]:
    """All multi-drug associations with enough supporting reports.

    Every (drug-subset, ADR-subset) pair of every report within the size
    caps is a candidate; counts come from the containment index.  Size
    caps keep the pool polynomial (the paper's baselines face the same
    combinatorial blowup — that is their weakness).
    """
    if min_count < 1:
        raise ValidationError(f"min_count must be >= 1, got {min_count}")
    seen: Dict[Tuple[Itemset, Itemset], int] = {}
    for report in database:
        drug_limit = min(len(report.drugs), max_drugs)
        adr_limit = min(len(report.adrs), max_adrs)
        for drug_size in range(min_drugs, drug_limit + 1):
            for drugs in combinations(report.drugs, drug_size):
                for adr_size in range(1, adr_limit + 1):
                    for adrs in combinations(report.adrs, adr_size):
                        key = (drugs, adrs)
                        if key in seen:
                            continue
                        count = database.count(drugs, adrs)
                        if count >= min_count:
                            seen[key] = count
    return [
        (DrugAdrAssociation(drugs=drugs, adrs=adrs), count)
        for (drugs, adrs), count in seen.items()
    ]


def rank_by_confidence(
    database: ReportDatabase,
    pool: Optional[List[Tuple[DrugAdrAssociation, int]]] = None,
    **pool_kwargs,
) -> List[Tuple[DrugAdrAssociation, float]]:
    """Baseline 1: associations ranked by raw confidence (descending)."""
    if pool is None:
        pool = enumerate_candidate_pool(database, **pool_kwargs)
    scored = [
        (association, database.confidence(association.drugs, association.adrs))
        for association, _ in pool
    ]
    scored.sort(
        key=lambda pair: (-pair[1], pair[0].drugs, pair[0].adrs)
    )
    return scored


def rank_by_reporting_ratio(
    database: ReportDatabase,
    pool: Optional[List[Tuple[DrugAdrAssociation, int]]] = None,
    **pool_kwargs,
) -> List[Tuple[DrugAdrAssociation, float]]:
    """Baseline 2: associations ranked by reporting ratio / lift."""
    if pool is None:
        pool = enumerate_candidate_pool(database, **pool_kwargs)
    scored = [
        (association, database.lift(association.drugs, association.adrs))
        for association, _ in pool
    ]
    scored.sort(
        key=lambda pair: (-pair[1], pair[0].drugs, pair[0].adrs)
    )
    return scored


def rank_of_association(
    ranking: List[Tuple[DrugAdrAssociation, float]],
    association: DrugAdrAssociation,
) -> Optional[int]:
    """1-based rank of *association* in a baseline ranking (None = absent).

    Used to reproduce the paper's "ranked 2,436th by confidence"
    comparisons for MARAS's top signals.
    """
    for position, (candidate, _) in enumerate(ranking, start=1):
        if candidate == association:
            return position
    return None
