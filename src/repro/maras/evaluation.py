"""MDAR-signal quality evaluation: precision@K against a reference KB.

Reproduces Figure 6's methodology: "Precision is defined by the ratio of
the number of hits to the number of the signals.  'Precision at K'
measures the accuracy ... as well as the effectiveness of the contrast
measure for ranking the returned signals."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.common.errors import ValidationError
from repro.maras.reference_kb import ReferenceKnowledgeBase
from repro.maras.signals import Signal


@dataclass(frozen=True)
class PrecisionCurve:
    """Precision@K values plus the underlying hit flags."""

    ks: Tuple[int, ...]
    precisions: Tuple[float, ...]
    hits: Tuple[bool, ...]

    def at(self, k: int) -> float:
        """Precision at a specific K (must be one of the computed Ks)."""
        try:
            return self.precisions[self.ks.index(k)]
        except ValueError:
            raise ValidationError(f"precision@{k} was not computed") from None


def precision_at_k(
    signals: Sequence[Signal],
    reference: ReferenceKnowledgeBase,
    ks: Sequence[int],
) -> PrecisionCurve:
    """Precision of the top-K signal prefixes against the reference KB.

    K values larger than the number of signals are evaluated over the
    available prefix (hits / K still divides by K, matching how a
    fixed-size report would score an under-filled list).
    """
    if not ks:
        raise ValidationError("need at least one K")
    for k in ks:
        if k <= 0:
            raise ValidationError(f"K values must be positive, got {k}")
    hits = tuple(reference.is_hit(signal.association) for signal in signals)
    precisions: List[float] = []
    for k in ks:
        hit_count = sum(1 for flag in hits[:k] if flag)
        precisions.append(hit_count / k)
    return PrecisionCurve(ks=tuple(ks), precisions=tuple(precisions), hits=hits)


def average_precision(
    signals: Sequence[Signal], reference: ReferenceKnowledgeBase
) -> float:
    """Average precision of the ranking (area under the P-R prefix curve).

    A stricter single-number summary used by the ablation benchmarks to
    compare contrast variants; 0.0 when no signal hits.
    """
    hits = 0
    total = 0.0
    for position, signal in enumerate(signals, start=1):
        if reference.is_hit(signal.association):
            hits += 1
            total += hits / position
    return total / hits if hits else 0.0


def recall_of_known(
    signals: Sequence[Signal], reference: ReferenceKnowledgeBase
) -> float:
    """Fraction of known interactions recovered by at least one signal."""
    if len(reference) == 0:
        raise ValidationError("reference knowledge base is empty")
    recovered = 0
    for interaction in reference:
        if any(
            interaction.drugs <= set(signal.association.drugs)
            and interaction.adrs & set(signal.association.adrs)
            for signal in signals
        ):
            recovered += 1
    return recovered / len(reference)


def hit_table(
    signals: Sequence[Signal],
    reference: ReferenceKnowledgeBase,
    top_k: int,
) -> Dict[int, bool]:
    """Rank -> hit flag for the top *top_k* signals (report rendering)."""
    return {
        rank: reference.is_hit(signal.association)
        for rank, signal in enumerate(signals[:top_k], start=1)
    }
