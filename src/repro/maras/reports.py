"""ADR reports — the input collection of the MARAS analysis.

Section 2.3 of the paper models a Spontaneous Reporting System as a
collection of ADR reports, each the union of a drug set and an ADR set
drawn from disjoint vocabularies.  :class:`Report` keeps the two sides
separate (drug ids and ADR ids are independent dense spaces);
:class:`ReportDatabase` adds the inverted index used to count how many
reports contain a given drug/ADR combination — the primitive behind
every confidence in a contextual association cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.common.errors import DataFormatError, ValidationError
from repro.data.items import ItemId, Itemset, ItemVocabulary, canonical_itemset


@dataclass(frozen=True)
class Report:
    """One ADR report: reported drugs, observed ADRs, optional timestamp."""

    drugs: Itemset
    adrs: Itemset
    time: int = 0

    @classmethod
    def create(
        cls, drugs: Iterable[ItemId], adrs: Iterable[ItemId], time: int = 0
    ) -> "Report":
        """Build a report with canonicalized, validated sides.

        Both sides must be non-empty: a report without drugs or without
        ADRs carries no drug-ADR evidence.
        """
        drug_set = canonical_itemset(drugs)
        adr_set = canonical_itemset(adrs)
        if not drug_set or not adr_set:
            raise DataFormatError("a report needs at least one drug and one ADR")
        return cls(drugs=drug_set, adrs=adr_set, time=time)

    @property
    def signature(self) -> Tuple[Itemset, Itemset]:
        """The exact (drugs, adrs) content — identity for *explicit* support."""
        return (self.drugs, self.adrs)


# Combined-space encoding: drugs on even ids, ADRs on odd ids.  Lets the
# generic closed-itemset miner run over reports while keeping the two
# vocabularies losslessly separable.
def encode_drug(drug: ItemId) -> ItemId:
    """Map a drug id into the combined item space."""
    return 2 * drug


def encode_adr(adr: ItemId) -> ItemId:
    """Map an ADR id into the combined item space."""
    return 2 * adr + 1


def split_combined(itemset: Itemset) -> Tuple[Itemset, Itemset]:
    """Split a combined-space itemset back into (drugs, adrs)."""
    drugs = tuple(item // 2 for item in itemset if item % 2 == 0)
    adrs = tuple(item // 2 for item in itemset if item % 2 == 1)
    return drugs, adrs


def combine_report(report: Report) -> Itemset:
    """A report as one combined-space itemset (for the closed miner)."""
    return canonical_itemset(
        [encode_drug(d) for d in report.drugs]
        + [encode_adr(a) for a in report.adrs]
    )


class ReportDatabase:
    """A report collection with posting lists for fast containment counts."""

    def __init__(
        self,
        reports: Iterable[Report],
        *,
        drug_vocabulary: Optional[ItemVocabulary] = None,
        adr_vocabulary: Optional[ItemVocabulary] = None,
    ) -> None:
        self.reports: List[Report] = list(reports)
        if not self.reports:
            raise ValidationError("a report database needs at least one report")
        self.drug_vocabulary = drug_vocabulary
        self.adr_vocabulary = adr_vocabulary
        self._drug_postings: Dict[ItemId, Set[int]] = {}
        self._adr_postings: Dict[ItemId, Set[int]] = {}
        self._signatures: Set[Tuple[Itemset, Itemset]] = set()
        for report_id, report in enumerate(self.reports):
            for drug in report.drugs:
                self._drug_postings.setdefault(drug, set()).add(report_id)
            for adr in report.adrs:
                self._adr_postings.setdefault(adr, set()).add(report_id)
            self._signatures.add(report.signature)

    def __len__(self) -> int:
        return len(self.reports)

    def __iter__(self) -> Iterator[Report]:
        return iter(self.reports)

    @property
    def drug_count(self) -> int:
        """Number of distinct reported drugs."""
        return len(self._drug_postings)

    @property
    def adr_count(self) -> int:
        """Number of distinct reported ADRs."""
        return len(self._adr_postings)

    def has_exact_report(self, drugs: Itemset, adrs: Itemset) -> bool:
        """Definition 3's test: does a report with exactly this content exist?"""
        return (canonical_itemset(drugs), canonical_itemset(adrs)) in self._signatures

    def matching(self, drugs: Sequence[ItemId], adrs: Sequence[ItemId]) -> Set[int]:
        """Ids of reports containing all given drugs and all given ADRs.

        Intersects posting lists smallest-first.  At least one side must
        be non-empty.
        """
        postings: List[Set[int]] = []
        for drug in canonical_itemset(drugs):
            posting = self._drug_postings.get(drug)
            if not posting:
                return set()
            postings.append(posting)
        for adr in canonical_itemset(adrs):
            posting = self._adr_postings.get(adr)
            if not posting:
                return set()
            postings.append(posting)
        if not postings:
            raise ValidationError("containment query needs at least one item")
        postings.sort(key=len)
        result = set(postings[0])
        for posting in postings[1:]:
            result &= posting
            if not result:
                break
        return result

    def count(self, drugs: Sequence[ItemId], adrs: Sequence[ItemId] = ()) -> int:
        """Number of reports containing the given drugs (and ADRs)."""
        return len(self.matching(drugs, adrs))

    def confidence(self, drugs: Sequence[ItemId], adrs: Sequence[ItemId]) -> float:
        """``P(adrs | drugs)`` estimated from containment counts."""
        drug_support = self.count(drugs)
        if drug_support == 0:
            return 0.0
        return self.count(drugs, adrs) / drug_support

    def support(self, drugs: Sequence[ItemId], adrs: Sequence[ItemId]) -> float:
        """Fraction of reports containing drugs and ADRs together."""
        return self.count(drugs, adrs) / len(self.reports)

    def lift(self, drugs: Sequence[ItemId], adrs: Sequence[ItemId]) -> float:
        """Reporting ratio (Formula 3) of the drug set vs the ADR set."""
        joint = self.count(drugs, adrs)
        drug_support = self.count(drugs)
        adr_support = self.count((), adrs)
        if joint == 0 or drug_support == 0 or adr_support == 0:
            return 0.0
        return joint * len(self.reports) / (drug_support * adr_support)

    def drug_name(self, drug: ItemId) -> str:
        """Readable drug name (falls back to ``drug<id>`` without a vocab)."""
        if self.drug_vocabulary is not None:
            return self.drug_vocabulary.name_of(drug)
        return f"drug{drug}"

    def adr_name(self, adr: ItemId) -> str:
        """Readable ADR name (falls back to ``adr<id>`` without a vocab)."""
        if self.adr_vocabulary is not None:
            return self.adr_vocabulary.name_of(adr)
        return f"adr{adr}"
