"""The *contrast* interestingness measure family (Section 2.3.5).

A multi-drug adverse reaction (MDAR) signal is strong when the ADRs are
strongly associated with the *whole* drug combination but only weakly
with every subset of it.  The paper develops the measure in four steps,
all implemented here:

``contrast_max``  (Formula 5)
    Target confidence minus the *highest* contextual confidence — the
    paper's analogue of Bayardo's improvement.
``contrast_avg``  (Formula 6)
    Target confidence minus the *average* contextual confidence.
``contrast_cv``   (Formulas 7-8)
    ``contrast_avg`` penalized by the coefficient of variation of the
    contextual confidences: a cluster with one dangerous high-confidence
    subset must not hide behind many harmless ones.
``contrast_score`` (Formula 9)
    The final MARAS score: per-level mean confidence gaps, weighted by
    the linear decay ``H(i, n) = 1 − (i−1)/n`` (few-drug subsets weigh
    more) and the per-level dispersion penalty ``G``.
"""

from __future__ import annotations

from typing import Sequence

from repro.common.errors import ValidationError
from repro.common.stats import coefficient_of_variation
from repro.common.validation import check_fraction
from repro.maras.cac import ContextualAssociationCluster

#: Default dispersion-penalty strength; the paper's example uses 0.75.
DEFAULT_THETA = 0.75


def dispersion_penalty(confidences: Sequence[float], theta: float) -> float:
    """Formula 8: ``G(S) = 1 − θ·C_v(S)``, clamped at 0 from below.

    ``C_v`` is the coefficient of variation of the confidence set.  The
    paper leaves G unclamped; we floor it at 0 so an extremely dispersed
    level can nullify, but never signs-flip, a positive contrast.
    """
    check_fraction(theta, "theta")
    if not confidences:
        raise ValidationError("dispersion penalty of an empty confidence set")
    return max(0.0, 1.0 - theta * coefficient_of_variation(list(confidences)))


def contrast_max(cluster: ContextualAssociationCluster) -> float:
    """Formula 5: target confidence minus the best contextual confidence."""
    contextual = cluster.contextual_confidences()
    if not contextual:
        raise ValidationError("cluster has no contextual associations")
    return cluster.target_confidence - max(contextual)


def contrast_avg(cluster: ContextualAssociationCluster) -> float:
    """Formula 6: target confidence minus the mean contextual confidence."""
    contextual = cluster.contextual_confidences()
    if not contextual:
        raise ValidationError("cluster has no contextual associations")
    return cluster.target_confidence - sum(contextual) / len(contextual)


def contrast_cv(
    cluster: ContextualAssociationCluster, theta: float = DEFAULT_THETA
) -> float:
    """Formula 7: ``contrast_avg`` scaled by the global dispersion penalty."""
    return contrast_avg(cluster) * dispersion_penalty(
        cluster.contextual_confidences(), theta
    )


def level_weight(level: int, target_drugs: int) -> float:
    """The paper's ``H(i, n)`` linear decay: ``1 − (i−1)/n``.

    Contextual associations with fewer drugs get more weight — the
    drug-safety evaluator already knows individual drugs' profiles, so
    weak single-drug associations are the most informative contrast.
    """
    if not 1 <= level < target_drugs:
        raise ValidationError(
            f"level must be in [1, {target_drugs - 1}], got {level}"
        )
    return 1.0 - (level - 1) / target_drugs


def contrast_score(
    cluster: ContextualAssociationCluster, theta: float = DEFAULT_THETA
) -> float:
    """Formula 9 — the final MARAS contrast score of a cluster.

    ``(1/n) Σ_i [ (1/m_i) Σ_j (P_c(R) − P_c(R̃_j^i)) ] · H(i,n) · G(R̃^i)``

    with ``i`` ranging over the occupied contextual levels ``1..n−1``
    (the paper writes the outer sum to ``n``; the level-``n`` term is
    empty by construction, so the literal formula divides by ``n``,
    which we follow).
    """
    n = len(cluster.target.drugs)
    total = 0.0
    for level in sorted(cluster.levels):
        entries = cluster.levels[level]
        if not entries:
            continue
        gaps = [
            cluster.target_confidence - entry.confidence for entry in entries
        ]
        level_mean_gap = sum(gaps) / len(gaps)
        penalty = dispersion_penalty(
            [entry.confidence for entry in entries], theta
        )
        total += level_mean_gap * level_weight(level, n) * penalty
    return total / n
