"""Case-study evidence reports for MDAR signals (Section 2.5.1).

The paper validates its top signals by hand: for each suspicious
combination it lays out the confidence of the full combination, every
contextual association's confidence, and the supporting reports.  This
module generates that dossier programmatically, so a reviewer (or the
``pharmacovigilance`` example) can inspect *why* a signal ranked where
it did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.common.errors import ValidationError
from repro.maras.reference_kb import KnownInteraction, ReferenceKnowledgeBase
from repro.maras.reports import ReportDatabase
from repro.maras.signals import Signal


@dataclass(frozen=True)
class EvidenceLine:
    """One contextual association's contribution to the dossier."""

    description: str
    confidence: float
    report_count: int
    gap: float


@dataclass(frozen=True)
class CaseStudy:
    """The full evidence dossier of one signal."""

    signal: Signal
    headline: str
    target_confidence: float
    supporting_reports: int
    evidence: Tuple[EvidenceLine, ...]
    known_interactions: Tuple[KnownInteraction, ...]

    @property
    def strongest_alternative(self) -> Optional[EvidenceLine]:
        """The contextual association closest to explaining the ADRs."""
        if not self.evidence:
            return None
        return max(self.evidence, key=lambda line: line.confidence)

    def render(self) -> str:
        """Multi-line, reviewer-facing text rendering."""
        lines = [self.headline]
        lines.append(
            f"  combination confidence {self.target_confidence:.3f} over "
            f"{self.supporting_reports} reports; contrast score "
            f"{self.signal.score:.4f}"
        )
        if self.known_interactions:
            lines.append(
                f"  matches {len(self.known_interactions)} known "
                f"interaction(s) in the reference knowledge base"
            )
        lines.append("  contextual associations (subset => same ADRs):")
        for line in self.evidence:
            lines.append(
                f"    {line.description:<44} conf={line.confidence:.3f} "
                f"n={line.report_count:<5} gap={line.gap:+.3f}"
            )
        return "\n".join(lines)


def build_case_study(
    signal: Signal,
    database: ReportDatabase,
    reference: Optional[ReferenceKnowledgeBase] = None,
) -> CaseStudy:
    """Assemble the dossier for one signal against its report database."""
    association = signal.association
    evidence: List[EvidenceLine] = []
    for contextual in signal.cluster.all_contextual():
        drugs = contextual.association.drugs
        evidence.append(
            EvidenceLine(
                description=contextual.association.format(database),
                confidence=contextual.confidence,
                report_count=database.count(drugs),
                gap=signal.cluster.target_confidence - contextual.confidence,
            )
        )
    known = (
        reference.matching_interactions(association)
        if reference is not None
        else ()
    )
    return CaseStudy(
        signal=signal,
        headline=f"Case study: {association.format(database)}",
        target_confidence=signal.cluster.target_confidence,
        supporting_reports=signal.count,
        evidence=tuple(evidence),
        known_interactions=tuple(known),
    )


def top_case_studies(
    signals: List[Signal],
    database: ReportDatabase,
    *,
    reference: Optional[ReferenceKnowledgeBase] = None,
    k: int = 3,
) -> List[CaseStudy]:
    """Dossiers for the top-*k* signals (the paper presents three)."""
    if k <= 0:
        raise ValidationError(f"k must be positive, got {k}")
    return [
        build_case_study(signal, database, reference)
        for signal in signals[:k]
    ]
