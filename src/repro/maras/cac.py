"""Contextual Association Clusters (Definitions 6-7).

To judge whether a multi-drug association really signals a drug-drug
interaction, MARAS contrasts the target association ``D ⇒ A`` with its
*contextual associations*: every ``D' ⇒ A`` for non-empty proper subsets
``D' ⊂ D``.  The cluster groups the contextual associations by drug
count (the ``R̃^i`` levels of Table 1), because the final contrast score
weights levels differently — a weak association of an *individual* drug
with the ADRs is stronger evidence of an interaction than a weak
association of a sub-combination.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Tuple

from repro.common.errors import ValidationError
from repro.maras.associations import DrugAdrAssociation
from repro.maras.reports import ReportDatabase

# Guard against pathological targets: the cluster has 2^n - 2 members.
MAX_TARGET_DRUGS = 12


@dataclass(frozen=True)
class ContextualAssociation:
    """One contextual association with its measured confidence."""

    association: DrugAdrAssociation
    confidence: float


@dataclass(frozen=True)
class ContextualAssociationCluster:
    """A target association plus all its contextual associations.

    ``levels[i]`` holds the contextual associations with ``i`` drugs
    (``1 <= i <= n-1`` for an ``n``-drug target).
    """

    target: DrugAdrAssociation
    target_confidence: float
    levels: Dict[int, Tuple[ContextualAssociation, ...]]

    @property
    def size(self) -> int:
        """Cluster cardinality |C| (target + all contextual associations)."""
        return 1 + sum(len(level) for level in self.levels.values())

    def all_contextual(self) -> List[ContextualAssociation]:
        """Every contextual association, level by level."""
        result: List[ContextualAssociation] = []
        for level in sorted(self.levels):
            result.extend(self.levels[level])
        return result

    def contextual_confidences(self) -> List[float]:
        """Confidences of all contextual associations (levels flattened)."""
        return [ca.confidence for ca in self.all_contextual()]


def build_cluster(
    database: ReportDatabase, target: DrugAdrAssociation
) -> ContextualAssociationCluster:
    """Build the CAC of *target* against *database* (Definition 7).

    The contextual antecedents are exactly the non-empty proper subsets
    of the target's drug set (``P(D) − {∅, D}``); each keeps the
    target's full ADR set.  Confidences are exact containment ratios
    from the report index.
    """
    drugs = target.drugs
    if len(drugs) < 2:
        raise ValidationError(
            "a contextual association cluster needs a multi-drug target"
        )
    if len(drugs) > MAX_TARGET_DRUGS:
        raise ValidationError(
            f"target has {len(drugs)} drugs; clusters are exponential and "
            f"capped at {MAX_TARGET_DRUGS}"
        )
    levels: Dict[int, List[ContextualAssociation]] = {}
    for level in range(1, len(drugs)):
        entries: List[ContextualAssociation] = []
        for subset in combinations(drugs, level):
            association = DrugAdrAssociation(drugs=subset, adrs=target.adrs)
            entries.append(
                ContextualAssociation(
                    association=association,
                    confidence=database.confidence(subset, target.adrs),
                )
            )
        levels[level] = entries
    return ContextualAssociationCluster(
        target=target,
        target_confidence=database.confidence(drugs, target.adrs),
        levels={level: tuple(entries) for level, entries in levels.items()},
    )
