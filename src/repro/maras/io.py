"""Reading and writing ADR-report TSV files.

Format: ``time<TAB>drug;drug<TAB>adr;adr`` with free-form names — the
closest simple analogue of a FAERS extract.  Vocabularies are built on
read (ids assigned in first-seen order), so a deployment can swap the
synthetic FAERS generator for real extracts without touching anything
downstream.

This lives in the ``maras`` layer (not ``data``) because the record
types it serializes — :class:`~repro.maras.reports.Report` and
:class:`~repro.maras.reports.ReportDatabase` — are MARAS domain
objects; the generic ``data`` layer must not import upward (R002).
The old names remain importable from :mod:`repro.data.io` via a lazy
compatibility shim.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

from repro.common.errors import DataFormatError
from repro.data.items import ItemVocabulary
from repro.maras.reports import Report, ReportDatabase

PathLike = Union[str, Path]


def write_reports(database: ReportDatabase, path: PathLike) -> int:
    """Write ADR reports as ``time<TAB>drugs<TAB>adrs`` (names, ``;``-joined)."""
    lines: List[str] = []
    for report in database:
        drugs = ";".join(database.drug_name(d) for d in report.drugs)
        adrs = ";".join(database.adr_name(a) for a in report.adrs)
        lines.append(f"{report.time}\t{drugs}\t{adrs}")
    Path(path).write_text("\n".join(lines) + ("\n" if lines else ""), "utf-8")
    return len(lines)


def read_reports(path: PathLike) -> ReportDatabase:
    """Read a report TSV back, rebuilding drug/ADR vocabularies."""
    text = Path(path).read_text("utf-8")
    drug_vocabulary = ItemVocabulary()
    adr_vocabulary = ItemVocabulary()
    reports: List[Report] = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.rstrip("\n")
        if not line.strip():
            continue
        fields = line.split("\t")
        if len(fields) != 3:
            raise DataFormatError(
                f"{path}:{line_number}: expected 3 tab-separated fields, "
                f"got {len(fields)}"
            )
        time_text, drugs_text, adrs_text = fields
        try:
            time = int(time_text)
        except ValueError:
            raise DataFormatError(
                f"{path}:{line_number}: bad timestamp {time_text!r}"
            ) from None
        drug_names = [name for name in drugs_text.split(";") if name]
        adr_names = [name for name in adrs_text.split(";") if name]
        if not drug_names or not adr_names:
            raise DataFormatError(
                f"{path}:{line_number}: a report needs drugs and ADRs"
            )
        reports.append(
            Report.create(
                (drug_vocabulary.encode(name) for name in drug_names),
                (adr_vocabulary.encode(name) for name in adr_names),
                time,
            )
        )
    if not reports:
        raise DataFormatError(f"{path}: no reports found")
    return ReportDatabase(
        reports,
        drug_vocabulary=drug_vocabulary,
        adr_vocabulary=adr_vocabulary,
    )
