"""Reading and writing transaction databases and ADR reports.

Two interchange formats:

* **FIMI** — the format of the Frequent Itemset Mining Implementations
  repository that distributes the paper's real datasets (``retail``,
  ``webdocs``): one transaction per line, items as whitespace-separated
  non-negative integers.  Plain FIMI has no timestamps; the *timed*
  variant used here prefixes each line with ``<time>:``.  Reading
  auto-detects which variant a file uses.
* **ADR report TSV** — ``time<TAB>drug;drug<TAB>adr;adr`` with
  free-form names, the closest simple analogue of a FAERS extract.
  Vocabularies are built on read (ids assigned in first-seen order).

These let a deployment swap the synthetic generators for the real files
without touching anything downstream.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

from repro.common.errors import DataFormatError
from repro.data.database import TransactionDatabase
from repro.data.items import ItemVocabulary
from repro.data.transactions import Transaction
from repro.maras.reports import Report, ReportDatabase

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# FIMI transactions
# ----------------------------------------------------------------------
def write_fimi(
    database: TransactionDatabase,
    path: PathLike,
    *,
    include_times: bool = True,
) -> int:
    """Write *database* in (timed) FIMI format; returns lines written.

    With ``include_times=False`` the output is plain FIMI and the
    timestamps are lost (reading it back assigns the dense clock).
    """
    lines: List[str] = []
    for transaction in database:
        items = " ".join(str(item) for item in transaction.items)
        if include_times:
            lines.append(f"{transaction.time}: {items}")
        else:
            lines.append(items)
    Path(path).write_text("\n".join(lines) + ("\n" if lines else ""), "utf-8")
    return len(lines)


def read_fimi(path: PathLike) -> TransactionDatabase:
    """Read a plain or timed FIMI file into a transaction database.

    Blank lines are skipped.  Timed and plain lines must not be mixed;
    malformed lines raise :class:`DataFormatError` with the line number.
    """
    text = Path(path).read_text("utf-8")
    transactions: List[Transaction] = []
    timed: bool | None = None
    dense_clock = 0
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line:
            continue
        has_time = ":" in line
        if timed is None:
            timed = has_time
        elif timed != has_time:
            raise DataFormatError(
                f"{path}:{line_number}: mixed timed and plain FIMI lines"
            )
        try:
            if has_time:
                time_text, _, items_text = line.partition(":")
                time = int(time_text.strip())
            else:
                time = dense_clock
                items_text = line
            items = [int(token) for token in items_text.split()]
        except ValueError as error:
            raise DataFormatError(
                f"{path}:{line_number}: malformed FIMI line: {error}"
            ) from None
        if not items:
            raise DataFormatError(f"{path}:{line_number}: empty transaction")
        transactions.append(Transaction.create(items, time))
        dense_clock += 1
    if not transactions:
        raise DataFormatError(f"{path}: no transactions found")
    return TransactionDatabase(transactions)


# ----------------------------------------------------------------------
# ADR report TSV
# ----------------------------------------------------------------------
def write_reports(database: ReportDatabase, path: PathLike) -> int:
    """Write ADR reports as ``time<TAB>drugs<TAB>adrs`` (names, ``;``-joined)."""
    lines: List[str] = []
    for report in database:
        drugs = ";".join(database.drug_name(d) for d in report.drugs)
        adrs = ";".join(database.adr_name(a) for a in report.adrs)
        lines.append(f"{report.time}\t{drugs}\t{adrs}")
    Path(path).write_text("\n".join(lines) + ("\n" if lines else ""), "utf-8")
    return len(lines)


def read_reports(path: PathLike) -> ReportDatabase:
    """Read a report TSV back, rebuilding drug/ADR vocabularies."""
    text = Path(path).read_text("utf-8")
    drug_vocabulary = ItemVocabulary()
    adr_vocabulary = ItemVocabulary()
    reports: List[Report] = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.rstrip("\n")
        if not line.strip():
            continue
        fields = line.split("\t")
        if len(fields) != 3:
            raise DataFormatError(
                f"{path}:{line_number}: expected 3 tab-separated fields, "
                f"got {len(fields)}"
            )
        time_text, drugs_text, adrs_text = fields
        try:
            time = int(time_text)
        except ValueError:
            raise DataFormatError(
                f"{path}:{line_number}: bad timestamp {time_text!r}"
            ) from None
        drug_names = [name for name in drugs_text.split(";") if name]
        adr_names = [name for name in adrs_text.split(";") if name]
        if not drug_names or not adr_names:
            raise DataFormatError(
                f"{path}:{line_number}: a report needs drugs and ADRs"
            )
        reports.append(
            Report.create(
                (drug_vocabulary.encode(name) for name in drug_names),
                (adr_vocabulary.encode(name) for name in adr_names),
                time,
            )
        )
    if not reports:
        raise DataFormatError(f"{path}: no reports found")
    return ReportDatabase(
        reports,
        drug_vocabulary=drug_vocabulary,
        adr_vocabulary=adr_vocabulary,
    )
