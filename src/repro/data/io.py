"""Reading and writing transaction databases and ADR reports.

Two interchange formats:

* **FIMI** — the format of the Frequent Itemset Mining Implementations
  repository that distributes the paper's real datasets (``retail``,
  ``webdocs``): one transaction per line, items as whitespace-separated
  non-negative integers.  Plain FIMI has no timestamps; the *timed*
  variant used here prefixes each line with ``<time>:``.  Reading
  auto-detects which variant a file uses.
ADR-report TSV I/O lives in :mod:`repro.maras.io` — its record types
are MARAS domain objects, and the data layer may not import upward
(R002).  ``read_reports`` / ``write_reports`` remain importable from
here through a lazy compatibility shim for existing callers.

These let a deployment swap the synthetic generators for the real files
without touching anything downstream.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, List, Union

from repro.common.errors import DataFormatError
from repro.data.database import TransactionDatabase
from repro.data.transactions import Transaction

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# FIMI transactions
# ----------------------------------------------------------------------
def write_fimi(
    database: TransactionDatabase,
    path: PathLike,
    *,
    include_times: bool = True,
) -> int:
    """Write *database* in (timed) FIMI format; returns lines written.

    With ``include_times=False`` the output is plain FIMI and the
    timestamps are lost (reading it back assigns the dense clock).
    """
    lines: List[str] = []
    for transaction in database:
        items = " ".join(str(item) for item in transaction.items)
        if include_times:
            lines.append(f"{transaction.time}: {items}")
        else:
            lines.append(items)
    Path(path).write_text("\n".join(lines) + ("\n" if lines else ""), "utf-8")
    return len(lines)


def read_fimi(path: PathLike) -> TransactionDatabase:
    """Read a plain or timed FIMI file into a transaction database.

    Blank lines are skipped.  Timed and plain lines must not be mixed;
    malformed lines raise :class:`DataFormatError` with the line number.
    """
    text = Path(path).read_text("utf-8")
    transactions: List[Transaction] = []
    timed: bool | None = None
    dense_clock = 0
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line:
            continue
        has_time = ":" in line
        if timed is None:
            timed = has_time
        elif timed != has_time:
            raise DataFormatError(
                f"{path}:{line_number}: mixed timed and plain FIMI lines"
            )
        try:
            if has_time:
                time_text, _, items_text = line.partition(":")
                time = int(time_text.strip())
            else:
                time = dense_clock
                items_text = line
            items = [int(token) for token in items_text.split()]
        except ValueError as error:
            raise DataFormatError(
                f"{path}:{line_number}: malformed FIMI line: {error}"
            ) from None
        if not items:
            raise DataFormatError(f"{path}:{line_number}: empty transaction")
        transactions.append(Transaction.create(items, time))
        dense_clock += 1
    if not transactions:
        raise DataFormatError(f"{path}: no transactions found")
    return TransactionDatabase(transactions)


# ----------------------------------------------------------------------
# ADR report TSV (compatibility shim)
# ----------------------------------------------------------------------
def __getattr__(name: str) -> Any:
    """Lazily forward the relocated report I/O names to ``repro.maras.io``.

    A module-level ``__getattr__`` (PEP 562) keeps ``from repro.data.io
    import read_reports`` working without a static upward import: the
    maras layer only loads if a caller actually touches these names.
    """
    if name in ("read_reports", "write_reports"):
        import repro.maras.io as _maras_io  # repro-lint: disable=R002

        return getattr(_maras_io, name)
    # The PEP 562 protocol itself demands AttributeError here.
    raise AttributeError(  # repro-lint: disable=R003
        f"module {__name__!r} has no attribute {name!r}"
    )
