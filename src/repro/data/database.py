"""The evolving transaction database and its selection primitive.

Implements ``F(X, D, [t_i, t_j])`` from the paper's foundation: the set
of transactions within a closed time range that contain a given itemset.
Transactions are kept sorted by timestamp so range selection is a binary
search plus a contiguous slice.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from repro.common.errors import DataFormatError, ValidationError
from repro.data.items import ItemId, Itemset, canonical_itemset
from repro.data.periods import TimePeriod
from repro.data.transactions import Transaction


class TransactionDatabase:
    """An append-friendly, time-sorted collection of transactions.

    The class is the single source of raw data for the offline builders
    and the from-scratch baselines (DCTAR re-mines it on every request).
    """

    def __init__(self, transactions: Iterable[Transaction] = ()) -> None:
        self._transactions: List[Transaction] = sorted(
            transactions, key=lambda t: t.time
        )
        self._times: List[int] = [t.time for t in self._transactions]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_itemlists(
        cls,
        itemlists: Sequence[Iterable[ItemId]],
        times: Optional[Sequence[int]] = None,
    ) -> "TransactionDatabase":
        """Build a database from plain item lists.

        When *times* is omitted, transactions get the dense clock
        ``0..n-1`` in input order — the convention of all the synthetic
        generators in :mod:`repro.datagen`.
        """
        if times is not None and len(times) != len(itemlists):
            raise DataFormatError(
                f"{len(itemlists)} transactions but {len(times)} timestamps"
            )
        stamps = times if times is not None else range(len(itemlists))
        return cls(
            Transaction.create(items, int(stamp))
            for items, stamp in zip(itemlists, stamps)
        )

    def append(self, transaction: Transaction) -> None:
        """Append a transaction; it must not precede the current maximum time.

        The evolving-data model receives batches in time order; enforcing
        monotonicity keeps the internal sort invariant O(1) per append.
        """
        if self._times and transaction.time < self._times[-1]:
            raise DataFormatError(
                f"out-of-order append: time {transaction.time} precedes "
                f"current maximum {self._times[-1]}"
            )
        self._transactions.append(transaction)
        self._times.append(transaction.time)

    def extend(self, transactions: Iterable[Transaction]) -> None:
        """Append several transactions (each checked for time order)."""
        for transaction in transactions:
            self.append(transaction)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._transactions)

    def __iter__(self) -> Iterator[Transaction]:
        return iter(self._transactions)

    def __getitem__(self, index: int) -> Transaction:
        return self._transactions[index]

    @property
    def time_span(self) -> TimePeriod:
        """Closed period from the earliest to the latest timestamp."""
        if not self._transactions:
            raise ValidationError("empty database has no time span")
        return TimePeriod(self._times[0], self._times[-1])

    def unique_items(self) -> Set[ItemId]:
        """The set of distinct items appearing anywhere in the database."""
        items: Set[ItemId] = set()
        for transaction in self._transactions:
            items.update(transaction.items)
        return items

    def average_transaction_length(self) -> float:
        """Mean itemset size; 0.0 for an empty database."""
        if not self._transactions:
            return 0.0
        return sum(len(t) for t in self._transactions) / len(self._transactions)

    # ------------------------------------------------------------------
    # the F(X, D, [t_i, t_j]) selection primitive
    # ------------------------------------------------------------------
    def slice(self, period: TimePeriod) -> List[Transaction]:
        """All transactions with ``period.start <= time <= period.end``."""
        lo = bisect_left(self._times, period.start)
        hi = bisect_right(self._times, period.end)
        return self._transactions[lo:hi]

    def matching(self, itemset: Itemset, period: TimePeriod) -> List[Transaction]:
        """``F(X, D, [t_i, t_j])``: range transactions containing *itemset*."""
        canonical = canonical_itemset(itemset)
        return [t for t in self.slice(period) if t.contains(canonical)]

    def count(self, itemset: Itemset, period: TimePeriod) -> int:
        """``|F(X, D, [t_i, t_j])|`` — with ``X = ()`` the range size."""
        canonical = canonical_itemset(itemset)
        if not canonical:
            lo = bisect_left(self._times, period.start)
            hi = bisect_right(self._times, period.end)
            return hi - lo
        return sum(1 for t in self.slice(period) if t.contains(canonical))

    def support(self, itemset: Itemset, period: TimePeriod) -> float:
        """Formula 1 restricted to an itemset: fraction of range transactions
        containing it.  0.0 when the range is empty."""
        total = self.count((), period)
        if total == 0:
            return 0.0
        return self.count(itemset, period) / total

    def item_frequencies(self, period: Optional[TimePeriod] = None) -> Dict[ItemId, int]:
        """Occurrence count per item, over the whole database or a range."""
        transactions = (
            self._transactions if period is None else self.slice(period)
        )
        counts: Dict[ItemId, int] = {}
        for transaction in transactions:
            for item in transaction.items:
                counts[item] = counts.get(item, 0) + 1
        return counts
