"""Timestamped transactions — the raw input of temporal association mining.

Matches the paper's foundation (Section 2.2.1): a transaction database
``D`` is a collection of item subsets, each carrying a timestamp drawn
from a linearly ordered set of times.  Timestamps here are plain ints
(the generators use a dense ``0..n-1`` clock; real data would map epoch
seconds or report dates onto ints).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.common.errors import DataFormatError
from repro.data.items import Itemset, canonical_itemset


@dataclass(frozen=True)
class Transaction:
    """One transaction: a canonical itemset plus its timestamp.

    Instances are immutable and hashable so they can live in sets and be
    shared freely between windows, miners and baselines.
    """

    items: Itemset
    time: int

    @classmethod
    def create(cls, items: Iterable[int], time: int) -> "Transaction":
        """Build a transaction, canonicalizing *items* and checking them.

        An empty transaction is rejected: it can never support any
        association and only distorts window sizes.
        """
        canonical = canonical_itemset(items)
        if not canonical:
            raise DataFormatError("a transaction must contain at least one item")
        if not isinstance(time, int) or isinstance(time, bool):
            raise DataFormatError(f"timestamps must be ints, got {time!r}")
        return cls(items=canonical, time=time)

    def __len__(self) -> int:
        return len(self.items)

    def contains(self, itemset: Itemset) -> bool:
        """True if every item of the canonical *itemset* occurs here."""
        transaction_items = self.items
        if len(itemset) > len(transaction_items):
            return False
        item_positions = set(transaction_items)
        return all(item in item_positions for item in itemset)
