"""Data substrate: items, transactions, time periods, windowed databases."""

from repro.data.database import TransactionDatabase
from repro.data.items import (
    ItemId,
    Itemset,
    ItemVocabulary,
    canonical_itemset,
    itemset_issubset,
    itemset_union,
)
from repro.data.periods import (
    PeriodSpec,
    TimePeriod,
    align_period_to_windows,
    coarsen,
    refine,
    windows_to_period,
)
from repro.data.transactions import Transaction
from repro.data.windows import WindowedDatabase

__all__ = [
    "ItemId",
    "Itemset",
    "ItemVocabulary",
    "PeriodSpec",
    "TimePeriod",
    "Transaction",
    "TransactionDatabase",
    "WindowedDatabase",
    "align_period_to_windows",
    "canonical_itemset",
    "coarsen",
    "itemset_issubset",
    "itemset_union",
    "refine",
    "windows_to_period",
]
