"""Item identity and the vocabulary mapping names to dense integer ids.

All mining code operates on dense non-negative integer item ids: set
operations on small ints are fast, and dense ids let generators and
indexes use arrays.  :class:`ItemVocabulary` performs the (optional)
translation between human-readable item names (product names, drug names,
ADR terms) and ids at the edges of the system.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Tuple

from repro.common.errors import ValidationError

ItemId = int
Itemset = Tuple[ItemId, ...]


def canonical_itemset(items: Iterable[ItemId]) -> Itemset:
    """Return *items* as the canonical sorted, duplicate-free tuple.

    Every itemset stored or hashed by the library goes through this
    function, so identical item collections always compare and hash
    equal regardless of input order or container type.
    """
    unique = sorted(set(items))
    for item in unique:
        if not isinstance(item, int) or isinstance(item, bool) or item < 0:
            raise ValidationError(f"item ids must be non-negative ints, got {item!r}")
    return tuple(unique)


def itemset_union(left: Itemset, right: Itemset) -> Itemset:
    """Sorted union of two canonical itemsets (merge of sorted tuples)."""
    result: List[ItemId] = []
    i = j = 0
    while i < len(left) and j < len(right):
        a, b = left[i], right[j]
        if a == b:
            result.append(a)
            i += 1
            j += 1
        elif a < b:
            result.append(a)
            i += 1
        else:
            result.append(b)
            j += 1
    result.extend(left[i:])
    result.extend(right[j:])
    return tuple(result)


def itemset_issubset(small: Itemset, big: Itemset) -> bool:
    """True if every item of *small* occurs in *big* (both canonical)."""
    if len(small) > len(big):
        return False
    j = 0
    for item in small:
        while j < len(big) and big[j] < item:
            j += 1
        if j >= len(big) or big[j] != item:
            return False
        j += 1
    return True


class ItemVocabulary:
    """Bidirectional mapping between item names and dense integer ids.

    Ids are assigned in first-seen order starting at 0.  Lookup of an
    unknown name via :meth:`encode` registers it; :meth:`id_of` does not.
    """

    def __init__(self, names: Iterable[str] = ()) -> None:
        self._name_to_id: Dict[str, ItemId] = {}
        self._id_to_name: List[str] = []
        for name in names:
            self.encode(name)

    def __len__(self) -> int:
        return len(self._id_to_name)

    def __contains__(self, name: str) -> bool:
        return name in self._name_to_id

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_name)

    def encode(self, name: str) -> ItemId:
        """Return the id for *name*, assigning a new one if unseen."""
        if not isinstance(name, str) or not name:
            raise ValidationError(f"item names must be non-empty strings, got {name!r}")
        existing = self._name_to_id.get(name)
        if existing is not None:
            return existing
        item_id = len(self._id_to_name)
        self._name_to_id[name] = item_id
        self._id_to_name.append(name)
        return item_id

    def encode_many(self, names: Iterable[str]) -> Itemset:
        """Encode several names and return the canonical itemset."""
        return canonical_itemset(self.encode(name) for name in names)

    def id_of(self, name: str) -> ItemId:
        """Id of a known name; raises :class:`ValidationError` if unseen."""
        try:
            return self._name_to_id[name]
        except KeyError:
            raise ValidationError(f"unknown item name {name!r}") from None

    def name_of(self, item_id: ItemId) -> str:
        """Name of a known id; raises :class:`ValidationError` if out of range."""
        if 0 <= item_id < len(self._id_to_name):
            return self._id_to_name[item_id]
        raise ValidationError(f"unknown item id {item_id!r}")

    def decode(self, items: Iterable[ItemId]) -> Tuple[str, ...]:
        """Map an itemset back to its names, preserving itemset order."""
        return tuple(self.name_of(item) for item in items)
