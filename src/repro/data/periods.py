"""Time periods and the window-aligned period algebra of the TARA model.

Section 2.4.1 of the paper partitions the timeline into disjoint,
consecutive *basic* time periods of width ``w`` (the finest granularity),
and supports any coarser time specification that is a union of
consecutive basic periods (Definition 8, *time availability*).  This
module provides:

* :class:`TimePeriod` — a closed integer interval ``[start, end]``;
* :class:`PeriodSpec` — a (possibly non-contiguous) set of basic-window
  indexes, the canonical form in which online queries address time;
* helpers to convert between raw timestamp intervals and window indexes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Tuple

from repro.common.errors import QueryError, ValidationError


@dataclass(frozen=True, order=True)
class TimePeriod:
    """A closed interval ``[start, end]`` on the integer timeline."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValidationError(
                f"period end {self.end} precedes start {self.start}"
            )

    def __contains__(self, timestamp: int) -> bool:
        return self.start <= timestamp <= self.end

    @property
    def length(self) -> int:
        """Number of integer timestamps covered by the period."""
        return self.end - self.start + 1

    def overlaps(self, other: "TimePeriod") -> bool:
        """True if the two closed intervals share at least one timestamp."""
        return self.start <= other.end and other.start <= self.end

    def merge(self, other: "TimePeriod") -> "TimePeriod":
        """Smallest period covering both; requires overlap or adjacency."""
        if not (self.overlaps(other) or self._adjacent(other)):
            raise ValidationError(f"cannot merge disjoint periods {self} and {other}")
        return TimePeriod(min(self.start, other.start), max(self.end, other.end))

    def _adjacent(self, other: "TimePeriod") -> bool:
        return self.end + 1 == other.start or other.end + 1 == self.start


class PeriodSpec:
    """A set of basic-window indexes — the time argument of every query.

    The paper's queries name one or more time periods; after alignment to
    the basic window size every period becomes a set of window indexes.
    ``PeriodSpec`` stores them sorted and unique, and offers the
    convenience constructors used by the explorer API.
    """

    __slots__ = ("_windows",)

    def __init__(self, windows: Iterable[int]) -> None:
        cleaned = sorted(set(windows))
        if not cleaned:
            raise QueryError("a period specification must name at least one window")
        for window in cleaned:
            if not isinstance(window, int) or isinstance(window, bool) or window < 0:
                raise ValidationError(
                    f"window indexes must be non-negative ints, got {window!r}"
                )
        self._windows: Tuple[int, ...] = tuple(cleaned)

    @classmethod
    def single(cls, window: int) -> "PeriodSpec":
        """The spec naming exactly one basic window."""
        return cls((window,))

    @classmethod
    def window_range(cls, first: int, last: int) -> "PeriodSpec":
        """All windows from *first* to *last* inclusive."""
        if last < first:
            raise ValidationError(f"range end {last} precedes start {first}")
        return cls(range(first, last + 1))

    @classmethod
    def latest(cls, window_count: int, span: int = 1) -> "PeriodSpec":
        """The most recent *span* windows of a database with *window_count*."""
        if span < 1 or span > window_count:
            raise ValidationError(
                f"span must be in [1, {window_count}], got {span}"
            )
        return cls(range(window_count - span, window_count))

    @property
    def windows(self) -> Tuple[int, ...]:
        """The sorted, unique window indexes."""
        return self._windows

    def __iter__(self) -> Iterator[int]:
        return iter(self._windows)

    def __len__(self) -> int:
        return len(self._windows)

    def __contains__(self, window: int) -> bool:
        return window in set(self._windows)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PeriodSpec) and self._windows == other._windows

    def __hash__(self) -> int:
        return hash(self._windows)

    def __repr__(self) -> str:
        return f"PeriodSpec({list(self._windows)!r})"

    def is_contiguous(self) -> bool:
        """True if the windows form one unbroken run."""
        return self._windows[-1] - self._windows[0] + 1 == len(self._windows)

    def runs(self) -> List[Tuple[int, int]]:
        """Maximal contiguous runs as ``(first, last)`` index pairs."""
        result: List[Tuple[int, int]] = []
        run_start = previous = self._windows[0]
        for window in self._windows[1:]:
            if window == previous + 1:
                previous = window
                continue
            result.append((run_start, previous))
            run_start = previous = window
        result.append((run_start, previous))
        return result

    def union(self, other: "PeriodSpec") -> "PeriodSpec":
        """Spec covering every window of either operand."""
        return PeriodSpec(self._windows + other._windows)

    def restrict_to(self, window_count: int) -> "PeriodSpec":
        """Drop windows outside ``[0, window_count)``; error if none remain."""
        kept = [w for w in self._windows if w < window_count]
        if not kept:
            raise QueryError(
                f"period {self!r} lies entirely outside the {window_count} "
                "available windows"
            )
        return PeriodSpec(kept)


def align_period_to_windows(
    period: TimePeriod, window_width: int, origin: int = 0
) -> PeriodSpec:
    """Map a raw-timestamp period to the basic windows that overlap it.

    The basic window ``i`` covers timestamps
    ``[origin + i*w, origin + (i+1)*w - 1]`` (tumbling windows of width
    ``w``, Figure 3 of the paper).
    """
    if window_width <= 0:
        raise ValidationError(f"window width must be positive, got {window_width}")
    if period.end < origin:
        raise QueryError(f"period {period} precedes the timeline origin {origin}")
    first = max(0, (period.start - origin) // window_width)
    last = (period.end - origin) // window_width
    return PeriodSpec.window_range(first, last)


def windows_to_period(
    spec: PeriodSpec, window_width: int, origin: int = 0
) -> TimePeriod:
    """Smallest raw-timestamp period covering every window in *spec*."""
    first, last = spec.windows[0], spec.windows[-1]
    return TimePeriod(
        origin + first * window_width,
        origin + (last + 1) * window_width - 1,
    )


def coarsen(spec: PeriodSpec, factor: int) -> PeriodSpec:
    """Roll a window spec up by *factor*: indexes in the coarser granularity.

    Window ``i`` at the basic granularity belongs to coarse window
    ``i // factor``.  Used by the explorer's roll-up operation.
    """
    if factor <= 0:
        raise ValidationError(f"roll-up factor must be positive, got {factor}")
    return PeriodSpec(window // factor for window in spec)


def refine(spec: PeriodSpec, factor: int, window_count: int) -> PeriodSpec:
    """Drill a coarse window spec down to basic-window indexes.

    Coarse window ``j`` expands to basic windows
    ``[j*factor, (j+1)*factor) ∩ [0, window_count)``.
    """
    if factor <= 0:
        raise ValidationError(f"drill-down factor must be positive, got {factor}")
    basic: List[int] = []
    for coarse in spec:
        for window in range(coarse * factor, (coarse + 1) * factor):
            if window < window_count:
                basic.append(window)
    if not basic:
        raise QueryError("drill-down produced no in-range basic windows")
    return PeriodSpec(basic)
