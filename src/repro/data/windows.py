"""Tumbling-window partitioning of the evolving database (Figure 3).

TARA partitions the dataset into disjoint time periods — *windows* — of a
basic width ``w`` and pregenerates associations per window.  Two
partitioning conventions are supported because the paper uses both:

* **by time**: window ``i`` covers timestamps ``[i*w, (i+1)*w - 1]``
  (Figure 3's ``w = 20`` example);
* **by count** (equal-sized batches): the paper splits the benchmark
  datasets "into 5/10 equal-sized batches to form the evolving data
  sources" — window ``i`` holds transactions ``[i*w, (i+1)*w)`` in time
  order regardless of their timestamps.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

from repro.common.errors import UnknownWindowError, ValidationError
from repro.data.database import TransactionDatabase
from repro.data.periods import PeriodSpec, TimePeriod
from repro.data.transactions import Transaction


class WindowedDatabase:
    """An immutable partition of a database into consecutive windows.

    The object owns nothing but references: each window is a list slice
    of the underlying (already time-sorted) transaction sequence.
    """

    def __init__(
        self,
        windows: Sequence[Sequence[Transaction]],
        periods: Sequence[TimePeriod],
        *,
        window_width: int,
        by: str,
    ) -> None:
        if len(windows) != len(periods):
            raise ValidationError(
                f"{len(windows)} windows but {len(periods)} periods"
            )
        if not windows:
            raise ValidationError("a windowed database needs at least one window")
        self._windows: List[List[Transaction]] = [list(w) for w in windows]
        self._periods: List[TimePeriod] = list(periods)
        self.window_width = window_width
        self.partitioning = by

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def partition_by_time(
        cls, database: TransactionDatabase, window_width: int, origin: int = 0
    ) -> "WindowedDatabase":
        """Tumbling windows of *window_width* timestamps starting at *origin*.

        Empty trailing windows are not materialized; empty windows in the
        middle of the span are kept (a window with no transactions is
        legal — it simply generates no rules).
        """
        if window_width <= 0:
            raise ValidationError(f"window width must be positive, got {window_width}")
        if len(database) == 0:
            raise ValidationError("cannot partition an empty database")
        span = database.time_span
        if span.start < origin:
            raise ValidationError(
                f"database starts at {span.start}, before origin {origin}"
            )
        window_count = (span.end - origin) // window_width + 1
        windows: List[List[Transaction]] = [[] for _ in range(window_count)]
        for transaction in database:
            windows[(transaction.time - origin) // window_width].append(transaction)
        periods = [
            TimePeriod(origin + i * window_width, origin + (i + 1) * window_width - 1)
            for i in range(window_count)
        ]
        return cls(windows, periods, window_width=window_width, by="time")

    @classmethod
    def partition_by_count(
        cls, database: TransactionDatabase, batch_count: int
    ) -> "WindowedDatabase":
        """Split into *batch_count* equal-sized batches in time order.

        The final batch absorbs the remainder when the size does not
        divide evenly (matching how the paper forms its evolving data
        sources from static benchmark files).
        """
        if batch_count <= 0:
            raise ValidationError(f"batch count must be positive, got {batch_count}")
        total = len(database)
        if total < batch_count:
            raise ValidationError(
                f"cannot split {total} transactions into {batch_count} batches"
            )
        batch_size = total // batch_count
        windows: List[List[Transaction]] = []
        periods: List[TimePeriod] = []
        for i in range(batch_count):
            lo = i * batch_size
            hi = (i + 1) * batch_size if i < batch_count - 1 else total
            batch = [database[j] for j in range(lo, hi)]
            windows.append(batch)
            periods.append(TimePeriod(batch[0].time, batch[-1].time))
        return cls(windows, periods, window_width=batch_size, by="count")

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def window_count(self) -> int:
        """Number of basic windows."""
        return len(self._windows)

    def __len__(self) -> int:
        return len(self._windows)

    def __iter__(self) -> Iterator[List[Transaction]]:
        return iter(self._windows)

    def window(self, index: int) -> List[Transaction]:
        """Transactions of basic window *index*."""
        self._check(index)
        return self._windows[index]

    def window_size(self, index: int) -> int:
        """``|F(∅, D, T_i)|`` — the transaction count of window *index*."""
        self._check(index)
        return len(self._windows[index])

    def window_period(self, index: int) -> TimePeriod:
        """The raw-time period covered by window *index*."""
        self._check(index)
        return self._periods[index]

    def all_windows(self) -> PeriodSpec:
        """Period spec naming every basic window."""
        return PeriodSpec(range(self.window_count))

    def transactions_for(self, spec: PeriodSpec) -> List[Transaction]:
        """Concatenated transactions of all windows in *spec* (time order)."""
        result: List[Transaction] = []
        for index in spec:
            self._check(index)
            result.extend(self._windows[index])
        return result

    def total_size(self, spec: PeriodSpec) -> int:
        """Total transaction count across the windows of *spec*."""
        return sum(self.window_size(index) for index in spec)

    def _check(self, index: int) -> None:
        if not 0 <= index < len(self._windows):
            raise UnknownWindowError(
                f"window {index} out of range [0, {len(self._windows)})"
            )
