"""Transport-agnostic routing and dispatch for the serving tier.

:class:`QueryGateway` is the part of the server that is pure
request/response logic: route a ``(method, target, body)`` triple to a
handler, decode the JSON request, coalesce region-equivalent executions
(:mod:`repro.serve.coalesce`), run the query on a thread pool in front
of one shared thread-safe :class:`repro.service.service.TaraService`,
and wrap the answer in the response envelope.  Both transports — the
asyncio HTTP front door (:mod:`repro.serve.server`) and the ASGI
adapter (:mod:`repro.serve.asgi`) — delegate here, so wire semantics
cannot drift between them.

Routes::

    GET  /healthz             liveness + drain state + serving epoch
    GET  /metrics             counters, latency histograms, coalescing
    GET  /v1/snapshot         published epoch, window count, refcounts
    POST /v1/query/<kind>     one query; kinds in protocol.QUERY_KINDS
    POST /v1/admin/append     writer path: publish new window batches

Envelope: success is ``{"ok": true, "query_class", "epoch",
"snapshot_epoch", "coalesced", "answer"}``; every failure is ``{"ok":
false, "error": {"code", "message"}}`` with the HTTP status carrying
the family (400 protocol/domain, 404/405 routing, 409 build in flight,
503 draining, 500 bug).

Snapshot consistency: the gateway pins the current MVCC snapshot
*before* decoding work begins, canonicalizes against the pinned view,
coalesces on the canonical key (which embeds the snapshot epoch for
generation-scoped queries, so region-equivalent requests can only ever
share an execution on the *same* snapshot — see
:mod:`repro.serve.coalesce`), executes on the thread pool against the
pinned snapshot, and releases the pin after the answer is encoded.
There is no post-await epoch re-check anymore: a publish landing
mid-request cannot change what a pinned request observes, by
construction.
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Tuple

from repro.common.errors import (
    BuildInFlightError,
    ProtocolError,
    QueryError,
    ReproError,
    UnknownRuleError,
    UnknownWindowError,
    ValidationError,
)
from repro.common.timing import stopwatch
from repro.core.snapshot import Snapshot
from repro.serve.coalesce import RequestCoalescer
from repro.serve.metrics import ServerMetrics
from repro.serve.protocol import (
    QUERY_KINDS,
    JsonDict,
    decode_batches,
    decode_request,
    encode_answer,
)
from repro.service.keys import canonicalize
from repro.service.service import TaraService

#: Route prefix for the query endpoints.
QUERY_ROUTE_PREFIX = "/v1/query/"

#: Default worker-pool width (threads executing queries).
DEFAULT_POOL_SIZE = 4


def error_payload(code: str, message: str) -> JsonDict:
    """The failure envelope every error response uses."""
    return {"ok": False, "error": {"code": code, "message": message}}


def _error_code(error: ReproError) -> str:
    if isinstance(error, ProtocolError):
        return "protocol"
    if isinstance(error, ValidationError):
        return "validation"
    if isinstance(error, (QueryError, UnknownRuleError, UnknownWindowError)):
        return "query"
    return "error"


class QueryGateway:
    """Routes requests onto one shared :class:`TaraService`.

    The gateway itself is event-loop-confined (coalescer map, metrics);
    only :meth:`TaraService.execute` calls cross into the thread pool,
    and the service carries its own lock.  One gateway serves exactly
    one loop — create it from the loop that will dispatch on it.
    """

    def __init__(
        self,
        service: TaraService,
        *,
        pool_size: int = DEFAULT_POOL_SIZE,
        metrics: Optional[ServerMetrics] = None,
    ) -> None:
        if pool_size < 1:
            raise ValidationError(f"pool_size must be >= 1, got {pool_size}")
        self._service = service
        self._pool = ThreadPoolExecutor(
            max_workers=pool_size, thread_name_prefix="tara-serve"
        )
        self.pool_size = pool_size
        self.coalescer = RequestCoalescer()
        self.metrics = metrics if metrics is not None else ServerMetrics()
        self._draining = False

    @property
    def service(self) -> TaraService:
        """The shared service every worker thread executes against."""
        return self._service

    @property
    def draining(self) -> bool:
        """True once :meth:`begin_drain` was called."""
        return self._draining

    @property
    def in_flight(self) -> int:
        """Requests currently being dispatched (drain watches this)."""
        return self.metrics.in_flight

    def begin_drain(self) -> None:
        """Stop accepting query work; health checks report ``draining``."""
        self._draining = True

    def aclose(self) -> None:
        """Release the worker pool (after the last request drained)."""
        self._pool.shutdown(wait=True)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    async def dispatch(
        self, method: str, target: str, body: bytes
    ) -> Tuple[int, JsonDict]:
        """Serve one request; always returns ``(status, envelope)``."""
        endpoint = self._endpoint_label(target)
        self.metrics.enter()
        try:
            with stopwatch() as clock:
                try:
                    status, payload = await self._route(method, target, body)
                except ReproError as error:
                    status = 400
                    payload = error_payload(_error_code(error), str(error))
                except Exception as error:  # repro-lint: disable=R003
                    # The dispatch contract is "every request gets an
                    # envelope": a handler bug must become a 500 response,
                    # not a dropped connection or a dead server loop.
                    status = 500
                    payload = error_payload(
                        "internal", f"{type(error).__name__}: {error}"
                    )
            self.metrics.observe(endpoint, status, clock.seconds)
            return status, payload
        finally:
            self.metrics.exit()

    def _endpoint_label(self, target: str) -> str:
        if target.startswith(QUERY_ROUTE_PREFIX):
            kind = target[len(QUERY_ROUTE_PREFIX) :]
            if kind in QUERY_KINDS:
                return f"query/{kind}"
        if target in ("/healthz", "/metrics"):
            return target.lstrip("/")
        if target == "/v1/snapshot":
            return "snapshot"
        if target == "/v1/admin/append":
            return "admin/append"
        return "other"

    async def _route(
        self, method: str, target: str, body: bytes
    ) -> Tuple[int, JsonDict]:
        if target == "/healthz":
            if method != "GET":
                return 405, error_payload("method", "use GET for /healthz")
            return 200, self._health()
        if target == "/metrics":
            if method != "GET":
                return 405, error_payload("method", "use GET for /metrics")
            return 200, {
                "ok": True,
                "metrics": self.metrics.as_dict(self.coalescer.counters()),
                "service": self._service.metrics_snapshot(),
            }
        if target == "/v1/snapshot":
            if method != "GET":
                return 405, error_payload("method", "use GET for /v1/snapshot")
            return 200, {
                "ok": True,
                "snapshot": self._service.snapshot_stats(),
            }
        if target == "/v1/admin/append":
            if method != "POST":
                return 405, error_payload(
                    "method", "use POST for /v1/admin/append"
                )
            if self._draining:
                return 503, error_payload("draining", "server is draining")
            return await self._append(body)
        if target.startswith(QUERY_ROUTE_PREFIX):
            kind = target[len(QUERY_ROUTE_PREFIX) :]
            if kind not in QUERY_KINDS:
                return 404, error_payload(
                    "route",
                    f"unknown query kind {kind!r}; "
                    f"expected one of {', '.join(QUERY_KINDS)}",
                )
            if method != "POST":
                return 405, error_payload(
                    "method", f"use POST for {QUERY_ROUTE_PREFIX}{kind}"
                )
            if self._draining:
                return 503, error_payload("draining", "server is draining")
            return await self._query(kind, body)
        return 404, error_payload("route", f"no route for {target!r}")

    def _health(self) -> JsonDict:
        return {
            "ok": True,
            "status": "draining" if self._draining else "serving",
            "epoch": self._service.epoch,
            "windows": self._service.knowledge_base.window_count,
            "uptime_seconds": self.metrics.uptime_seconds,
        }

    async def _query(self, kind: str, body: bytes) -> Tuple[int, JsonDict]:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return 400, error_payload(
                "protocol", f"request body is not valid JSON: {error}"
            )
        # ProtocolError (bad shape) and domain errors (unknown window,
        # out-of-range setting) both surface here; dispatch maps them
        # to a 400 envelope with the class-specific code.
        query = decode_request(kind, payload)
        # Pin first: decode, canonicalization, coalescing, and execution
        # all observe this one immutable snapshot, no matter how many
        # publishes land while the request is in flight.
        handle = self._service.pin()
        try:
            snapshot: Snapshot = handle.snapshot
            canonical = canonicalize(
                query, snapshot.knowledge_base, snapshot.epoch
            )
            loop = asyncio.get_running_loop()

            def execute() -> object:
                return self._service.execute_on(snapshot, query)

            def supplier() -> "asyncio.Future[object]":
                return loop.run_in_executor(self._pool, execute)

            if canonical.key is None:
                # Roll-up: not region-cacheable, so not coalescible either.
                answer: object = await supplier()
                coalesced = False
            else:
                # Scoped keys embed the snapshot epoch, and epochs are
                # strictly increasing window counts, so attaching to an
                # in-flight execution is only possible when both
                # requests pinned the same snapshot.  Epoch-free keys
                # name explicit immutable windows; any snapshot's
                # answer is the answer.
                answer, coalesced = await self.coalescer.run(
                    canonical.key, supplier
                )
            return 200, {
                "ok": True,
                "query_class": canonical.query_class,
                # "epoch" predates PR 8 and is kept for wire
                # compatibility; "snapshot_epoch" is the same value
                # under its honest name.
                "epoch": snapshot.epoch,
                "snapshot_epoch": snapshot.epoch,
                "coalesced": coalesced,
                "answer": encode_answer(canonical.query_class, answer),
            }
        finally:
            handle.release()

    async def _append(self, body: bytes) -> Tuple[int, JsonDict]:
        """The writer path: publish new window batches as one snapshot.

        One writer at a time — a publish racing an in-flight build gets
        HTTP 409 with code ``"building"`` and should retry after the
        current build lands.  Readers are never blocked: they keep
        answering from the predecessor snapshot until the atomic swap.
        """
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return 400, error_payload(
                "protocol", f"request body is not valid JSON: {error}"
            )
        batches = decode_batches(payload)
        loop = asyncio.get_running_loop()

        def publish() -> Snapshot:
            return self._service.publish(batches)

        try:
            snapshot = await loop.run_in_executor(self._pool, publish)
        except BuildInFlightError as error:
            return 409, error_payload("building", str(error))
        return 200, {
            "ok": True,
            "snapshot_epoch": snapshot.epoch,
            "windows": snapshot.window_count,
            "windows_added": len(batches),
        }
