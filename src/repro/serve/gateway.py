"""Transport-agnostic routing and dispatch for the serving tier.

:class:`QueryGateway` is the part of the server that is pure
request/response logic: route a ``(method, target, body, headers)``
tuple to a handler, decode the JSON request, coalesce region-equivalent
executions (:mod:`repro.serve.coalesce`), run the query on a thread
pool in front of one shared thread-safe
:class:`repro.service.service.TaraService`, and assemble the response
*bytes*.  Both transports — the asyncio HTTP front door
(:mod:`repro.serve.server`) and the ASGI adapter
(:mod:`repro.serve.asgi`) — delegate here, so wire semantics cannot
drift between them.

Routes::

    GET  /healthz             liveness + drain state + serving epoch
    GET  /metrics             counters, latency histograms, coalescing
    GET  /v1/snapshot         published epoch, window count, refcounts
    POST /v1/query/<kind>     one query; kinds in protocol.QUERY_KINDS
    POST /v1/admin/append     writer path: publish new window batches

Envelope: success is ``{"ok": true, "query_class", "epoch",
"snapshot_epoch", "coalesced", "cached", "answer"}``; every failure is
``{"ok": false, "error": {"code", "message"}}`` with the HTTP status
carrying the family (400 protocol/domain, 404/405 routing, 409 build
in flight, 503 draining, 500 bug).

**The wire-hot path (PR 10).**  Query responses are built from encoded
bytes end to end: answers are serialized once through
:func:`repro.serve.protocol.encode_answer_bytes` (memoized per-rule
fragments, chunked emission) and the resulting blob is stored in a
:class:`repro.serve.respcache.ResponseCache` keyed by ``(region key,
echo tag, encoding)``.  A warm request is a dict probe plus a splice of
``envelope prefix + cached blob + "}"`` — no dict building, no
``json.dumps``.  Coalescing happens at the same byte layer: followers
receive the leader's encoded chunks and only prepend their own
envelope prefix (their ``coalesced`` flag differs), with zero
re-encode.  ``Accept-Encoding: gzip`` clients get a cached
pre-compressed variant (compressed once, on the first gzip-accepting
hit), and conditional requests short-circuit to 304 before any
execution: the weak ETag names ``(query class, region key, echo)``,
and scoped region keys embed the snapshot epoch, so a publish changes
the ETag by construction.

Snapshot consistency: the gateway pins the current MVCC snapshot
*before* decoding work begins, canonicalizes against the pinned view,
coalesces on the canonical key (which embeds the snapshot epoch for
generation-scoped queries, so region-equivalent requests can only ever
share an execution on the *same* snapshot — see
:mod:`repro.serve.coalesce`), executes on the thread pool against the
pinned snapshot, and releases the pin after the answer is encoded.
The response cache observes pinned epochs and purges scoped entries of
retired snapshots (:meth:`ResponseCache.observe_epoch`).
"""

from __future__ import annotations

import asyncio
import gzip
import hashlib
import json
import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Mapping, Optional, Tuple, Union, cast

from repro.common.errors import (
    BuildInFlightError,
    ProtocolError,
    QueryError,
    ReproError,
    UnknownRuleError,
    UnknownWindowError,
    ValidationError,
)
from repro.common.timing import stopwatch
from repro.core.snapshot import Snapshot
from repro.serve.coalesce import RequestCoalescer
from repro.serve.metrics import ServerMetrics
from repro.serve.protocol import (
    ENVELOPE_SUFFIX,
    QUERY_KINDS,
    JsonDict,
    decode_batches,
    decode_request,
    dumps_bytes,
    encode_answer_bytes,
    envelope_prefix,
)
from repro.serve.respcache import (
    DEFAULT_RESPONSE_CACHE_BYTES,
    GZIP,
    ResponseCache,
    ResponseKey,
)
from repro.service.keys import canonicalize, echo_tag
from repro.service.service import TaraService

#: Route prefix for the query endpoints.
QUERY_ROUTE_PREFIX = "/v1/query/"

#: Default worker-pool width (threads executing queries).
DEFAULT_POOL_SIZE = 4

#: Bodies at or above this size stream as chunked transfer.
STREAM_THRESHOLD = 64 * 1024

#: Deterministic gzip: fixed mtime (rule R005 — no wall clocks in
#: outputs) so the same body always compresses to the same bytes.
_GZIP_LEVEL = 6

_VARY = ("Vary", "Accept-Encoding")


def auto_pool_size() -> int:
    """Worker threads matched to the host: one per CPU, at least one."""
    return max(1, os.cpu_count() or 1)


def resolve_pool_size(value: Union[int, str]) -> int:
    """Parse a ``--pool-size`` value: a positive integer or ``"auto"``."""
    if isinstance(value, str):
        if value.strip().lower() == "auto":
            return auto_pool_size()
        try:
            value = int(value)
        except ValueError as error:
            raise ValidationError(
                f"pool size must be a positive integer or 'auto', "
                f"got {value!r}"
            ) from error
    if value < 1:
        raise ValidationError(f"pool_size must be >= 1, got {value}")
    return value


def error_payload(code: str, message: str) -> JsonDict:
    """The failure envelope every error response uses."""
    return {"ok": False, "error": {"code": code, "message": message}}


def _error_code(error: ReproError) -> str:
    if isinstance(error, ProtocolError):
        return "protocol"
    if isinstance(error, ValidationError):
        return "validation"
    if isinstance(error, (QueryError, UnknownRuleError, UnknownWindowError)):
        return "query"
    return "error"


def _gzip_bytes(data: bytes) -> bytes:
    """Deterministic compression for cached variants (mtime pinned)."""
    return gzip.compress(data, compresslevel=_GZIP_LEVEL, mtime=0)


def answer_etag(
    query_class: str, key: Tuple[int, ...], echo: Tuple[float, ...]
) -> str:
    """Weak validator for one cacheable response identity.

    Hashes ``(query class, canonical key, echo tag)`` — the canonical
    key embeds the snapshot epoch for generation-scoped queries, so a
    publish rotates the ETag without any bookkeeping.  Weak (``W/``)
    because the identity and gzip encodings of one answer share it.
    """
    material = repr((query_class, key, echo)).encode("utf-8")
    return f'W/"{hashlib.sha256(material).hexdigest()[:32]}"'


def _etag_matches(header: Optional[str], etag: str) -> bool:
    """``If-None-Match`` comparison (weak: ignores the ``W/`` prefix)."""
    if header is None:
        return False
    opaque = etag[2:] if etag.startswith("W/") else etag
    for candidate in header.split(","):
        candidate = candidate.strip()
        if candidate == "*":
            return True
        if candidate.startswith("W/"):
            candidate = candidate[2:]
        if candidate == opaque:
            return True
    return False


def _accepts_gzip(headers: Optional[Mapping[str, str]]) -> bool:
    """Minimal ``Accept-Encoding`` negotiation: is gzip acceptable?"""
    if headers is None:
        return False
    accept = headers.get("accept-encoding", "")
    for token in accept.split(","):
        name, _, params = token.strip().partition(";")
        if name.strip().lower() != "gzip":
            continue
        quality = params.replace(" ", "")
        if quality.startswith("q=0") and not quality.startswith("q=0."):
            return False
        return True
    return False


@dataclass(frozen=True)
class WireResponse:
    """One routed response as the transport sees it.

    ``chunks`` concatenated are the body; transports write them
    individually (zero-copy for cached blobs).  ``stream`` asks the
    HTTP front door to frame the body as chunked transfer instead of
    ``Content-Length``.  ``headers`` are extras beyond framing
    (``ETag``, ``Vary``, ``Content-Encoding``).
    """

    status: int
    chunks: Tuple[bytes, ...]
    headers: Tuple[Tuple[str, str], ...] = ()
    stream: bool = False

    @property
    def body(self) -> bytes:
        """The complete body (joins the chunks; tests and compat)."""
        return b"".join(self.chunks)

    @property
    def content_length(self) -> int:
        """Total body size in bytes."""
        return sum(len(chunk) for chunk in self.chunks)


def _json_response(status: int, payload: JsonDict) -> WireResponse:
    return WireResponse(status, (dumps_bytes(payload),))


class QueryGateway:
    """Routes requests onto one shared :class:`TaraService`.

    The gateway itself is event-loop-confined (coalescer map, metrics,
    response cache); only :meth:`TaraService.execute_on` calls and gzip
    compression cross into the thread pool, and the service carries its
    own lock.  One gateway serves exactly one loop — create it from the
    loop that will dispatch on it.
    """

    def __init__(
        self,
        service: TaraService,
        *,
        pool_size: int = DEFAULT_POOL_SIZE,
        metrics: Optional[ServerMetrics] = None,
        response_cache_bytes: int = DEFAULT_RESPONSE_CACHE_BYTES,
    ) -> None:
        if pool_size < 1:
            raise ValidationError(f"pool_size must be >= 1, got {pool_size}")
        self._service = service
        self._pool = ThreadPoolExecutor(
            max_workers=pool_size, thread_name_prefix="tara-serve"
        )
        self.pool_size = pool_size
        self.coalescer = RequestCoalescer()
        self.metrics = metrics if metrics is not None else ServerMetrics()
        self.respcache = ResponseCache(response_cache_bytes)
        self._draining = False

    @property
    def service(self) -> TaraService:
        """The shared service every worker thread executes against."""
        return self._service

    @property
    def draining(self) -> bool:
        """True once :meth:`begin_drain` was called."""
        return self._draining

    @property
    def in_flight(self) -> int:
        """Requests currently being dispatched (drain watches this)."""
        return self.metrics.in_flight

    def begin_drain(self) -> None:
        """Stop accepting query work; health checks report ``draining``."""
        self._draining = True

    def aclose(self) -> None:
        """Release the worker pool (after the last request drained)."""
        self._pool.shutdown(wait=True)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    async def dispatch_wire(
        self,
        method: str,
        target: str,
        body: bytes,
        headers: Optional[Mapping[str, str]] = None,
    ) -> WireResponse:
        """Serve one request; always returns a :class:`WireResponse`.

        *headers* are the request headers, lower-cased (the HTTP layer
        already normalizes them); ``None`` means "no negotiable
        headers" — identity encoding, no conditional handling.
        """
        endpoint = self._endpoint_label(target)
        self.metrics.enter()
        try:
            with stopwatch() as clock:
                try:
                    response = await self._route(method, target, body, headers)
                except ReproError as error:
                    response = _json_response(
                        400, error_payload(_error_code(error), str(error))
                    )
                except Exception as error:  # repro-lint: disable=R003
                    # The dispatch contract is "every request gets an
                    # envelope": a handler bug must become a 500 response,
                    # not a dropped connection or a dead server loop.
                    response = _json_response(
                        500,
                        error_payload(
                            "internal", f"{type(error).__name__}: {error}"
                        ),
                    )
            self.metrics.observe(endpoint, response.status, clock.seconds)
            return response
        finally:
            self.metrics.exit()

    async def dispatch(
        self, method: str, target: str, body: bytes
    ) -> Tuple[int, JsonDict]:
        """Compatibility dispatch: ``(status, decoded envelope)``.

        The pre-PR-10 entry point, kept for in-process callers and
        tests that want the envelope as a dict; the wire transports use
        :meth:`dispatch_wire` and never re-parse response bytes.
        """
        response = await self.dispatch_wire(method, target, body)
        payload: JsonDict = (
            json.loads(response.body) if response.content_length else {}
        )
        return response.status, payload

    def _endpoint_label(self, target: str) -> str:
        if target.startswith(QUERY_ROUTE_PREFIX):
            kind = target[len(QUERY_ROUTE_PREFIX) :]
            if kind in QUERY_KINDS:
                return f"query/{kind}"
        if target in ("/healthz", "/metrics"):
            return target.lstrip("/")
        if target == "/v1/snapshot":
            return "snapshot"
        if target == "/v1/admin/append":
            return "admin/append"
        return "other"

    async def _route(
        self,
        method: str,
        target: str,
        body: bytes,
        headers: Optional[Mapping[str, str]],
    ) -> WireResponse:
        if target == "/healthz":
            if method != "GET":
                return _json_response(
                    405, error_payload("method", "use GET for /healthz")
                )
            return _json_response(200, self._health())
        if target == "/metrics":
            if method != "GET":
                return _json_response(
                    405, error_payload("method", "use GET for /metrics")
                )
            return _json_response(
                200,
                {
                    "ok": True,
                    "metrics": self.metrics.as_dict(
                        self.coalescer.counters(),
                        respcache=self.respcache.counters(),
                    ),
                    "service": self._service.metrics_snapshot(),
                },
            )
        if target == "/v1/snapshot":
            if method != "GET":
                return _json_response(
                    405, error_payload("method", "use GET for /v1/snapshot")
                )
            return _json_response(
                200, {"ok": True, "snapshot": self._service.snapshot_stats()}
            )
        if target == "/v1/admin/append":
            if method != "POST":
                return _json_response(
                    405,
                    error_payload("method", "use POST for /v1/admin/append"),
                )
            if self._draining:
                return _json_response(
                    503, error_payload("draining", "server is draining")
                )
            return await self._append(body)
        if target.startswith(QUERY_ROUTE_PREFIX):
            kind = target[len(QUERY_ROUTE_PREFIX) :]
            if kind not in QUERY_KINDS:
                return _json_response(
                    404,
                    error_payload(
                        "route",
                        f"unknown query kind {kind!r}; "
                        f"expected one of {', '.join(QUERY_KINDS)}",
                    ),
                )
            if method != "POST":
                return _json_response(
                    405,
                    error_payload(
                        "method", f"use POST for {QUERY_ROUTE_PREFIX}{kind}"
                    ),
                )
            if self._draining:
                return _json_response(
                    503, error_payload("draining", "server is draining")
                )
            return await self._query(kind, body, headers)
        return _json_response(
            404, error_payload("route", f"no route for {target!r}")
        )

    def _health(self) -> JsonDict:
        return {
            "ok": True,
            "status": "draining" if self._draining else "serving",
            "epoch": self._service.epoch,
            "windows": self._service.knowledge_base.window_count,
            "uptime_seconds": self.metrics.uptime_seconds,
        }

    # ------------------------------------------------------------------
    # the query path
    # ------------------------------------------------------------------
    def _answer_response(
        self,
        query_class: str,
        epoch: int,
        answer_chunks: Tuple[bytes, ...],
        *,
        coalesced: bool,
        cached: bool,
        etag: Optional[str],
    ) -> WireResponse:
        """Assemble a 200 envelope around already-encoded answer bytes."""
        prefix = envelope_prefix(
            query_class, epoch, coalesced=coalesced, cached=cached
        )
        chunks = (prefix, *answer_chunks, ENVELOPE_SUFFIX)
        headers: Tuple[Tuple[str, str], ...] = ()
        if etag is not None:
            headers = (("ETag", etag), _VARY)
        total = sum(len(chunk) for chunk in chunks)
        return WireResponse(
            200, chunks, headers, stream=total >= STREAM_THRESHOLD
        )

    async def _query(
        self,
        kind: str,
        body: bytes,
        headers: Optional[Mapping[str, str]],
    ) -> WireResponse:
        try:
            payload = json.loads(body)
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            # json.loads accepts bytes directly (no decode() copy of the
            # whole body); the JSONDecodeError str() still carries the
            # line/column/char position of the failure.
            return _json_response(
                400,
                error_payload(
                    "protocol", f"request body is not valid JSON: {error}"
                ),
            )
        # ProtocolError (bad shape) and domain errors (unknown window,
        # out-of-range setting) both surface here; dispatch maps them
        # to a 400 envelope with the class-specific code.
        query = decode_request(kind, payload)
        accept_gzip = _accepts_gzip(headers)
        # Pin first: decode, canonicalization, coalescing, and execution
        # all observe this one immutable snapshot, no matter how many
        # publishes land while the request is in flight.
        handle = self._service.pin()
        try:
            snapshot: Snapshot = handle.snapshot
            canonical = canonicalize(
                query, snapshot.knowledge_base, snapshot.epoch
            )
            loop = asyncio.get_running_loop()

            def execute() -> Tuple[bytes, ...]:
                answer = self._service.execute_on(snapshot, query)
                return tuple(
                    encode_answer_bytes(canonical.query_class, answer)
                )

            if canonical.key is None:
                # Roll-up: not region-cacheable, so neither coalescible
                # nor byte-cacheable (answers threshold merged counts).
                chunks = await loop.run_in_executor(self._pool, execute)
                return self._answer_response(
                    canonical.query_class,
                    snapshot.epoch,
                    chunks,
                    coalesced=False,
                    cached=False,
                    etag=None,
                )

            # A pinned epoch advancing past older scoped entries means
            # those snapshots retired — drop their dead bytes.
            self.respcache.observe_epoch(snapshot.epoch)
            echo = echo_tag(query)
            etag = answer_etag(canonical.query_class, canonical.key, echo)
            if headers is not None and _etag_matches(
                headers.get("if-none-match"), etag
            ):
                self.respcache.record_not_modified()
                return WireResponse(304, (), (("ETag", etag), _VARY))

            response_key: ResponseKey = (canonical.key, echo)
            found = self.respcache.lookup(
                response_key, accept_gzip=accept_gzip
            )
            if found is not None and found.encoding == GZIP:
                self.respcache.record_served(len(found.body))
                return WireResponse(
                    200,
                    (found.body,),
                    (("Content-Encoding", "gzip"), ("ETag", etag), _VARY),
                )
            if found is not None:
                blob = found.body
                if accept_gzip:
                    # First gzip-accepting hit: compress the complete
                    # cached-variant body once (off-loop) and store it;
                    # every later gzip client gets the variant above.
                    prefix = envelope_prefix(
                        canonical.query_class,
                        snapshot.epoch,
                        coalesced=False,
                        cached=True,
                    )
                    compressed = await loop.run_in_executor(
                        self._pool,
                        _gzip_bytes,
                        prefix + blob + ENVELOPE_SUFFIX,
                    )
                    self.respcache.put_gzip(
                        response_key, compressed, canonical.epoch
                    )
                    self.respcache.record_served(len(compressed))
                    return WireResponse(
                        200,
                        (compressed,),
                        (
                            ("Content-Encoding", "gzip"),
                            ("ETag", etag),
                            _VARY,
                        ),
                    )
                self.respcache.record_served(len(blob))
                return self._answer_response(
                    canonical.query_class,
                    snapshot.epoch,
                    (blob,),
                    coalesced=False,
                    cached=True,
                    etag=etag,
                )

            # Miss: execute + encode once, coalescing concurrent
            # region-equivalent requests at the encoded-bytes layer —
            # followers receive the leader's chunks with zero re-encode.
            # Scoped keys embed the snapshot epoch, and epochs are
            # strictly increasing window counts, so attaching to an
            # in-flight execution is only possible when both requests
            # pinned the same snapshot.  Epoch-free keys name explicit
            # immutable windows; any snapshot's bytes are the bytes.
            def supplier() -> "asyncio.Future[Tuple[bytes, ...]]":
                return loop.run_in_executor(self._pool, execute)

            shared, coalesced = await self.coalescer.run(
                canonical.key, supplier
            )
            answer_chunks = cast(Tuple[bytes, ...], shared)
            if not coalesced:
                # Only the leader stores: its echo tag matches the bytes
                # it encoded.  (Coalesced followers share the leader's
                # echoed floats, exactly as the pre-PR-10 answer-object
                # sharing did.)
                self.respcache.put(
                    response_key, b"".join(answer_chunks), canonical.epoch
                )
            return self._answer_response(
                canonical.query_class,
                snapshot.epoch,
                answer_chunks,
                coalesced=coalesced,
                cached=False,
                etag=etag,
            )
        finally:
            handle.release()

    async def _append(self, body: bytes) -> WireResponse:
        """The writer path: publish new window batches as one snapshot.

        One writer at a time — a publish racing an in-flight build gets
        HTTP 409 with code ``"building"`` and should retry after the
        current build lands.  Readers are never blocked: they keep
        answering from the predecessor snapshot until the atomic swap.
        """
        try:
            payload = json.loads(body)
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return _json_response(
                400,
                error_payload(
                    "protocol", f"request body is not valid JSON: {error}"
                ),
            )
        batches = decode_batches(payload)
        loop = asyncio.get_running_loop()

        def publish() -> Snapshot:
            return self._service.publish(batches)

        try:
            snapshot = await loop.run_in_executor(self._pool, publish)
        except BuildInFlightError as error:
            return _json_response(409, error_payload("building", str(error)))
        return _json_response(
            200,
            {
                "ok": True,
                "snapshot_epoch": snapshot.epoch,
                "windows": snapshot.window_count,
                "windows_added": len(batches),
            },
        )
