"""A minimal asyncio HTTP/1.1 client for the serving tier.

:class:`ServeClient` is the counterpart of the server's framing layer —
one persistent connection, JSON envelopes in and out.  The bench-serve
harness drives its concurrent workload through it, the test suite uses
it for end-to-end assertions, and it doubles as a reference
implementation of the wire protocol for external clients
(docs/serving.md shows the equivalent ``curl`` spellings).
"""

from __future__ import annotations

import asyncio
import gzip
import json
from typing import Any, Mapping, Optional, Sequence, Tuple

from repro.common.errors import ProtocolError
from repro.core.queries import ExplorerQuery
from repro.data.transactions import Transaction
from repro.serve.httpd import read_response
from repro.serve.protocol import JsonDict, encode_batches, encode_request


class ServeClient:
    """One keep-alive connection to a :class:`repro.serve.server.TaraServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self._host = host
        self._port = port
        self._reader = reader
        self._writer = writer
        self._closed = False

    @classmethod
    async def open(cls, host: str, port: int) -> "ServeClient":
        """Connect to ``host:port`` and return a ready client."""
        reader, writer = await asyncio.open_connection(host, port)
        return cls(host, port, reader, writer)

    @property
    def closed(self) -> bool:
        """True once the connection is gone (close() or server hangup)."""
        return self._closed

    async def exchange(
        self,
        method: str,
        target: str,
        payload: Optional[JsonDict] = None,
        *,
        accept_gzip: bool = False,
        if_none_match: Optional[str] = None,
        decompress: bool = True,
    ) -> Tuple[int, Mapping[str, str], bytes]:
        """One full exchange: ``(status, response headers, body bytes)``.

        The body is returned decompressed (``Content-Encoding: gzip``
        responses are gunzipped transparently) but otherwise raw — the
        bench harness byte-verifies served bodies through this.
        ``accept_gzip`` advertises gzip; *if_none_match* sends a
        conditional request (a 304 answer has an empty body);
        ``decompress=False`` returns compressed bodies verbatim so a
        caller can keep gunzip cost out of a timed section.  Chunked
        responses are reassembled by the framing layer.
        """
        if self._closed:
            raise ProtocolError("client connection is closed")
        body = b"" if payload is None else json.dumps(payload).encode("utf-8")
        lines = [
            f"{method} {target} HTTP/1.1",
            f"Host: {self._host}:{self._port}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
        ]
        if accept_gzip:
            lines.append("Accept-Encoding: gzip")
        if if_none_match is not None:
            lines.append(f"If-None-Match: {if_none_match}")
        head = "\r\n".join(lines) + "\r\n\r\n"
        self._writer.write(head.encode("latin-1") + body)
        await self._writer.drain()
        status, headers, raw = await read_response(self._reader)
        if decompress and headers.get("content-encoding", "").lower() == "gzip":
            raw = gzip.decompress(raw)
        if headers.get("connection", "").lower() == "close":
            await self.aclose()
        return status, headers, raw

    async def request(
        self,
        method: str,
        target: str,
        payload: Optional[JsonDict] = None,
    ) -> Tuple[int, Any]:
        """Send one request; returns ``(status, decoded JSON body)``."""
        status, _, raw = await self.exchange(method, target, payload)
        return status, json.loads(raw) if raw else None

    async def query(self, kind: str, payload: JsonDict) -> Tuple[int, Any]:
        """POST one wire-shaped query of endpoint *kind*."""
        return await self.request("POST", f"/v1/query/{kind}", payload)

    async def execute(self, query: ExplorerQuery) -> Tuple[int, Any]:
        """Encode a request dataclass and POST it (client-side protocol)."""
        kind, payload = encode_request(query)
        return await self.query(kind, payload)

    async def admin_append(
        self, batches: Sequence[Sequence[Transaction]]
    ) -> Tuple[int, Any]:
        """POST window batches to the writer path (``/v1/admin/append``).

        A 409 with error code ``"building"`` means another publish is
        in flight; retry after it lands.
        """
        return await self.request(
            "POST", "/v1/admin/append", encode_batches(batches)
        )

    async def snapshot(self) -> Tuple[int, Any]:
        """GET the published-snapshot introspection route."""
        return await self.request("GET", "/v1/snapshot")

    async def healthz(self) -> Tuple[int, Any]:
        """GET the liveness/drain-state route."""
        return await self.request("GET", "/healthz")

    async def metrics(self) -> Tuple[int, Any]:
        """GET the counters/histograms route."""
        return await self.request("GET", "/metrics")

    async def aclose(self) -> None:
        """Close the connection (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass  # the peer already hung up; the socket is gone either way
