"""The JSON wire protocol of the network serving tier.

Every Q1–Q5 request class has one JSON representation that decodes to
the exact frozen request dataclass of :mod:`repro.core.queries`, and
every answer type has one JSON representation built from caller-owned
values.  The contract (documented for clients in docs/serving.md):

* **requests round-trip through canonicalization** — for any query
  ``q``, ``decode_request(kind, encode_request(q))`` equals ``q`` and
  therefore canonicalizes (:func:`repro.service.keys.canonicalize`) to
  the same integer region key; the wire adds no float drift because
  JSON floats round-trip exactly through ``repr``;
* **answers carry exact boundaries twice** — stable-region boundaries
  are exact rationals in the index; the wire reports both the float
  projection (for humans and plotting) and the ``"p/q"`` string (for
  clients that need the exactness guarantee to survive the socket);
* **unknown fields are rejected** — a typo in a request field is a
  ``ProtocolError`` (HTTP 400), never a silently-ignored default.

The error envelope is ``{"ok": false, "error": {"code", "message"}}``;
success is ``{"ok": true, "query_class", "epoch", "snapshot_epoch",
"coalesced", "answer"}``.  The envelope is assembled by the gateway
(:mod:`repro.serve.gateway`); this module only maps values.

**Compatibility rule (PR 8).**  The envelope's ``"epoch"`` field
predates the MVCC snapshot redesign and is frozen for existing
clients; ``"snapshot_epoch"`` carries the identical value under its
honest name — the epoch of the immutable snapshot the request was
pinned to, which is also the window count the answer reflects.  New
fields are only ever *added* to the success envelope (clients must
ignore fields they do not know); request decoding stays strict in the
other direction (unknown request fields remain errors).  The writer
path (``POST /v1/admin/append``) carries window batches in the shape
``{"batches": [[{"items": [...], "time": t}, ...], ...]}`` — one inner
array per basic window, strict like every other request.
"""

from __future__ import annotations

import json
from fractions import Fraction
from functools import lru_cache
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.common.errors import ProtocolError
from repro.core.queries import (
    CompareQuery,
    ComparisonResult,
    ContentQuery,
    ExplorerQuery,
    MatchMode,
    Recommendation,
    RecommendQuery,
    RolledUpRule,
    RollupAnswer,
    RollupQuery,
    RuleTrajectory,
    TrajectoryQuery,
    WindowDiff,
)
from repro.core.regions import ParameterSetting, StableRegion
from repro.data.periods import PeriodSpec
from repro.data.transactions import Transaction
from repro.mining.rules import Rule, RuleId

#: JSON object type used throughout the wire layer.
JsonDict = Dict[str, Any]

#: Endpoint kind -> query class label, in route order.
QUERY_KINDS: Dict[str, str] = {
    "trajectory": "Q1",
    "compare": "Q2",
    "recommend": "Q3",
    "content": "Q5",
    "rollup": "rollup",
}

_MODE_NAMES = {MatchMode.SINGLE: "single", MatchMode.EXACT: "exact"}
_MODES_BY_NAME = {name: mode for mode, name in _MODE_NAMES.items()}


# ----------------------------------------------------------------------
# decoding helpers (wire JSON -> typed values, strict)
# ----------------------------------------------------------------------
def _require_object(payload: object, what: str) -> JsonDict:
    if not isinstance(payload, dict):
        raise ProtocolError(f"{what} must be a JSON object, got {type(payload).__name__}")
    return payload

def _reject_unknown(payload: JsonDict, allowed: Sequence[str], what: str) -> None:
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise ProtocolError(
            f"unknown field(s) {', '.join(map(repr, unknown))} in {what}; "
            f"allowed: {', '.join(allowed)}"
        )

def _number(payload: JsonDict, field: str, what: str) -> float:
    value = payload.get(field)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ProtocolError(f"{what}.{field} must be a number, got {value!r}")
    return float(value)

def _int_field(value: object, what: str) -> int:
    if not isinstance(value, int) or isinstance(value, bool):
        raise ProtocolError(f"{what} must be an integer, got {value!r}")
    return value


def _decode_setting(payload: object, what: str) -> ParameterSetting:
    """Decode ``{"minsupp": f, "minconf": f}`` (paper flag spellings)."""
    obj = _require_object(payload, what)
    _reject_unknown(obj, ("minsupp", "minconf"), what)
    if "minsupp" not in obj or "minconf" not in obj:
        raise ProtocolError(f"{what} needs both 'minsupp' and 'minconf'")
    return ParameterSetting(
        min_support=_number(obj, "minsupp", what),
        min_confidence=_number(obj, "minconf", what),
    )


def _decode_windows(value: object, what: str) -> Optional[PeriodSpec]:
    """Decode an optional window list into a :class:`PeriodSpec`."""
    if value is None:
        return None
    if not isinstance(value, list) or not value:
        raise ProtocolError(f"{what} must be a non-empty array of window indexes")
    return PeriodSpec(_int_field(window, f"{what}[]") for window in value)


# ----------------------------------------------------------------------
# request (de)serialization
# ----------------------------------------------------------------------
def decode_request(kind: str, payload: object) -> ExplorerQuery:
    """Decode one wire request of endpoint *kind* into its dataclass.

    Raises :class:`ProtocolError` on structural problems (the transport
    maps it to HTTP 400); domain errors (setting out of [0, 1], window
    out of range) surface as the usual :class:`ReproError` types when
    the dataclass validates or the query executes.
    """
    body = _require_object(payload, f"{kind} request")
    if kind == "trajectory":
        _reject_unknown(body, ("setting", "anchor_window", "windows"), kind)
        if "setting" not in body or "anchor_window" not in body:
            raise ProtocolError("trajectory request needs 'setting' and 'anchor_window'")
        return TrajectoryQuery(
            setting=_decode_setting(body["setting"], "setting"),
            anchor_window=_int_field(body["anchor_window"], "anchor_window"),
            spec=_decode_windows(body.get("windows"), "windows"),
        )
    if kind == "compare":
        _reject_unknown(body, ("first", "second", "windows", "mode"), kind)
        if "first" not in body or "second" not in body:
            raise ProtocolError("compare request needs 'first' and 'second'")
        mode_name = body.get("mode", "single")
        if mode_name not in _MODES_BY_NAME:
            raise ProtocolError(
                f"compare mode must be 'single' or 'exact', got {mode_name!r}"
            )
        return CompareQuery(
            first=_decode_setting(body["first"], "first"),
            second=_decode_setting(body["second"], "second"),
            spec=_decode_windows(body.get("windows"), "windows"),
            mode=_MODES_BY_NAME[mode_name],
        )
    if kind == "recommend":
        _reject_unknown(body, ("setting", "window"), kind)
        if "setting" not in body:
            raise ProtocolError("recommend request needs 'setting'")
        window = body.get("window")
        return RecommendQuery(
            setting=_decode_setting(body["setting"], "setting"),
            window=None if window is None else _int_field(window, "window"),
        )
    if kind == "content":
        _reject_unknown(body, ("setting", "items", "windows"), kind)
        if "setting" not in body or "items" not in body:
            raise ProtocolError("content request needs 'setting' and 'items'")
        items = body["items"]
        if not isinstance(items, list) or not items:
            raise ProtocolError("content 'items' must be a non-empty array of item ids")
        return ContentQuery(
            setting=_decode_setting(body["setting"], "setting"),
            items=tuple(_int_field(item, "items[]") for item in items),
            spec=_decode_windows(body.get("windows"), "windows"),
        )
    if kind == "rollup":
        _reject_unknown(body, ("setting", "windows"), kind)
        if "setting" not in body or body.get("windows") is None:
            raise ProtocolError("rollup request needs 'setting' and 'windows'")
        spec = _decode_windows(body["windows"], "windows")
        assert spec is not None  # _decode_windows(None) excluded above
        return RollupQuery(
            setting=_decode_setting(body["setting"], "setting"), spec=spec
        )
    raise ProtocolError(
        f"unknown query kind {kind!r}; expected one of {', '.join(QUERY_KINDS)}"
    )


def encode_setting(setting: ParameterSetting) -> JsonDict:
    """Encode a :class:`ParameterSetting` in the wire spelling."""
    return {"minsupp": setting.min_support, "minconf": setting.min_confidence}


def encode_request(query: ExplorerQuery) -> Tuple[str, JsonDict]:
    """Encode *query* as ``(kind, payload)`` — the client-side inverse.

    ``decode_request(kind, payload)`` returns a dataclass equal to
    *query* (and hence the same canonical region key); property-tested
    in ``tests/serve/test_protocol.py``.
    """
    if isinstance(query, TrajectoryQuery):
        return "trajectory", {
            "setting": encode_setting(query.setting),
            "anchor_window": query.anchor_window,
            "windows": None if query.spec is None else list(query.spec.windows),
        }
    if isinstance(query, CompareQuery):
        return "compare", {
            "first": encode_setting(query.first),
            "second": encode_setting(query.second),
            "windows": None if query.spec is None else list(query.spec.windows),
            "mode": _MODE_NAMES[query.mode],
        }
    if isinstance(query, RecommendQuery):
        return "recommend", {
            "setting": encode_setting(query.setting),
            "window": query.window,
        }
    if isinstance(query, ContentQuery):
        return "content", {
            "setting": encode_setting(query.setting),
            "items": list(query.items),
            "windows": None if query.spec is None else list(query.spec.windows),
        }
    if isinstance(query, RollupQuery):
        return "rollup", {
            "setting": encode_setting(query.setting),
            "windows": list(query.spec.windows),
        }
    raise ProtocolError(f"cannot encode a {type(query).__name__!r} request")


# ----------------------------------------------------------------------
# writer path: window batches (POST /v1/admin/append)
# ----------------------------------------------------------------------
def decode_batches(payload: object) -> List[List[Transaction]]:
    """Decode an append request into window batches of transactions.

    Wire shape (strict — unknown fields are :class:`ProtocolError`)::

        {"batches": [[{"items": [2, 7], "time": 3}, ...], ...]}

    Each inner array becomes one basic window, in order.  Structural
    problems raise :class:`ProtocolError`; domain problems (empty
    batch, unsorted timestamps, non-canonical itemsets) surface as the
    usual :class:`~repro.common.errors.ValidationError` /
    ``DataFormatError`` when the publisher validates.
    """
    body = _require_object(payload, "append request")
    _reject_unknown(body, ("batches",), "append request")
    batches = body.get("batches")
    if not isinstance(batches, list) or not batches:
        raise ProtocolError(
            "append request needs a non-empty 'batches' array"
        )
    decoded: List[List[Transaction]] = []
    for batch_index, batch in enumerate(batches):
        what = f"batches[{batch_index}]"
        if not isinstance(batch, list):
            raise ProtocolError(f"{what} must be an array of transactions")
        window: List[Transaction] = []
        for txn_index, txn in enumerate(batch):
            txn_what = f"{what}[{txn_index}]"
            obj = _require_object(txn, txn_what)
            _reject_unknown(obj, ("items", "time"), txn_what)
            if "items" not in obj or "time" not in obj:
                raise ProtocolError(f"{txn_what} needs 'items' and 'time'")
            items = obj["items"]
            if not isinstance(items, list) or not items:
                raise ProtocolError(
                    f"{txn_what}.items must be a non-empty array of item ids"
                )
            window.append(
                Transaction.create(
                    items=[
                        _int_field(item, f"{txn_what}.items[]")
                        for item in items
                    ],
                    time=_int_field(obj["time"], f"{txn_what}.time"),
                )
            )
        decoded.append(window)
    return decoded


def encode_batches(batches: Sequence[Sequence[Transaction]]) -> JsonDict:
    """Encode window batches for the wire — inverse of :func:`decode_batches`."""
    return {
        "batches": [
            [
                {"items": list(txn.items), "time": txn.time}
                for txn in batch
            ]
            for batch in batches
        ]
    }


# ----------------------------------------------------------------------
# answer serialization
# ----------------------------------------------------------------------
def _encode_rule(rule_id: RuleId, rule: Rule) -> JsonDict:
    return {
        "rule_id": rule_id,
        "antecedent": list(rule.antecedent),
        "consequent": list(rule.consequent),
        "rule": rule.format(),
    }


@lru_cache(maxsize=16384)
def _encode_fraction(value: Fraction) -> str:
    """Exact rational as ``"p/q"`` — survives the socket losslessly.

    Interned: exact region boundaries are epoch-stable, so the same
    ``Fraction`` re-serializes from the memo instead of re-formatting.
    """
    return f"{value.numerator}/{value.denominator}"


def _encode_region(region: StableRegion) -> JsonDict:
    payload: JsonDict = {
        "window": region.window,
        "empty": region.is_empty,
        "ruleset_size": region.ruleset_size,
        "support_floor": float(region.support_floor),
        "support_floor_exact": _encode_fraction(region.support_floor),
        "confidence_floor": float(region.confidence_floor),
        "confidence_floor_exact": _encode_fraction(region.confidence_floor),
        "cut": None,
    }
    if region.cut is not None:
        payload["cut"] = {
            "support": region.cut.support_float,
            "support_exact": _encode_fraction(region.cut.support),
            "confidence": region.cut.confidence_float,
            "confidence_exact": _encode_fraction(region.cut.confidence),
        }
    return payload


def _encode_trajectories(trajectories: List[RuleTrajectory]) -> JsonDict:
    rows: List[JsonDict] = []
    for trajectory in trajectories:
        measures: JsonDict = {}
        for window in sorted(trajectory.measures):
            measure = trajectory.measures[window]
            measures[str(window)] = (
                None
                if measure is None
                else {
                    "rule_count": measure.rule_count,
                    "antecedent_count": measure.antecedent_count,
                    "consequent_count": measure.consequent_count,
                    "window_size": measure.window_size,
                    "support": measure.support,
                    "confidence": measure.confidence,
                }
            )
        row = _encode_rule(trajectory.rule_id, trajectory.rule)
        row["measures"] = measures
        rows.append(row)
    return {"trajectories": rows}


def _encode_window_diff(diff: WindowDiff) -> JsonDict:
    return {
        "window": diff.window,
        "only_first": list(diff.only_first),
        "only_second": list(diff.only_second),
        "common": list(diff.common),
    }


def _encode_comparison(result: ComparisonResult) -> JsonDict:
    return {
        "first": encode_setting(result.first),
        "second": encode_setting(result.second),
        "mode": _MODE_NAMES[result.mode],
        "only_first": list(result.only_first),
        "only_second": list(result.only_second),
        "difference_size": result.difference_size,
        "per_window": [_encode_window_diff(diff) for diff in result.per_window],
    }


def _encode_recommendation(recommendation: Recommendation) -> JsonDict:
    return {
        "window": recommendation.window,
        "setting": encode_setting(recommendation.setting),
        "region": _encode_region(recommendation.region),
        "neighbors": {
            direction: _encode_region(region)
            for direction, region in sorted(recommendation.neighbors.items())
        },
    }


def _encode_content(per_window: Mapping[int, List[RuleId]]) -> JsonDict:
    return {
        "per_window": {
            str(window): list(per_window[window]) for window in sorted(per_window)
        }
    }


def _encode_rollup(answer: RollupAnswer) -> JsonDict:
    def rolled(rules: Sequence[RolledUpRule]) -> List[JsonDict]:
        rows = []
        for rolled_rule in rules:
            measure = rolled_rule.measure
            row = _encode_rule(rolled_rule.rule_id, rolled_rule.rule)
            row["measure"] = {
                "rule_count": measure.rule_count,
                "antecedent_count": measure.antecedent_count,
                "total_size": measure.total_size,
                "windows_present": list(measure.windows_present),
                "windows_missing": list(measure.windows_missing),
                "support": measure.support,
                "support_low": measure.support_low,
                "support_high": measure.support_high,
                "confidence": measure.confidence,
                "confidence_low": measure.confidence_low,
                "confidence_high": measure.confidence_high,
            }
            rows.append(row)
        return rows

    return {
        "setting": encode_setting(answer.setting),
        "windows": list(answer.windows),
        "is_exact": answer.is_exact,
        "max_support_error": answer.max_support_error,
        "certain": rolled(answer.certain),
        "possible": rolled(answer.possible),
    }


def encode_answer(query_class: str, answer: object) -> JsonDict:
    """Encode one explorer/service answer for the wire.

    *query_class* is the canonical label (``Q1``/``Q2``/``Q3``/``Q5``/
    ``rollup``) — the same string the metrics layer uses, produced by
    :func:`repro.service.keys.canonicalize`.  The encoding is
    deterministic (sorted windows, sorted neighbor directions), so two
    equal answers always serialize to the same JSON — the property the
    ``bench-serve`` correctness gate compares on.
    """
    if query_class == "Q1":
        assert isinstance(answer, list)
        return _encode_trajectories(answer)
    if query_class == "Q2":
        assert isinstance(answer, ComparisonResult)
        return _encode_comparison(answer)
    if query_class == "Q3":
        assert isinstance(answer, Recommendation)
        return _encode_recommendation(answer)
    if query_class == "Q5":
        assert isinstance(answer, dict)
        return _encode_content(answer)
    if query_class == "rollup":
        assert isinstance(answer, RollupAnswer)
        return _encode_rollup(answer)
    raise ProtocolError(f"cannot encode an answer of class {query_class!r}")


# ----------------------------------------------------------------------
# byte-level answer encoding (the wire-hot path)
# ----------------------------------------------------------------------
#: Compact separators — the canonical wire serialization.  Key order is
#: insertion order (NOT sort_keys: measure windows are emitted in
#: numeric order, which string sorting would scramble at window 10).
_COMPACT: Tuple[str, str] = (",", ":")

#: Target size of one streamed body chunk (rows are packed up to this).
DEFAULT_CHUNK_TARGET = 32 * 1024


def dumps_bytes(value: object) -> bytes:
    """Canonical compact UTF-8 JSON — the serialization every response
    body uses, so cached bytes and freshly-encoded bytes are comparable.
    """
    return json.dumps(value, separators=_COMPACT).encode("utf-8")


@lru_cache(maxsize=65536)
def _rule_prefix_bytes(rule_id: RuleId, rule: Rule) -> bytes:
    """The encoded rule-row head, missing only its closing brace.

    Rules are interned per knowledge base and rule ids are stable across
    epochs, so the (id, rule) pair memoizes perfectly: a 20k-row Q1
    answer re-encodes its per-rule fragments exactly once per process,
    not once per request.
    """
    return dumps_bytes(_encode_rule(rule_id, rule))[:-1]


def _chunked(parts: Iterable[bytes], target: int) -> Iterator[bytes]:
    """Pack tiny row fragments into ~*target*-byte chunks."""
    pending: List[bytes] = []
    size = 0
    for part in parts:
        pending.append(part)
        size += len(part)
        if size >= target:
            yield b"".join(pending)
            pending.clear()
            size = 0
    if pending:
        yield b"".join(pending)


def _iter_trajectory_bytes(
    trajectories: Sequence[RuleTrajectory],
) -> Iterator[bytes]:
    yield b'{"trajectories":['
    comma = b""
    for trajectory in trajectories:
        measures: JsonDict = {}
        for window in sorted(trajectory.measures):
            measure = trajectory.measures[window]
            measures[str(window)] = (
                None
                if measure is None
                else {
                    "rule_count": measure.rule_count,
                    "antecedent_count": measure.antecedent_count,
                    "consequent_count": measure.consequent_count,
                    "window_size": measure.window_size,
                    "support": measure.support,
                    "confidence": measure.confidence,
                }
            )
        yield (
            comma
            + _rule_prefix_bytes(trajectory.rule_id, trajectory.rule)
            + b',"measures":'
            + dumps_bytes(measures)
            + b"}"
        )
        comma = b","
    yield b"]}"


def _iter_content_bytes(
    per_window: Mapping[int, List[RuleId]]
) -> Iterator[bytes]:
    yield b'{"per_window":{'
    comma = b""
    for window in sorted(per_window):
        yield (
            comma
            + dumps_bytes(str(window))
            + b":"
            + dumps_bytes(list(per_window[window]))
        )
        comma = b","
    yield b"}}"


def encode_answer_bytes(
    query_class: str,
    answer: object,
    *,
    chunk_target: int = DEFAULT_CHUNK_TARGET,
) -> Iterator[bytes]:
    """Encode one answer as an iterator of UTF-8 byte chunks.

    The concatenation of the chunks is byte-identical to
    ``dumps_bytes(encode_answer(query_class, answer))`` for every query
    class (property-tested in ``tests/serve/test_protocol_bytes.py``) —
    but the large row-shaped answers (Q1 trajectories, Q5 per-window
    rulesets) are produced incrementally with memoized per-rule
    fragments instead of one giant dict → ``dumps`` pass, so a streamed
    body never materializes the whole answer dict and re-encoding the
    same rules across requests is a cache lookup, not a serialization.
    """
    if query_class == "Q1":
        assert isinstance(answer, (list, tuple))
        return _chunked(_iter_trajectory_bytes(answer), chunk_target)
    if query_class == "Q5":
        assert isinstance(answer, dict)
        return _chunked(_iter_content_bytes(answer), chunk_target)
    return iter((dumps_bytes(encode_answer(query_class, answer)),))


def encode_answer_blob(query_class: str, answer: object) -> bytes:
    """The full canonical encoding as one contiguous byte string."""
    return b"".join(encode_answer_bytes(query_class, answer))


def envelope_prefix(
    query_class: str,
    epoch: int,
    *,
    coalesced: bool,
    cached: bool,
) -> bytes:
    """The success envelope up to (and including) ``"answer":``.

    A response body is ``prefix + answer bytes + ENVELOPE_SUFFIX`` —
    assembling it never re-serializes the answer, which is what lets
    the response cache and the coalescer share encoded bytes.  The
    ``"cached"`` field is additive (clients ignore unknown fields).
    """
    return (
        '{"ok":true,"query_class":%s,"epoch":%d,"snapshot_epoch":%d,'
        '"coalesced":%s,"cached":%s,"answer":'
        % (
            json.dumps(query_class),
            epoch,
            epoch,
            "true" if coalesced else "false",
            "true" if cached else "false",
        )
    ).encode("utf-8")


#: Closing brace of the success envelope.
ENVELOPE_SUFFIX = b"}"
