"""A minimal HTTP/1.1 layer over asyncio streams.

Just enough HTTP for a JSON query service, implemented on
``asyncio.StreamReader``/``StreamWriter`` with the stdlib only:

* request line + headers + ``Content-Length`` bodies (a request
  without a length is treated as bodyless; no trailers, no upgrades);
* ``Transfer-Encoding: chunked`` **response** bodies — the server
  streams large encoded answers chunk by chunk (:func:`render_head`
  with ``chunked=True`` + :func:`chunk_frames` + :data:`LAST_CHUNK`)
  and the client side of :func:`read_response` reassembles them;
* persistent connections per HTTP/1.1 defaults (``Connection: close``
  and HTTP/1.0 close after one exchange);
* hard limits on request-line, header-block, and body sizes, mapped to
  the conventional 4xx statuses.

Framing violations raise :class:`WireError` carrying the HTTP status to
answer with; the connection is closed after an error response because a
mis-framed stream cannot be trusted to resynchronize.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.common.errors import ProtocolError

#: Upper bound on the request line (method + target + version).
MAX_REQUEST_LINE = 8192
#: Upper bound on the header block (sum of header lines).
MAX_HEADER_BYTES = 16384
#: Default upper bound on a request body.
DEFAULT_MAX_BODY = 1_048_576

#: Reason phrases for every status the serving tier emits.
STATUS_PHRASES: Dict[int, str] = {
    200: "OK",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class WireError(ProtocolError):
    """An HTTP framing violation, carrying the status to answer with."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass(frozen=True)
class HttpRequest:
    """One parsed request: immutable, headers lower-cased."""

    method: str
    target: str
    version: str
    headers: Mapping[str, str]
    body: bytes

    @property
    def keep_alive(self) -> bool:
        """Whether the connection persists after this exchange."""
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"


async def read_request(
    reader: asyncio.StreamReader, *, max_body: int = DEFAULT_MAX_BODY
) -> Optional[HttpRequest]:
    """Read one request; ``None`` on a clean EOF before a request line.

    Raises :class:`WireError` on oversized or malformed framing and
    lets transport-level exceptions (``ConnectionError``,
    ``asyncio.IncompleteReadError``) propagate — the connection handler
    treats both as "drop the connection".
    """
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean close between requests
        raise
    except asyncio.LimitOverrunError as error:
        raise WireError(431, "request line exceeds limit") from error
    if len(line) > MAX_REQUEST_LINE:
        raise WireError(431, "request line exceeds limit")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise WireError(400, "malformed request line")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise WireError(400, f"unsupported protocol version {version!r}")

    headers: Dict[str, str] = {}
    header_bytes = 0
    while True:
        try:
            raw = await reader.readuntil(b"\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError) as error:
            raise WireError(400, "connection closed inside header block") from error
        header_bytes += len(raw)
        if header_bytes > MAX_HEADER_BYTES:
            raise WireError(431, "header block exceeds limit")
        text = raw.decode("latin-1").rstrip("\r\n")
        if not text:
            break
        name, separator, value = text.partition(":")
        if not separator or not name.strip():
            raise WireError(400, f"malformed header line {text!r}")
        headers[name.strip().lower()] = value.strip()

    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError as error:
        raise WireError(400, f"bad Content-Length {length_text!r}") from error
    if length < 0:
        raise WireError(400, f"bad Content-Length {length_text!r}")
    if length > max_body:
        raise WireError(413, f"body of {length} bytes exceeds limit {max_body}")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as error:
            raise WireError(400, "connection closed inside body") from error
    return HttpRequest(
        method=method, target=target, version=version, headers=headers, body=body
    )


def render_head(
    status: int,
    *,
    content_length: Optional[int] = None,
    chunked: bool = False,
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra: Sequence[Tuple[str, str]] = (),
) -> bytes:
    """Serialize a response head: status line + framing + *extra* headers.

    Exactly one of *content_length* / *chunked* frames the body; passing
    neither renders a bodyless head (304 conditional answers).
    """
    phrase = STATUS_PHRASES.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {phrase}"]
    if content_length is not None or chunked:
        lines.append(f"Content-Type: {content_type}")
    for name, value in extra:
        lines.append(f"{name}: {value}")
    if chunked:
        lines.append("Transfer-Encoding: chunked")
    else:
        lines.append(f"Content-Length: {content_length or 0}")
    lines.append(f"Connection: {'keep-alive' if keep_alive else 'close'}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def render_response(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    keep_alive: bool = True,
) -> bytes:
    """Serialize one complete fixed-length response."""
    head = render_head(
        status,
        content_length=len(body),
        content_type=content_type,
        keep_alive=keep_alive,
    )
    return head + body


def chunk_frames(data: bytes) -> Tuple[bytes, bytes, bytes]:
    """One body chunk as ``(size line, payload, trailing CRLF)``.

    Returned as three pieces so the transport can write the (possibly
    large) payload without copying it into a framed buffer.
    """
    return (b"%X\r\n" % len(data), data, b"\r\n")


#: Terminating zero-length chunk of a chunked body (no trailers).
LAST_CHUNK = b"0\r\n\r\n"


async def _read_chunked_body(reader: asyncio.StreamReader) -> bytes:
    """Client-side reassembly of a ``Transfer-Encoding: chunked`` body."""
    parts = []
    while True:
        line = await reader.readuntil(b"\n")
        size_text = line.decode("latin-1").strip().split(";", 1)[0]
        try:
            size = int(size_text, 16)
        except ValueError as error:
            raise WireError(400, f"bad chunk size {size_text!r}") from error
        if size == 0:
            await reader.readuntil(b"\n")  # trailing CRLF after last chunk
            return b"".join(parts)
        parts.append(await reader.readexactly(size))
        await reader.readexactly(2)  # CRLF closing this chunk


async def read_response(
    reader: asyncio.StreamReader,
) -> Tuple[int, Mapping[str, str], bytes]:
    """Client-side: read one response as ``(status, headers, body)``.

    Handles both framings the server emits — ``Content-Length`` and
    ``Transfer-Encoding: chunked`` (reassembled into one byte string) —
    plus bodyless 304 conditional answers.
    """
    line = await reader.readuntil(b"\n")
    parts = line.decode("latin-1").strip().split(None, 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise WireError(400, f"malformed status line {line!r}")
    try:
        status = int(parts[1])
    except ValueError as error:
        raise WireError(400, f"malformed status code {parts[1]!r}") from error
    headers: Dict[str, str] = {}
    while True:
        raw = await reader.readuntil(b"\n")
        text = raw.decode("latin-1").rstrip("\r\n")
        if not text:
            break
        name, _, value = text.partition(":")
        headers[name.strip().lower()] = value.strip()
    if headers.get("transfer-encoding", "").lower() == "chunked":
        return status, headers, await _read_chunked_body(reader)
    length = int(headers.get("content-length", "0"))
    body = await reader.readexactly(length) if length else b""
    return status, headers, body
