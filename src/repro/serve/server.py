"""The asyncio HTTP front door of the serving tier.

:class:`TaraServer` binds ``asyncio.start_server`` to a
:class:`repro.serve.gateway.QueryGateway`: connections are parsed by
the minimal HTTP layer (:mod:`repro.serve.httpd`), dispatched through
the gateway, and answered with JSON envelopes over persistent
connections.  Shutdown is graceful by default — :meth:`TaraServer.stop`
stops accepting connections, flips the gateway into draining (new
query requests answer 503 while in-flight ones finish), waits up to
``drain_timeout`` seconds for the in-flight gauge to reach zero, and
only then force-closes what remains.

:func:`run_server` is the blocking entry point behind ``repro serve``:
it installs SIGINT/SIGTERM handlers that trigger the same graceful
stop, so Ctrl-C drains instead of dropping in-flight answers.
"""

from __future__ import annotations

import asyncio
import json
import signal
from dataclasses import dataclass
from typing import Callable, Optional, Set, Tuple

from repro.common.errors import ValidationError
from repro.common.timing import Ticker
from repro.serve.gateway import (
    DEFAULT_POOL_SIZE,
    QueryGateway,
    WireResponse,
    error_payload,
)
from repro.serve.httpd import (
    DEFAULT_MAX_BODY,
    LAST_CHUNK,
    WireError,
    chunk_frames,
    read_request,
    render_head,
    render_response,
)
from repro.serve.respcache import DEFAULT_RESPONSE_CACHE_BYTES
from repro.service.service import ServiceSource, TaraService

#: Default TCP port (unassigned range, stable across docs and tests).
DEFAULT_PORT = 8765

#: Default region-keyed cache capacity of the served service.
DEFAULT_MAX_ENTRIES = 1024

#: Default graceful-shutdown drain window, in seconds.
DEFAULT_DRAIN_TIMEOUT = 5.0

#: Seconds between in-flight gauge polls while draining.
_DRAIN_POLL = 0.01


@dataclass(frozen=True)
class ServeConfig:
    """Tuning knobs of one server instance (see docs/serving.md).

    ``port=0`` binds an ephemeral port — the bench harness and the test
    suite use that to run servers concurrently without collisions.
    """

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    pool_size: int = DEFAULT_POOL_SIZE
    backlog: int = 100
    max_entries: int = DEFAULT_MAX_ENTRIES
    drain_timeout: float = DEFAULT_DRAIN_TIMEOUT
    max_body: int = DEFAULT_MAX_BODY
    response_cache_bytes: int = DEFAULT_RESPONSE_CACHE_BYTES

    def __post_init__(self) -> None:
        if self.pool_size < 1:
            raise ValidationError(
                f"pool_size must be >= 1, got {self.pool_size}"
            )
        if self.drain_timeout < 0.0:
            raise ValidationError(
                f"drain_timeout must be >= 0, got {self.drain_timeout}"
            )
        if self.response_cache_bytes < 1:
            raise ValidationError(
                f"response_cache_bytes must be >= 1, "
                f"got {self.response_cache_bytes}"
            )


class TaraServer:
    """One listening socket in front of one :class:`QueryGateway`."""

    def __init__(self, service: TaraService, config: ServeConfig) -> None:
        self._config = config
        self._gateway = QueryGateway(
            service,
            pool_size=config.pool_size,
            response_cache_bytes=config.response_cache_bytes,
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: Set[asyncio.StreamWriter] = set()
        self._handlers: Set["asyncio.Task[None]"] = set()
        self._stopping = False

    @property
    def gateway(self) -> QueryGateway:
        """The dispatch core (metrics, coalescer, drain state)."""
        return self._gateway

    @property
    def config(self) -> ServeConfig:
        """The configuration the server was built with."""
        return self._config

    @property
    def address(self) -> Tuple[str, int]:
        """The actually-bound ``(host, port)`` (resolves ``port=0``)."""
        if self._server is None or not self._server.sockets:
            raise ValidationError("server is not listening; call start() first")
        host, port = self._server.sockets[0].getsockname()[:2]
        return str(host), int(port)

    async def start(self) -> None:
        """Bind and start accepting connections."""
        if self._server is not None:
            raise ValidationError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self._config.host,
            port=self._config.port,
            backlog=self._config.backlog,
        )

    async def stop(self) -> None:
        """Graceful drain: refuse new work, let in-flight work finish."""
        self._stopping = True
        self._gateway.begin_drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        ticker = Ticker()
        while (
            self._gateway.in_flight
            and ticker.seconds < self._config.drain_timeout
        ):
            await asyncio.sleep(_DRAIN_POLL)
        for writer in list(self._writers):
            writer.close()
        if self._handlers:
            # Closed transports surface as EOF/ConnectionError inside the
            # handlers, which then exit cleanly; awaiting them here keeps
            # loop teardown from cancelling tasks mid-read.
            await asyncio.gather(
                *list(self._handlers), return_exceptions=True
            )
        self._gateway.aclose()

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        response: WireResponse,
        keep_alive: bool,
    ) -> None:
        """Write one response, chunked or fixed-length.

        Streamed bodies (large encoded answers) go out as chunked
        transfer with a drain per chunk, so a slow client bounds the
        write buffer instead of ballooning it; everything else is a
        fixed-length body whose chunks are written without joining
        (cached blobs are served zero-copy).
        """
        if response.stream and response.chunks:
            writer.write(
                render_head(
                    response.status,
                    chunked=True,
                    keep_alive=keep_alive,
                    extra=response.headers,
                )
            )
            for chunk in response.chunks:
                if not chunk:
                    continue  # an empty chunk would terminate the body
                for frame in chunk_frames(chunk):
                    writer.write(frame)
                await writer.drain()
            writer.write(LAST_CHUNK)
            await writer.drain()
            return
        writer.write(
            render_head(
                response.status,
                content_length=response.content_length,
                keep_alive=keep_alive,
                extra=response.headers,
            )
        )
        for chunk in response.chunks:
            writer.write(chunk)
        await writer.drain()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body=self._config.max_body
                    )
                except WireError as error:
                    # A mis-framed stream cannot resynchronize: answer
                    # once with the framing status, then hang up.
                    body = json.dumps(
                        error_payload("protocol", str(error))
                    ).encode("utf-8")
                    writer.write(
                        render_response(error.status, body, keep_alive=False)
                    )
                    await writer.drain()
                    return
                if request is None:
                    return  # clean close between requests
                response = await self._gateway.dispatch_wire(
                    request.method,
                    request.target,
                    request.body,
                    request.headers,
                )
                keep_alive = request.keep_alive and not self._stopping
                await self._write_response(writer, response, keep_alive)
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            return  # client went away mid-exchange; nothing to answer
        finally:
            if task is not None:
                self._handlers.discard(task)
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass  # the peer reset while we were closing; already done


def create_server(source: ServiceSource, config: ServeConfig) -> TaraServer:
    """Build a server over a fresh :class:`TaraService` for *source*."""
    service = TaraService(source, max_entries=config.max_entries)
    return TaraServer(service, config)


async def serve_until_stopped(
    server: TaraServer,
    *,
    on_ready: Optional[Callable[[str, int], None]] = None,
) -> None:
    """Start *server* and run until SIGINT/SIGTERM, then drain.

    *on_ready* is called with the bound ``(host, port)`` once the socket
    is listening — the CLI uses it to print the address.
    """
    await server.start()
    if on_ready is not None:
        host, port = server.address
        on_ready(host, port)
    stop_event = asyncio.Event()
    loop = asyncio.get_running_loop()
    installed = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop_event.set)
        except NotImplementedError:
            continue  # platform without loop signal handlers
        installed.append(signum)
    try:
        await stop_event.wait()
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)
        await server.stop()


def run_server(
    source: ServiceSource,
    config: ServeConfig,
    *,
    on_ready: Optional[Callable[[str, int], None]] = None,
) -> None:
    """Blocking entry point behind ``repro serve``."""
    server = create_server(source, config)
    asyncio.run(serve_until_stopped(server, on_ready=on_ready))
