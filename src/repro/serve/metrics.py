"""Network-tier observability for the ``/metrics`` route.

:class:`ServerMetrics` accumulates, per endpoint, request counts split
by status family and a latency histogram (reusing
:class:`repro.service.metrics.LatencyHistogram` so the two tiers bucket
identically), plus a concurrency gauge (current and peak in-flight
requests) and an uptime-based requests-per-second figure.  Coalescer
counters are merged into the snapshot by the gateway.

Everything here is event-loop-confined: the gateway is the only writer
and it runs on the server's asyncio loop, so no locks are needed — the
same single-writer discipline :mod:`repro.serve.coalesce` relies on.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.timing import Ticker
from repro.service.metrics import LatencyHistogram


class ServerMetrics:
    """Per-endpoint counters for one :class:`repro.serve.server.TaraServer`."""

    def __init__(self) -> None:
        self._uptime = Ticker()
        self.requests: Dict[str, int] = {}
        self.statuses: Dict[str, Dict[str, int]] = {}
        self.latency: Dict[str, LatencyHistogram] = {}
        self.in_flight = 0
        self.peak_in_flight = 0
        self._order: List[str] = []

    def _register(self, endpoint: str) -> None:
        if endpoint not in self.requests:
            self.requests[endpoint] = 0
            self.statuses[endpoint] = {}
            self.latency[endpoint] = LatencyHistogram()
            self._order.append(endpoint)

    def enter(self) -> None:
        """A request started executing (in-flight gauge up)."""
        self.in_flight += 1
        self.peak_in_flight = max(self.peak_in_flight, self.in_flight)

    def exit(self) -> None:
        """A request finished (in-flight gauge down)."""
        self.in_flight -= 1

    def observe(self, endpoint: str, status: int, seconds: float) -> None:
        """Record one completed request against *endpoint*."""
        self._register(endpoint)
        self.requests[endpoint] += 1
        family = f"{status // 100}xx"
        families = self.statuses[endpoint]
        families[family] = families.get(family, 0) + 1
        self.latency[endpoint].record(seconds)

    @property
    def total_requests(self) -> int:
        """Requests observed across every endpoint."""
        return sum(self.requests.values())

    @property
    def uptime_seconds(self) -> float:
        """Seconds since the metrics (and server) came up."""
        return self._uptime.seconds

    @property
    def requests_per_second(self) -> float:
        """Lifetime average RPS across all endpoints."""
        uptime = self.uptime_seconds
        return self.total_requests / uptime if uptime > 0.0 else 0.0

    def as_dict(
        self,
        coalesce: Dict[str, int],
        *,
        respcache: Optional[Dict[str, int]] = None,
    ) -> Dict[str, object]:
        """JSON snapshot for the ``/metrics`` route.

        *coalesce* is the coalescer's counter snapshot
        (:meth:`repro.serve.coalesce.RequestCoalescer.counters`);
        *respcache* the encoded-response cache's
        (:meth:`repro.serve.respcache.ResponseCache.counters`) —
        hit/miss/eviction/bytes-served accounting of the wire-hot path.
        """
        endpoints: Dict[str, object] = {}
        for endpoint in self._order:
            endpoints[endpoint] = {
                "requests": self.requests[endpoint],
                "statuses": dict(sorted(self.statuses[endpoint].items())),
                "latency": self.latency[endpoint].as_dict(),
            }
        snapshot: Dict[str, object] = {
            "uptime_seconds": self.uptime_seconds,
            "requests": self.total_requests,
            "requests_per_second": self.requests_per_second,
            "in_flight": self.in_flight,
            "peak_in_flight": self.peak_in_flight,
            "coalesce": dict(coalesce),
            "endpoints": endpoints,
        }
        if respcache is not None:
            snapshot["respcache"] = dict(respcache)
        return snapshot

    def report(self, title: str = "server metrics") -> str:
        """Human-readable table, styled after the other ``report()`` methods."""
        lines = [title]
        width = max((len(name) for name in self._order), default=0)
        for name in self._order:
            mean_ms = self.latency[name].mean_seconds * 1e3
            families = " ".join(
                f"{family}={count}"
                for family, count in sorted(self.statuses[name].items())
            )
            lines.append(
                f"  {name.ljust(width)}  {self.requests[name]:6d} req"
                f"  mean {mean_ms:9.3f} ms  {families}"
            )
        lines.append(
            f"  uptime {self.uptime_seconds:.1f} s"
            f"  rps {self.requests_per_second:.1f}"
            f"  peak in-flight {self.peak_in_flight}"
        )
        return "\n".join(lines)
