"""The encoded-response byte cache of the wire-hot serving path.

PR 7 measured the serving tier spending >99% of a warm Q1 request
re-running ``encode_answer`` + ``json.dumps`` over ~20k trajectory rows
the service cache had already answered in microseconds.  PR 8's MVCC
snapshots make the fix sound: an answer is immutable per ``(canonical
region key, snapshot epoch)``, therefore its encoded bytes are too —
encode once, serve bytes until the snapshot retires.

:class:`ResponseCache` stores encoded **answer blobs** (the bytes after
``"answer":`` in the success envelope) plus fully-assembled **gzip
variants**, keyed by ``(region key, echo tag, encoding)``:

* the *region key* is the canonical integer key of
  :mod:`repro.service.keys` — scoped keys embed the snapshot epoch, so
  a publish can never serve stale bytes under a reused key;
* the *echo tag* (:func:`repro.service.keys.echo_tag`) carries the raw
  caller floats Q2/Q3 answers echo back — region-equivalent requests
  with different raw settings get distinct byte entries even though
  they share one value-cache entry;
* the *encoding* is ``"identity"`` (the bare answer blob, spliced
  between a per-request envelope prefix and the closing brace) or
  ``"gzip"`` (one complete pre-compressed response body).

Retirement follows PR 8's snapshot discipline, observed at the cache:
every query request pins the current snapshot before touching the
cache, and scoped keys embed their epoch, so when :meth:`observe_epoch`
is handed a pinned epoch, every generation-scoped bucket that is not
that epoch belongs to a retired snapshot, is unreachable forever, and
is purged eagerly — identity, never ordering (rule R008).  Epoch-free
entries — explicit immutable windows — survive publishes, exactly like
the shared value cache.  Byte accounting follows PR 9's storage LRU:
one byte budget, least-recently-served eviction, oversize rejection,
and peak tracking.

The cache is event-loop-confined (the gateway is its only caller), so
like :mod:`repro.serve.coalesce` and :mod:`repro.serve.metrics` it
needs no lock.  Stored bodies are ``bytes`` — immutable by
construction, which rule R007 now checks at the ``put`` sinks.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.common.errors import ValidationError
from repro.service.keys import CacheKey, EPOCH_FREE

#: Wire encodings a response body can be cached under.
IDENTITY = "identity"
GZIP = "gzip"

#: Default byte budget for cached encoded responses.
DEFAULT_RESPONSE_CACHE_BYTES = 64 * 1024 * 1024

#: Bookkeeping charge per entry (key tuple, OrderedDict node, counters),
#: mirroring the storage LRU's practice of charging structure overhead.
ENTRY_OVERHEAD = 120

#: ``(region key, echo tag)`` — the identity of one cacheable response.
ResponseKey = Tuple[CacheKey, Tuple[float, ...]]

#: Internal storage key: the response key plus the wire encoding.
_EntryKey = Tuple[CacheKey, Tuple[float, ...], str]


@dataclass(frozen=True)
class CachedBody:
    """One cache hit: which encoding was found and its stored bytes.

    ``identity`` bodies are answer blobs (the caller supplies the
    envelope); ``gzip`` bodies are complete pre-compressed responses.
    """

    encoding: str
    body: bytes


class ResponseCache:
    """A byte-budgeted LRU of encoded response bodies."""

    def __init__(
        self, budget_bytes: int = DEFAULT_RESPONSE_CACHE_BYTES
    ) -> None:
        if budget_bytes < 1:
            raise ValidationError(
                f"budget_bytes must be >= 1, got {budget_bytes}"
            )
        self.budget_bytes = budget_bytes
        self._entries: "OrderedDict[_EntryKey, Tuple[bytes, int, int]]" = (
            OrderedDict()
        )
        self._by_epoch: Dict[int, Set[_EntryKey]] = {}
        self.current_bytes = 0
        self.peak_bytes = 0
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.rejected = 0
        self.purged_entries = 0
        self.purged_epochs = 0
        self.gzip_variants = 0
        self.bytes_served = 0
        self.not_modified = 0

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def lookup(
        self, key: ResponseKey, *, accept_gzip: bool
    ) -> Optional[CachedBody]:
        """One request-level probe: best available encoding, or ``None``.

        Prefers the pre-compressed variant for gzip-accepting clients
        and falls back to the identity blob (the gateway compresses and
        stores the variant on that first gzip-accepting hit).  Counts
        exactly one hit or one miss per call, so the published hit rate
        is per *request*, not per internal probe.
        """
        if accept_gzip:
            found = self._touch(key + (GZIP,))
            if found is not None:
                self.hits += 1
                return CachedBody(GZIP, found)
        found = self._touch(key + (IDENTITY,))
        if found is not None:
            self.hits += 1
            return CachedBody(IDENTITY, found)
        self.misses += 1
        return None

    def _touch(self, entry_key: _EntryKey) -> Optional[bytes]:
        entry = self._entries.get(entry_key)
        if entry is None:
            return None
        self._entries.move_to_end(entry_key)
        return entry[0]

    def record_served(self, count: int) -> None:
        """Account *count* body bytes served straight from the cache."""
        self.bytes_served += count

    def record_not_modified(self) -> None:
        """Account one conditional request answered with 304."""
        self.not_modified += 1

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def put(self, key: ResponseKey, value: bytes, epoch: int) -> None:
        """Store the identity answer blob for *key*.

        *epoch* is :data:`~repro.service.keys.EPOCH_FREE` for entries
        that survive publishes, else the snapshot epoch the key is
        scoped to (purged when :meth:`observe_epoch` sees it retire).
        """
        self._store(key + (IDENTITY,), value, epoch)

    def put_gzip(self, key: ResponseKey, value: bytes, epoch: int) -> None:
        """Store the pre-compressed complete response body for *key*."""
        before = len(self._entries)
        self._store(key + (GZIP,), value, epoch)
        if len(self._entries) > before:
            self.gzip_variants += 1

    def _store(self, entry_key: _EntryKey, body: bytes, epoch: int) -> None:
        cost = len(body) + ENTRY_OVERHEAD
        if cost > self.budget_bytes:
            self.rejected += 1
            return
        self._discard(entry_key)
        while self._entries and self.current_bytes + cost > self.budget_bytes:
            self._evict_oldest()
        self._entries[entry_key] = (body, cost, epoch)
        self.current_bytes += cost
        self.peak_bytes = max(self.peak_bytes, self.current_bytes)
        self.stores += 1
        if epoch != EPOCH_FREE:
            self._by_epoch.setdefault(epoch, set()).add(entry_key)

    def _evict_oldest(self) -> None:
        entry_key, (_, cost, epoch) = self._entries.popitem(last=False)
        self.current_bytes -= cost
        self.evictions += 1
        self._unindex(entry_key, epoch)

    def _discard(self, entry_key: _EntryKey) -> None:
        entry = self._entries.pop(entry_key, None)
        if entry is not None:
            self.current_bytes -= entry[1]
            self._unindex(entry_key, entry[2])

    def _unindex(self, entry_key: _EntryKey, epoch: int) -> None:
        if epoch == EPOCH_FREE:
            return
        keys = self._by_epoch.get(epoch)
        if keys is not None:
            keys.discard(entry_key)
            if not keys:
                del self._by_epoch[epoch]

    # ------------------------------------------------------------------
    # snapshot retirement
    # ------------------------------------------------------------------
    def observe_epoch(self, epoch: int) -> None:
        """Purge scoped entries of every epoch except the pinned *epoch*.

        Epoch validity is identity, never age (rule R008): an entry's
        bucket either *is* the epoch some pinned snapshot just named,
        or its snapshot retired and the bytes are dead.  Scoped keys
        embed their epoch, so a lookup pinned to *epoch* can only ever
        name entries in its own bucket — every other bucket is
        unreachable and is dropped eagerly, the response-cache analogue
        of PR 8's retire-with-snapshot segment drop.  No ordering is
        assumed, so the purge stays correct under any epoch scheme.

        During the drain window right after a publish, requests pinned
        to the outgoing snapshot interleave with ones pinned to the new
        epoch, and each side purges the other's young scoped entries.
        That costs at most a re-encode per flip — never staleness, the
        keys embed their epoch — and the window closes when the old
        pins release.
        """
        live = self._by_epoch.pop(epoch, None)
        if self._by_epoch:
            for stale_keys in list(self._by_epoch.values()):
                for entry_key in list(stale_keys):
                    self._discard(entry_key)
                    self.purged_entries += 1
                self.purged_epochs += 1
            self._by_epoch.clear()
        if live is not None:
            self._by_epoch[epoch] = live

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, int]:
        """Snapshot for the ``/metrics`` route and the bench harness."""
        return {
            "entries": len(self._entries),
            "budget_bytes": self.budget_bytes,
            "current_bytes": self.current_bytes,
            "peak_bytes": self.peak_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "rejected": self.rejected,
            "purged_entries": self.purged_entries,
            "purged_epochs": self.purged_epochs,
            "gzip_variants": self.gzip_variants,
            "bytes_served": self.bytes_served,
            "not_modified": self.not_modified,
        }
