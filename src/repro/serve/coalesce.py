"""Request coalescing — concurrent identical queries execute once.

The serving tier's cache (:mod:`repro.service.cache`) deduplicates
*sequential* identical work; under concurrency a burst of region-
equivalent requests can still all miss before the first one finishes
computing.  :class:`RequestCoalescer` closes that gap: requests are
keyed by the same canonical integer region key the cache uses
(:mod:`repro.service.keys`), and while one execution for a key is in
flight every further arrival awaits its result instead of executing.

Snapshot safety rides on the key itself: generation-scoped queries
embed the epoch of the pinned snapshot in their canonical key, and
epochs are strictly increasing window counts, so a request pinned to a
*newer* snapshot canonicalizes to a different key than any older
in-flight execution and can never attach to its answer — attaching is
only possible between requests pinned to the *same* immutable snapshot.
Epoch-free keys (explicit windows) are publish-immune by the archive's
immutability.  No defensive re-check exists downstream anymore: the
pre-PR-8 gateway re-executed scoped requests when the epoch moved
mid-await, but a pinned snapshot cannot move.

Since PR 10 the shared payload is the *encoded* answer — the supplier
executes the query and serializes it through
:func:`repro.serve.protocol.encode_answer_bytes` in one thread-pool
hop, so followers receive the leader's byte chunks and never re-encode
(each follower only prepends its own envelope prefix, whose
``coalesced`` flag differs).  The coalescer itself is payload-agnostic:
it shares whatever immutable object the supplier returns.

The coalescer is event-loop-confined: all state is touched only from
the owning asyncio loop, so it needs no lock.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Dict, Tuple

from repro.service.keys import CacheKey

#: The (ok, payload) outcome shared between coalesced waiters — carrying
#: failures as values keeps un-awaited futures from warning on teardown.
_Outcome = Tuple[bool, object]


class RequestCoalescer:
    """An in-flight futures map over canonical region keys.

    ``executions`` counts leaders (requests that actually ran their
    supplier); ``hits`` counts followers that were served a leader's
    result.  A failing supplier propagates its exception to the leader
    and re-raises the same exception instance in every follower —
    deliberate, so a burst of identical bad requests costs one
    execution, exactly like a burst of identical good ones.
    """

    def __init__(self) -> None:
        self._inflight: Dict[CacheKey, "asyncio.Future[_Outcome]"] = {}
        self.executions = 0
        self.hits = 0

    @property
    def in_flight(self) -> int:
        """Number of keys with an execution currently in flight."""
        return len(self._inflight)

    def counters(self) -> Dict[str, int]:
        """Snapshot for the metrics route."""
        return {
            "executions": self.executions,
            "hits": self.hits,
            "in_flight": self.in_flight,
        }

    async def run(
        self,
        key: CacheKey,
        supplier: Callable[[], Awaitable[object]],
    ) -> Tuple[object, bool]:
        """Execute *supplier* for *key*, or await the in-flight one.

        Returns ``(answer, coalesced)`` where ``coalesced`` is True when
        this call was served by another request's execution.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            self.hits += 1
            ok, payload = await existing
            if ok:
                return payload, True
            assert isinstance(payload, BaseException)
            raise payload
        future: "asyncio.Future[_Outcome]" = (
            asyncio.get_running_loop().create_future()
        )
        self._inflight[key] = future
        self.executions += 1
        try:
            result = await supplier()
        except BaseException as error:
            future.set_result((False, error))
            raise
        else:
            future.set_result((True, result))
            return result, False
        finally:
            # Removed only after the outcome is set: a request landing in
            # the tiny window between set_result and this delete finds a
            # completed future and resumes immediately, which is correct.
            del self._inflight[key]
