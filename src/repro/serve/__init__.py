"""The asyncio network tier: TARA's queries over a socket.

Where :mod:`repro.service` makes query answers cheap to *reuse* (the
region-keyed cache), this layer makes them cheap to *share*: a
stdlib-only asyncio HTTP front door (:class:`TaraServer`) exposes
Q1–Q5 as JSON endpoints over one thread-safe
:class:`repro.service.TaraService`, with request coalescing
(:class:`RequestCoalescer`) collapsing concurrent region-equivalent
requests into a single execution and per-endpoint metrics
(:class:`ServerMetrics`) on a ``/metrics`` route.  An ASGI adapter
(:func:`create_asgi_app`) exposes the identical wire behaviour to
external ASGI servers.

The wire-hot path (PR 10) never re-encodes a warm answer: bodies are
serialized once through :func:`encode_answer_bytes` and cached as
bytes in a :class:`ResponseCache` keyed by ``(region key, echo tag,
encoding)``, with gzip variants, weak ETags → 304 conditional
answers, and chunked streaming for large bodies.

See ``docs/serving.md`` for the wire-protocol reference and the
operations handbook, and ``docs/benchmarks.md`` for the matching
``repro bench-serve`` harness.
"""

from repro.serve.asgi import AsgiApp, create_asgi_app
from repro.serve.client import ServeClient
from repro.serve.coalesce import RequestCoalescer
from repro.serve.gateway import (
    DEFAULT_POOL_SIZE,
    QueryGateway,
    WireResponse,
    auto_pool_size,
    resolve_pool_size,
)
from repro.serve.httpd import HttpRequest, WireError
from repro.serve.metrics import ServerMetrics
from repro.serve.protocol import (
    QUERY_KINDS,
    decode_batches,
    decode_request,
    encode_answer,
    encode_answer_blob,
    encode_answer_bytes,
    encode_batches,
    encode_request,
)
from repro.serve.respcache import (
    DEFAULT_RESPONSE_CACHE_BYTES,
    ResponseCache,
)
from repro.serve.server import (
    DEFAULT_DRAIN_TIMEOUT,
    DEFAULT_MAX_ENTRIES,
    DEFAULT_PORT,
    ServeConfig,
    TaraServer,
    create_server,
    run_server,
    serve_until_stopped,
)

__all__ = [
    "AsgiApp",
    "DEFAULT_DRAIN_TIMEOUT",
    "DEFAULT_MAX_ENTRIES",
    "DEFAULT_POOL_SIZE",
    "DEFAULT_PORT",
    "DEFAULT_RESPONSE_CACHE_BYTES",
    "HttpRequest",
    "QUERY_KINDS",
    "QueryGateway",
    "RequestCoalescer",
    "ResponseCache",
    "ServeClient",
    "ServeConfig",
    "ServerMetrics",
    "TaraServer",
    "WireError",
    "WireResponse",
    "auto_pool_size",
    "create_asgi_app",
    "create_server",
    "decode_batches",
    "decode_request",
    "encode_answer",
    "encode_answer_blob",
    "encode_answer_bytes",
    "encode_batches",
    "encode_request",
    "resolve_pool_size",
    "run_server",
    "serve_until_stopped",
]
