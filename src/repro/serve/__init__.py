"""The asyncio network tier: TARA's queries over a socket.

Where :mod:`repro.service` makes query answers cheap to *reuse* (the
region-keyed cache), this layer makes them cheap to *share*: a
stdlib-only asyncio HTTP front door (:class:`TaraServer`) exposes
Q1–Q5 as JSON endpoints over one thread-safe
:class:`repro.service.TaraService`, with request coalescing
(:class:`RequestCoalescer`) collapsing concurrent region-equivalent
requests into a single execution and per-endpoint metrics
(:class:`ServerMetrics`) on a ``/metrics`` route.  An ASGI adapter
(:func:`create_asgi_app`) exposes the identical wire behaviour to
external ASGI servers.

See ``docs/serving.md`` for the wire-protocol reference and the
operations handbook, and ``docs/benchmarks.md`` for the matching
``repro bench-serve`` harness.
"""

from repro.serve.asgi import AsgiApp, create_asgi_app
from repro.serve.client import ServeClient
from repro.serve.coalesce import RequestCoalescer
from repro.serve.gateway import DEFAULT_POOL_SIZE, QueryGateway
from repro.serve.httpd import HttpRequest, WireError
from repro.serve.metrics import ServerMetrics
from repro.serve.protocol import (
    QUERY_KINDS,
    decode_batches,
    decode_request,
    encode_answer,
    encode_batches,
    encode_request,
)
from repro.serve.server import (
    DEFAULT_DRAIN_TIMEOUT,
    DEFAULT_MAX_ENTRIES,
    DEFAULT_PORT,
    ServeConfig,
    TaraServer,
    create_server,
    run_server,
    serve_until_stopped,
)

__all__ = [
    "AsgiApp",
    "DEFAULT_DRAIN_TIMEOUT",
    "DEFAULT_MAX_ENTRIES",
    "DEFAULT_POOL_SIZE",
    "DEFAULT_PORT",
    "HttpRequest",
    "QUERY_KINDS",
    "QueryGateway",
    "RequestCoalescer",
    "ServeClient",
    "ServeConfig",
    "ServerMetrics",
    "TaraServer",
    "WireError",
    "create_asgi_app",
    "create_server",
    "decode_batches",
    "decode_request",
    "encode_answer",
    "encode_batches",
    "encode_request",
    "run_server",
    "serve_until_stopped",
]
