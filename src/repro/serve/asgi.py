"""A stdlib-pure ASGI adapter over the query gateway.

For deployments that already run an ASGI server (uvicorn, hypercorn —
installable via the ``repro[asgi]`` extra; nothing here imports them),
:func:`create_asgi_app` exposes exactly the same routes, envelopes, and
coalescing semantics as the asyncio front door: both transports
delegate to one :class:`repro.serve.gateway.QueryGateway`, so wire
behaviour cannot diverge.

The adapter speaks the ASGI 3 single-callable protocol and handles the
``lifespan`` and ``http`` scopes; anything else (websockets) is
answered with a 404 envelope.  It depends on nothing outside the
standard library, so importing :mod:`repro.serve` never requires the
extra to be installed.
"""

from __future__ import annotations

from typing import Any, Awaitable, Callable, Mapping, MutableMapping, Optional

from repro.serve.gateway import DEFAULT_POOL_SIZE, QueryGateway
from repro.serve.metrics import ServerMetrics
from repro.service.service import TaraService

#: ASGI 3 message/callable shapes (stdlib spellings; no asgiref import).
Scope = Mapping[str, Any]
Message = MutableMapping[str, Any]
Receive = Callable[[], Awaitable[Message]]
Send = Callable[[Mapping[str, Any]], Awaitable[None]]


class AsgiApp:
    """The ASGI 3 application object; also exposes its gateway."""

    def __init__(
        self,
        service: TaraService,
        *,
        pool_size: int = DEFAULT_POOL_SIZE,
        metrics: Optional[ServerMetrics] = None,
    ) -> None:
        self.gateway = QueryGateway(
            service, pool_size=pool_size, metrics=metrics
        )

    async def __call__(
        self, scope: Scope, receive: Receive, send: Send
    ) -> None:
        if scope["type"] == "lifespan":
            await self._lifespan(receive, send)
            return
        if scope["type"] == "http":
            await self._http(scope, receive, send)
            return
        # Unsupported scope type (e.g. websocket): refuse politely if
        # the scope allows an HTTP-shaped answer; otherwise do nothing.

    async def _lifespan(self, receive: Receive, send: Send) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                self.gateway.begin_drain()
                self.gateway.aclose()
                await send({"type": "lifespan.shutdown.complete"})
                return

    async def _http(
        self, scope: Scope, receive: Receive, send: Send
    ) -> None:
        body = b""
        while True:
            message = await receive()
            body += message.get("body", b"")
            if not message.get("more_body", False):
                break
        headers = {
            name.decode("latin-1").lower(): value.decode("latin-1")
            for name, value in scope.get("headers") or ()
        }
        response = await self.gateway.dispatch_wire(
            scope["method"], scope["path"], body, headers
        )
        # Content-Length is always known (the chunks are in hand);
        # chunked framing, if any, is the ASGI server's concern.
        response_headers = [
            (b"content-type", b"application/json"),
            (
                b"content-length",
                str(response.content_length).encode("latin-1"),
            ),
        ]
        for name, value in response.headers:
            response_headers.append(
                (name.lower().encode("latin-1"), value.encode("latin-1"))
            )
        await send(
            {
                "type": "http.response.start",
                "status": response.status,
                "headers": response_headers,
            }
        )
        if not response.chunks:
            await send({"type": "http.response.body", "body": b""})
            return
        for index, chunk in enumerate(response.chunks):
            await send(
                {
                    "type": "http.response.body",
                    "body": chunk,
                    "more_body": index + 1 < len(response.chunks),
                }
            )


def create_asgi_app(
    service: TaraService, *, pool_size: int = DEFAULT_POOL_SIZE
) -> AsgiApp:
    """Build the ASGI application for *service* (``repro[asgi]`` docs)."""
    return AsgiApp(service, pool_size=pool_size)
