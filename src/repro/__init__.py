"""repro — reproduction of *Interactive Temporal Association Analytics* (EDBT'16).

Public API overview
===================

Data substrate
    :class:`~repro.data.TransactionDatabase`,
    :class:`~repro.data.WindowedDatabase`, :class:`~repro.data.PeriodSpec`.

Offline phase (the TARA knowledge base)
    :class:`~repro.core.TaraBuilder` mines each window, archives rule
    parameter values into the :class:`~repro.core.TarArchive` and builds
    the :class:`~repro.core.EvolvingParameterSpace` index; the result is
    a :class:`~repro.core.TaraKnowledgeBase`.

Online phase (interactive exploration)
    :class:`~repro.core.TaraExplorer` answers mining, trajectory,
    parameter-recommendation, ruleset-comparison, content and
    roll-up/drill-down queries from the knowledge base in index time.

Baselines
    :mod:`repro.baselines` — DCTAR, H-Mine(online), PARAS.

MARAS
    :mod:`repro.maras` — Drug-ADR association learning and the
    *contrast* interestingness measure for multi-drug adverse-reaction
    signals.

Synthetic data
    :mod:`repro.datagen` — IBM Quest-style, retail-style, webdocs-style
    transaction generators and the FAERS-style ADR report generator.
"""

from repro._version import __version__

__all__ = ["__version__"]
