"""Belgian-retail-style basket generator with temporal drift.

Stand-in for the *retail* dataset (Brijs et al.): 88,163 baskets from a
Belgian supermarket over ~5 months, average basket ≈ 10 items, strongly
heavy-tailed item popularity.  The generator reproduces those published
statistics and adds controlled *temporal drift* — seasonal items whose
popularity rises and falls across the timeline, and evolving product
bundles — so TARA's trajectory/comparison operations have real structure
to expose (the original dataset's five months give exactly that when
split into batches).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.common.errors import ValidationError
from repro.data.database import TransactionDatabase
from repro.datagen.seeds import cumulative, make_rng, poisson, weighted_choice, zipf_weights


@dataclass(frozen=True)
class RetailParameters:
    """Configuration of the retail basket process."""

    transaction_count: int = 8_000
    item_count: int = 600
    avg_basket_size: float = 10.0
    popularity_skew: float = 1.05
    bundle_count: int = 40
    bundle_size_range: Tuple[int, int] = (2, 4)
    bundle_probability: float = 0.35
    seasonal_item_count: int = 30
    seasonal_boost: float = 8.0
    phases: int = 5
    seed: int = 11

    def __post_init__(self) -> None:
        if self.transaction_count <= 0 or self.item_count <= 1:
            raise ValidationError("transaction_count and item_count must be positive")
        if self.avg_basket_size <= 0:
            raise ValidationError("avg_basket_size must be positive")
        if not 0.0 <= self.bundle_probability <= 1.0:
            raise ValidationError("bundle_probability must be in [0, 1]")
        if self.phases <= 0:
            raise ValidationError("phases must be positive")
        lo, hi = self.bundle_size_range
        if lo < 2 or hi < lo:
            raise ValidationError("bundle_size_range must satisfy 2 <= lo <= hi")


@dataclass
class RetailGroundTruth:
    """What the generator planted (used by integration tests and demos)."""

    bundles: List[Tuple[int, ...]] = field(default_factory=list)
    seasonal_items: List[int] = field(default_factory=list)
    # seasonal_schedule[item] = phase in which the item peaks
    seasonal_schedule: List[int] = field(default_factory=list)


def generate_retail(
    params: RetailParameters,
) -> Tuple[TransactionDatabase, RetailGroundTruth]:
    """Generate baskets plus the planted ground truth.

    Baskets get the dense ``0..n-1`` clock; phase ``p`` covers the
    ``p``-th equal slice of the timeline, so partitioning the database
    into ``params.phases`` count-batches aligns windows with phases.
    """
    rng = make_rng(params.seed)
    base_weights = zipf_weights(params.item_count, params.popularity_skew)

    truth = RetailGroundTruth()
    truth.bundles = [
        tuple(
            sorted(
                rng.sample(
                    range(params.item_count),
                    rng.randint(*params.bundle_size_range),
                )
            )
        )
        for _ in range(params.bundle_count)
    ]
    truth.seasonal_items = rng.sample(
        range(params.item_count), params.seasonal_item_count
    )
    truth.seasonal_schedule = [
        rng.randrange(params.phases) for _ in truth.seasonal_items
    ]

    # Per-phase popularity tables (seasonal items boosted in their peak
    # phase, damped elsewhere).
    phase_cdfs: List[List[float]] = []
    for phase in range(params.phases):
        weights = list(base_weights)
        for item, peak in zip(truth.seasonal_items, truth.seasonal_schedule):
            if peak == phase:
                weights[item] *= params.seasonal_boost
            else:
                weights[item] *= 0.2
        phase_cdfs.append(cumulative(weights))

    # Bundle activity also drifts: each bundle is active in a random
    # contiguous phase range.
    bundle_active: List[Tuple[int, int]] = []
    for _ in truth.bundles:
        start = rng.randrange(params.phases)
        end = rng.randrange(start, params.phases)
        bundle_active.append((start, end))

    transactions: List[List[int]] = []
    per_phase = params.transaction_count // params.phases
    for index in range(params.transaction_count):
        phase = min(index // max(per_phase, 1), params.phases - 1)
        basket: set[int] = set()
        if rng.random() < params.bundle_probability:
            choices = [
                bundle
                for bundle, (start, end) in zip(truth.bundles, bundle_active)
                if start <= phase <= end
            ]
            if choices:
                basket.update(rng.choice(choices))
        target = max(1, poisson(rng, params.avg_basket_size))
        cdf = phase_cdfs[phase]
        guard = 0
        while len(basket) < target and guard < 10 * target:
            guard += 1
            basket.add(weighted_choice(rng, cdf))
        transactions.append(sorted(basket))
    return TransactionDatabase.from_itemlists(transactions), truth


def retail_dataset(
    transaction_count: int = 8_000, seed: int = 11
) -> TransactionDatabase:
    """The default retail stand-in used by tests and benchmarks."""
    database, _ = generate_retail(
        RetailParameters(transaction_count=transaction_count, seed=seed)
    )
    return database


def replicate(
    database: TransactionDatabase, factor: int
) -> TransactionDatabase:
    """Replicate a database *factor* times along the timeline.

    Mirrors the paper's scalability device ("we replicate this retail
    dataset 100 times"): copy ``k`` gets its timestamps shifted past
    copy ``k-1``, preserving per-window statistics exactly.
    """
    if factor <= 0:
        raise ValidationError(f"factor must be positive, got {factor}")
    span = database.time_span
    stride = span.end - span.start + 1
    itemlists: List[Sequence[int]] = []
    times: List[int] = []
    for copy in range(factor):
        offset = copy * stride
        for transaction in database:
            itemlists.append(transaction.items)
            times.append(transaction.time + offset)
    return TransactionDatabase.from_itemlists(itemlists, times)
