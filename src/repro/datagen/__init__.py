"""Synthetic dataset generators standing in for the paper's data sources."""

from repro.datagen.faers import (
    CASE_STUDY_INTERACTIONS,
    FaersGroundTruth,
    FaersParameters,
    faers_quarter,
    generate_faers,
)
from repro.datagen.quest import (
    QuestParameters,
    generate_quest,
    quest_t2k_scaled,
    quest_t5k_scaled,
)
from repro.datagen.retail import (
    RetailGroundTruth,
    RetailParameters,
    generate_retail,
    replicate,
    retail_dataset,
)
from repro.datagen.seeds import make_rng, poisson, zipf_weights
from repro.datagen.webdocs import (
    WebdocsParameters,
    generate_webdocs,
    webdocs_dataset,
)

__all__ = [
    "CASE_STUDY_INTERACTIONS",
    "FaersGroundTruth",
    "FaersParameters",
    "QuestParameters",
    "RetailGroundTruth",
    "RetailParameters",
    "WebdocsParameters",
    "faers_quarter",
    "generate_faers",
    "generate_quest",
    "generate_retail",
    "generate_webdocs",
    "make_rng",
    "poisson",
    "quest_t2k_scaled",
    "quest_t5k_scaled",
    "replicate",
    "retail_dataset",
    "webdocs_dataset",
    "zipf_weights",
]
