"""webdocs-style generator: huge vocabulary, very long transactions.

Stand-in for the *webdocs* dataset (Lucchese et al.): 1.69M spidered
HTML documents as transactions over a 5.27M-term vocabulary with average
length 177.  What matters for the experiments is the *regime* — average
transaction length far above the retail/Quest datasets and a vocabulary
much larger than the transaction count can saturate — because that is
what stresses itemset mining and the per-window index differently.

Documents are modelled as mixtures of topics: each topic owns a
Zipf-weighted slice of the vocabulary, each document samples 1-3 topics
and draws its terms from them, plus a long random tail.  This yields the
characteristic webdocs profile: a dense high-frequency core (HTML
boilerplate terms, modelled by a global common-term pool) and an
enormous sparse tail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.common.errors import ValidationError
from repro.data.database import TransactionDatabase
from repro.datagen.seeds import cumulative, make_rng, poisson, weighted_choice, zipf_weights


@dataclass(frozen=True)
class WebdocsParameters:
    """Configuration of the document-as-transaction process."""

    document_count: int = 2_000
    vocabulary_size: int = 20_000
    avg_document_length: float = 40.0
    topic_count: int = 25
    terms_per_topic: int = 400
    common_term_count: int = 60
    common_term_share: float = 0.45
    seed: int = 23

    def __post_init__(self) -> None:
        if self.document_count <= 0 or self.vocabulary_size <= 1:
            raise ValidationError("document_count and vocabulary_size must be positive")
        if self.avg_document_length <= 0:
            raise ValidationError("avg_document_length must be positive")
        if self.topic_count <= 0 or self.terms_per_topic <= 0:
            raise ValidationError("topic parameters must be positive")
        if not 0.0 <= self.common_term_share <= 1.0:
            raise ValidationError("common_term_share must be in [0, 1]")
        if self.common_term_count >= self.vocabulary_size:
            raise ValidationError("common_term_count must be below the vocabulary size")


def generate_webdocs(params: WebdocsParameters) -> TransactionDatabase:
    """Generate the document collection as a transaction database."""
    rng = make_rng(params.seed)
    # Common (boilerplate) terms are the first ids; topics draw from the rest.
    topic_vocab_start = params.common_term_count
    topics: List[List[int]] = []
    for _ in range(params.topic_count):
        topics.append(
            rng.sample(
                range(topic_vocab_start, params.vocabulary_size),
                min(
                    params.terms_per_topic,
                    params.vocabulary_size - topic_vocab_start,
                ),
            )
        )
    topic_cdfs = [
        cumulative(zipf_weights(len(topic), 1.0)) for topic in topics
    ]
    common_cdf = cumulative(zipf_weights(params.common_term_count, 0.8))

    documents: List[List[int]] = []
    for _ in range(params.document_count):
        length = max(3, poisson(rng, params.avg_document_length))
        terms: set[int] = set()
        active = rng.sample(range(params.topic_count), rng.randint(1, 3))
        guard = 0
        while len(terms) < length and guard < 10 * length:
            guard += 1
            if rng.random() < params.common_term_share:
                terms.add(weighted_choice(rng, common_cdf))
            else:
                topic = rng.choice(active)
                position = weighted_choice(rng, topic_cdfs[topic])
                terms.add(topics[topic][position])
        documents.append(sorted(terms))
    return TransactionDatabase.from_itemlists(documents)


def webdocs_dataset(
    document_count: int = 2_000, seed: int = 23
) -> TransactionDatabase:
    """The default webdocs stand-in used by tests and benchmarks."""
    return generate_webdocs(
        WebdocsParameters(document_count=document_count, seed=seed)
    )
