"""Deterministic randomness for the synthetic generators.

Every generator takes an integer seed and derives all its randomness
from one :class:`random.Random` instance, so datasets are exactly
reproducible across runs and platforms — a requirement for the
benchmark harness to print comparable numbers.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.common.errors import ValidationError


def make_rng(seed: int) -> random.Random:
    """A dedicated PRNG stream for one generator run."""
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise ValidationError(f"seed must be an int, got {seed!r}")
    return random.Random(seed)


def zipf_weights(n: int, skew: float) -> List[float]:
    """Normalized Zipf-like popularity weights ``1/rank^skew``.

    The workhorse of item-popularity modelling: real retail and text
    corpora both exhibit heavy-tailed item frequencies.
    """
    if n <= 0:
        raise ValidationError(f"n must be positive, got {n}")
    if skew < 0:
        raise ValidationError(f"skew must be >= 0, got {skew}")
    raw = [1.0 / (rank**skew) for rank in range(1, n + 1)]
    total = sum(raw)
    return [weight / total for weight in raw]


def weighted_choice(
    rng: random.Random, cumulative: Sequence[float]
) -> int:
    """Index drawn from a precomputed cumulative weight table."""
    from bisect import bisect_left

    return bisect_left(cumulative, rng.random() * cumulative[-1])


def cumulative(weights: Sequence[float]) -> List[float]:
    """Prefix sums of a weight vector for O(log n) sampling."""
    sums: List[float] = []
    running = 0.0
    for weight in weights:
        running += weight
        sums.append(running)
    return sums


def poisson(rng: random.Random, mean: float) -> int:
    """Poisson sample via Knuth's method (means here are small).

    Falls back to a normal approximation above mean 30 where Knuth's
    product underflows practicality.
    """
    if mean <= 0:
        raise ValidationError(f"poisson mean must be positive, got {mean}")
    if mean > 30:
        value = int(round(rng.gauss(mean, mean**0.5)))
        return max(value, 0)
    import math

    limit = math.exp(-mean)
    k = 0
    product = rng.random()
    while product > limit:
        k += 1
        product *= rng.random()
    return k
