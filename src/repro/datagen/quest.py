"""IBM Quest-style synthetic transaction generator (Agrawal & Srikant).

The paper's benchmark datasets ``T5kL50N100`` and ``T2kL100N1k`` come
from the IBM Quest data generator, which "models transactions in a
retail store".  The original binary is long gone from IBM's site; this
is a faithful reimplementation of the generative process described in
the VLDB'94 paper (Section: Synthetic Data Generation):

1. A pool of ``pattern_count`` *potentially frequent itemsets* is drawn:
   each pattern's size is Poisson around ``avg_pattern_size``; a
   ``correlation`` fraction of its items is reused from the previous
   pattern, the rest drawn uniformly.  Patterns get exponential weights
   (normalized) and a per-pattern *corruption level* from a clipped
   normal around 0.5.
2. Each transaction's size is Poisson around ``avg_transaction_size``;
   the transaction is filled by weighted-sampling patterns, dropping
   items from the end of a pattern while a uniform draw stays below its
   corruption level.  A pattern that overflows the remaining room is
   still added in half the cases, otherwise deferred to the next
   transaction.

Scaled-down presets named after the paper's datasets are provided; the
scale factors are recorded in DESIGN.md/EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.common.errors import ValidationError
from repro.data.database import TransactionDatabase
from repro.datagen.seeds import cumulative, make_rng, poisson, weighted_choice


@dataclass(frozen=True)
class QuestParameters:
    """Knobs of the Quest process (names follow the original paper)."""

    transaction_count: int
    avg_transaction_size: float
    item_count: int
    pattern_count: int = 200
    avg_pattern_size: float = 4.0
    correlation: float = 0.5
    corruption_mean: float = 0.5
    corruption_std: float = 0.1
    seed: int = 1

    def __post_init__(self) -> None:
        if self.transaction_count <= 0:
            raise ValidationError("transaction_count must be positive")
        if self.item_count <= 1:
            raise ValidationError("item_count must be > 1")
        if self.avg_transaction_size <= 0 or self.avg_pattern_size <= 0:
            raise ValidationError("average sizes must be positive")
        if not 0.0 <= self.correlation <= 1.0:
            raise ValidationError("correlation must be in [0, 1]")
        if self.pattern_count <= 0:
            raise ValidationError("pattern_count must be positive")


def _build_patterns(params: QuestParameters, rng) -> List[List[int]]:
    patterns: List[List[int]] = []
    previous: List[int] = []
    for _ in range(params.pattern_count):
        # A pattern can never exceed the item universe (a tiny universe
        # with a large avg_pattern_size would otherwise loop forever).
        size = min(max(1, poisson(rng, params.avg_pattern_size)), params.item_count)
        items: set[int] = set()
        if previous:
            reuse = min(len(previous), int(round(size * params.correlation)))
            items.update(rng.sample(previous, reuse))
        while len(items) < size:
            items.add(rng.randrange(params.item_count))
        pattern = sorted(items)
        patterns.append(pattern)
        previous = pattern
    return patterns


def generate_quest(params: QuestParameters) -> TransactionDatabase:
    """Generate a Quest database; timestamps are the dense ``0..n-1`` clock."""
    rng = make_rng(params.seed)
    patterns = _build_patterns(params, rng)
    weights = [rng.expovariate(1.0) for _ in patterns]
    weight_cdf = cumulative(weights)
    corruption = [
        min(1.0, max(0.0, rng.gauss(params.corruption_mean, params.corruption_std)))
        for _ in patterns
    ]

    transactions: List[List[int]] = []
    carried: List[int] = []  # pattern deferred from the previous transaction
    while len(transactions) < params.transaction_count:
        target_size = max(1, poisson(rng, params.avg_transaction_size))
        items: set[int] = set(carried)
        carried = []
        guard = 0
        while len(items) < target_size and guard < 64:
            guard += 1
            index = weighted_choice(rng, weight_cdf)
            pattern = list(patterns[index])
            # Corrupt: drop items from the end while the draw says so.
            while len(pattern) > 1 and rng.random() < corruption[index]:
                pattern.pop()
            if len(items) + len(pattern) > target_size and items:
                if rng.random() < 0.5:
                    items.update(pattern)  # keep anyway (original behaviour)
                else:
                    carried = pattern  # defer to the next transaction
                break
            items.update(pattern)
        if not items:
            items.add(rng.randrange(params.item_count))
        transactions.append(sorted(items))
    return TransactionDatabase.from_itemlists(transactions)


def quest_t5k_scaled(
    scale: float = 0.001, seed: int = 5
) -> TransactionDatabase:
    """``T5kL50N100`` analogue (paper: 5M transactions, avg length 50).

    At the default 1/1000 scale: 5,000 transactions, avg length ~12
    (length also reduced — pure-Python mining at length 50 would swamp
    every benchmark with itemset blowup rather than the effects under
    study), and an item universe scaled to keep per-item density
    comparable.
    """
    return generate_quest(
        QuestParameters(
            transaction_count=max(100, int(5_000_000 * scale)),
            avg_transaction_size=12.0,
            item_count=500,
            pattern_count=300,
            avg_pattern_size=4.0,
            seed=seed,
        )
    )


def quest_t2k_scaled(
    scale: float = 0.001, seed: int = 6
) -> TransactionDatabase:
    """``T2kL100N1k`` analogue (paper: 2M transactions, avg length 100).

    Scaled like :func:`quest_t5k_scaled`, with longer transactions and a
    larger item universe preserving the T2k/T5k contrast.
    """
    return generate_quest(
        QuestParameters(
            transaction_count=max(100, int(2_000_000 * scale)),
            avg_transaction_size=18.0,
            item_count=900,
            pattern_count=400,
            avg_pattern_size=5.0,
            seed=seed,
        )
    )


def expected_density(params: QuestParameters) -> float:
    """Average fraction of the item universe per transaction (diagnostic)."""
    return params.avg_transaction_size / params.item_count


def pattern_pool_entropy(params: QuestParameters) -> float:
    """Shannon entropy of the pattern weights (diagnostic for skewness)."""
    rng = make_rng(params.seed)
    _build_patterns(params, rng)
    weights = [rng.expovariate(1.0) for _ in range(params.pattern_count)]
    total = sum(weights)
    probabilities = [w / total for w in weights]
    return -sum(p * math.log2(p) for p in probabilities if p > 0)
