"""FAERS-style synthetic ADR report generator with planted ground truth.

The paper evaluates MARAS on quarterly extracts of the public FDA
Adverse Event Reporting System, scored against Drugs.com/DrugBank.  An
offline reproduction cannot ship either, so this generator produces the
closest synthetic equivalent *with exact ground truth*:

* every drug has an *own-ADR profile* (the reactions it causes alone);
* a set of **planted drug-drug interactions** — pairs (occasionally
  triples) of drugs that, when co-reported, trigger interaction ADRs
  that neither drug causes alone.  This is precisely the exclusiveness
  structure the contrast measure targets;
* **confounders** that make the naive baselines fail the way the paper
  reports: popular co-prescription pairs whose reports only carry the
  drugs' own common ADRs (high confidence, no interaction), and rare
  random combinations (tiny counts with perfect confidence — reporting
  ratio's blind spot);
* background noise drugs/ADRs per report.

The planted interactions double as the
:class:`~repro.maras.reference_kb.ReferenceKnowledgeBase` (the
Drugs.com/DrugBank stand-in), so precision@K has an exact oracle.  A few
case-study interactions carry the paper's drug names (Eliquis+Ibuprofen,
Ondansetron+Lithium, Abilify+Ramipril) purely for readable Table 2
output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.common.errors import ValidationError
from repro.data.items import ItemVocabulary
from repro.datagen.seeds import cumulative, make_rng, weighted_choice, zipf_weights
from repro.maras.reference_kb import KnownInteraction, ReferenceKnowledgeBase
from repro.maras.reports import Report, ReportDatabase

# Case-study interactions from the paper (Section 2.5.1), used as the
# first planted interactions so demo output reads like Table 2.
CASE_STUDY_INTERACTIONS: Tuple[Tuple[Tuple[str, ...], Tuple[str, ...]], ...] = (
    (("Eliquis", "Ibuprofen"), ("Haemorrhage",)),
    (("Ondansetron", "Lithium"), ("Serotonin Syndrome", "Neurotoxicity")),
    (("Abilify", "Ramipril"), ("Hypotension", "Syncope")),
)


@dataclass(frozen=True)
class FaersParameters:
    """Configuration of the synthetic reporting process."""

    report_count: int = 6_000
    drug_count: int = 120
    adr_count: int = 90
    planted_interaction_count: int = 12
    interaction_report_rate: float = 0.06
    confounder_pair_count: int = 10
    confounder_report_rate: float = 0.12
    own_adr_per_drug: Tuple[int, int] = (1, 3)
    noise_adr_probability: float = 0.15
    extra_drug_probability: float = 0.35
    drug_popularity_skew: float = 0.9
    seed: int = 97

    def __post_init__(self) -> None:
        if self.report_count <= 0:
            raise ValidationError("report_count must be positive")
        if self.drug_count < 10 or self.adr_count < 10:
            raise ValidationError("need at least 10 drugs and 10 ADRs")
        if self.planted_interaction_count < 1:
            raise ValidationError("need at least one planted interaction")
        for name, rate in (
            ("interaction_report_rate", self.interaction_report_rate),
            ("confounder_report_rate", self.confounder_report_rate),
            ("noise_adr_probability", self.noise_adr_probability),
            ("extra_drug_probability", self.extra_drug_probability),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValidationError(f"{name} must be in [0, 1]")
        if self.interaction_report_rate + self.confounder_report_rate > 1.0:
            raise ValidationError(
                "interaction and confounder rates must sum to <= 1"
            )


@dataclass
class FaersGroundTruth:
    """Everything the generator planted, for evaluation and case studies."""

    interactions: List[KnownInteraction] = field(default_factory=list)
    confounder_pairs: List[Tuple[int, int]] = field(default_factory=list)
    own_adrs: Dict[int, Tuple[int, ...]] = field(default_factory=dict)


def generate_faers(
    params: FaersParameters,
) -> Tuple[ReportDatabase, ReferenceKnowledgeBase, FaersGroundTruth]:
    """Generate reports, the reference KB, and the full ground truth."""
    rng = make_rng(params.seed)

    # Drug ids double as popularity ranks (Zipf over the id).  Placing
    # the case-study drugs at *mid-popularity* ids matters statistically:
    # top-rank drugs co-occur so often at random that the planted
    # interaction signal would be diluted, while bottom-rank drugs would
    # appear almost exclusively in interaction reports, inflating the
    # single-drug confidences the contrast measure must see stay low.
    case_drug_names = [
        drug for drugs, _ in CASE_STUDY_INTERACTIONS for drug in drugs
    ]
    case_adr_names = [adr for _, adrs in CASE_STUDY_INTERACTIONS for adr in adrs]
    drug_names = [f"drug_{i:03d}" for i in range(params.drug_count)]
    mid_band_start = max(8, params.drug_count // 12)
    for offset, name in enumerate(case_drug_names):
        drug_names[mid_band_start + 5 * offset] = name
    adr_names = [f"adr_{i:03d}" for i in range(params.adr_count)]
    for offset, name in enumerate(case_adr_names):
        adr_names[10 + 3 * offset] = name
    drug_vocab = ItemVocabulary(drug_names)
    adr_vocab = ItemVocabulary(adr_names)

    truth = FaersGroundTruth()

    # Own-ADR profiles: every drug causes a few ADRs on its own.  Keep a
    # reserved slice of ADR ids exclusive to interactions so interaction
    # ADRs are genuinely not explainable by single drugs.
    interaction_adr_ids = set()
    for drugs, adrs in CASE_STUDY_INTERACTIONS:
        interaction_adr_ids.update(adr_vocab.id_of(a) for a in adrs)
    reserved_extra = rng.sample(
        [
            a
            for a in range(params.adr_count)
            if a not in interaction_adr_ids
        ],
        params.planted_interaction_count * 2,
    )
    interaction_adr_pool = sorted(interaction_adr_ids) + reserved_extra
    own_pool = [
        a for a in range(params.adr_count) if a not in set(interaction_adr_pool)
    ]
    lo, hi = params.own_adr_per_drug
    for drug in range(params.drug_count):
        count = rng.randint(lo, hi)
        truth.own_adrs[drug] = tuple(sorted(rng.sample(own_pool, count)))

    # Planted interactions: case studies first, then synthetic pairs.
    used_pairs: set[frozenset] = set()
    pool_cursor = len(sorted(interaction_adr_ids))
    for drugs, adrs in CASE_STUDY_INTERACTIONS:
        interaction = KnownInteraction.create(
            (drug_vocab.id_of(d) for d in drugs),
            (adr_vocab.id_of(a) for a in adrs),
        )
        truth.interactions.append(interaction)
        used_pairs.add(frozenset(interaction.drugs))
    # Synthetic pairs come from the mid-popularity band for the same
    # statistical reason the case-study drugs were placed there.
    band = range(mid_band_start, max(mid_band_start + 10, 3 * params.drug_count // 4))
    while len(truth.interactions) < params.planted_interaction_count:
        pair = frozenset(rng.sample(band, 2))
        if pair in used_pairs:
            continue
        used_pairs.add(pair)
        adr_count = rng.randint(1, 2)
        adrs = []
        for _ in range(adr_count):
            adrs.append(interaction_adr_pool[pool_cursor % len(interaction_adr_pool)])
            pool_cursor += 1
        truth.interactions.append(KnownInteraction.create(pair, set(adrs)))

    # Confounder co-prescription pairs (no interaction ADRs).
    while len(truth.confounder_pairs) < params.confounder_pair_count:
        a, b = rng.sample(range(params.drug_count), 2)
        if frozenset((a, b)) in used_pairs:
            continue
        used_pairs.add(frozenset((a, b)))
        truth.confounder_pairs.append((a, b))

    drug_cdf = cumulative(zipf_weights(params.drug_count, params.drug_popularity_skew))

    def background_drugs(count: int) -> List[int]:
        chosen: set[int] = set()
        guard = 0
        while len(chosen) < count and guard < 20 * count:
            guard += 1
            chosen.add(weighted_choice(rng, drug_cdf))
        return sorted(chosen)

    def own_adr_sample(drugs: Sequence[int]) -> set[int]:
        adrs: set[int] = set()
        for drug in drugs:
            for adr in truth.own_adrs[drug]:
                if rng.random() < 0.5:
                    adrs.add(adr)
        return adrs

    reports: List[Report] = []
    interaction_cut = params.interaction_report_rate
    confounder_cut = interaction_cut + params.confounder_report_rate
    for time in range(params.report_count):
        draw = rng.random()
        if draw < interaction_cut:
            interaction = rng.choice(truth.interactions)
            drugs = set(interaction.drugs)
            while rng.random() < params.extra_drug_probability:
                drugs.add(weighted_choice(rng, drug_cdf))
            adrs = {
                adr
                for adr in interaction.adrs
                if rng.random() < 0.9
            } or set(interaction.adrs)
            adrs |= own_adr_sample(sorted(drugs))
        elif draw < confounder_cut:
            pair = rng.choice(truth.confounder_pairs)
            drugs = set(pair)
            if rng.random() < params.extra_drug_probability:
                drugs.add(weighted_choice(rng, drug_cdf))
            adrs = own_adr_sample(sorted(drugs))
        else:
            drugs = set(background_drugs(rng.randint(1, 4)))
            adrs = own_adr_sample(sorted(drugs))
        if rng.random() < params.noise_adr_probability:
            adrs.add(rng.choice(own_pool))
        if not adrs:
            # Every report documents at least one reaction.
            primary = sorted(drugs)[0]
            adrs.add(rng.choice(truth.own_adrs[primary]))
        reports.append(Report.create(drugs, adrs, time))

    database = ReportDatabase(
        reports, drug_vocabulary=drug_vocab, adr_vocabulary=adr_vocab
    )
    reference = ReferenceKnowledgeBase(truth.interactions)
    return database, reference, truth


def faers_quarter(
    seed: int = 97, report_count: int = 6_000
) -> Tuple[ReportDatabase, ReferenceKnowledgeBase, FaersGroundTruth]:
    """One synthetic 'quarter' with default parameters (Figure 6 unit)."""
    return generate_faers(
        FaersParameters(seed=seed, report_count=report_count)
    )
