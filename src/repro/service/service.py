"""The thread-safe online serving façade over the TARA explorer.

:class:`TaraService` answers the explorer's Q1/Q2/Q3/Q5 request classes
through a bounded, region-keyed LRU cache:

1. every request is canonicalized (:mod:`repro.service.keys`) to an
   all-integer key built from stable-region ids, so two settings inside
   one time-aware stable region share a single cache entry;
2. answers are stored *frozen* (immutable containers) and *thawed* on
   the way out — callers receive fresh mutable containers and answers
   that echo their own request's float settings, never another
   caller's region-equivalent ones;
3. when the service wraps an :class:`repro.core.IncrementalTara`, it
   subscribes to window appends and advances its *epoch*:
   generation-scoped entries (those that resolved a ``spec=None`` /
   ``window=None`` default) are retired, while explicit-window entries
   — still correct, because archived windows are immutable — keep
   serving.  There is no global flush.

Concurrency: one re-entrant lock guards canonicalization, cache access,
epoch transitions, and metrics.  Cache misses compute *outside* the
lock, so a slow first query does not serialize the service; concurrent
misses on the same key each compute and the last write wins (benign —
region equivalence guarantees they computed equal answers).
"""

from __future__ import annotations

import threading
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple, Union, cast, overload

from repro.common.errors import ValidationError
from repro.common.timing import stopwatch
from repro.core.builder import TaraKnowledgeBase
from repro.core.explorer import ExplorerAnswer, TaraExplorer
from repro.core.incremental import IncrementalTara
from repro.core.queries import (
    CompareQuery,
    ComparisonResult,
    ContentQuery,
    ExplorerQuery,
    MatchMode,
    MinedRule,
    Recommendation,
    RecommendQuery,
    RollupAnswer,
    RollupQuery,
    RuleTrajectory,
    TrajectoryQuery,
)
from repro.core.regions import ParameterSetting
from repro.data.items import ItemId
from repro.data.periods import PeriodSpec
from repro.mining.rules import RuleId
from repro.service.cache import RegionKeyedCache
from repro.service.keys import EPOCH_FREE, CanonicalQuery, canonicalize
from repro.service.metrics import ServiceMetrics

#: Sources a service can wrap.
ServiceSource = Union[TaraKnowledgeBase, TaraExplorer, IncrementalTara]


class TaraService:
    """Thread-safe, cached query serving over one TARA knowledge base.

    Wraps a :class:`TaraKnowledgeBase`, an existing
    :class:`TaraExplorer`, or an :class:`IncrementalTara` (in which case
    the service subscribes to appends and epoch-invalidates
    generation-scoped cache entries automatically).
    """

    def __init__(
        self,
        source: ServiceSource,
        *,
        max_entries: int = 1024,
        metrics: Optional[ServiceMetrics] = None,
    ) -> None:
        self._lock = threading.RLock()
        self._cache = RegionKeyedCache(max_entries=max_entries)  # repro-lint: guarded-by=_lock
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self._explorer: Optional[TaraExplorer] = None  # repro-lint: guarded-by=_lock
        if isinstance(source, IncrementalTara):
            self._knowledge_base = source.knowledge_base
            source.subscribe(self._on_append)
        elif isinstance(source, TaraExplorer):
            self._knowledge_base = source.knowledge_base
            self._explorer = source
        elif isinstance(source, TaraKnowledgeBase):
            self._knowledge_base = source
        else:
            raise ValidationError(
                f"cannot serve from a {type(source).__name__!r}"
            )
        self._epoch = self._knowledge_base.window_count  # repro-lint: guarded-by=_lock

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def knowledge_base(self) -> TaraKnowledgeBase:
        """The knowledge base being served."""
        return self._knowledge_base

    @property
    def epoch(self) -> int:
        """Current serving epoch (the window count last observed)."""
        with self._lock:
            return self._epoch

    def cache_info(self) -> Dict[str, int]:
        """Snapshot of cache occupancy and lifetime eviction count."""
        with self._lock:
            return {
                "entries": len(self._cache),
                "max_entries": self._cache.max_entries,
                "evictions": self._cache.evictions,
                "epoch": self._epoch,
            }

    def _on_append(self, window_count: int) -> None:
        """Append listener: advance the epoch, retire scoped entries."""
        with self._lock:
            self._epoch = window_count
            invalidated = self._cache.purge_scoped_except(window_count)
            self.metrics.record_invalidations(invalidated)

    def _get_explorer(self) -> TaraExplorer:
        # Lazy creation races without the lock: two concurrent misses
        # could each observe None and publish different explorers, and
        # the unlocked write is not a safe publication of the one kept.
        with self._lock:
            explorer = self._explorer
            if explorer is None:
                explorer = TaraExplorer(self._knowledge_base)
                self._explorer = explorer
        return explorer

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    @overload
    def execute(self, query: TrajectoryQuery) -> List[RuleTrajectory]: ...

    @overload
    def execute(self, query: CompareQuery) -> ComparisonResult: ...

    @overload
    def execute(self, query: RecommendQuery) -> Recommendation: ...

    @overload
    def execute(self, query: ContentQuery) -> Dict[int, List[RuleId]]: ...

    @overload
    def execute(self, query: RollupQuery) -> RollupAnswer: ...

    def execute(self, query: ExplorerQuery) -> ExplorerAnswer:
        """Serve one request, through the region-keyed cache.

        Cache hits thaw the stored answer; misses execute the resolved
        request on the underlying explorer (outside the lock), freeze
        and store the answer, and return it.  Roll-up requests pass
        through uncached (their answers are not region-invariant).
        """
        with stopwatch() as clock:
            with self._lock:
                canonical = canonicalize(query, self._knowledge_base, self._epoch)
                hit = False
                frozen: object = None
                if canonical.key is not None:
                    entry = self._cache.get(canonical.key)
                    if entry is not None:
                        hit = True
                        frozen = entry.value
            if not hit:
                answer = self._get_explorer().execute(canonical.resolved)
                frozen = self._freeze(canonical, answer)
                if canonical.key is not None:
                    with self._lock:
                        # An append may have landed while we computed; a
                        # scoped answer from the old epoch must not be
                        # stored under the (already purged) old tag.
                        if (
                            canonical.epoch == EPOCH_FREE
                            or canonical.epoch == self._epoch
                        ):
                            evicted = self._cache.put(
                                canonical.key, frozen, canonical.epoch
                            )
                            self.metrics.record_evictions(evicted)
            result = self._thaw(canonical, query, frozen)
        with self._lock:
            self.metrics.observe(canonical.query_class, hit, clock.seconds)
        return result

    def uncached(self, query: ExplorerQuery) -> ExplorerAnswer:
        """Execute *query* directly on the explorer, bypassing the cache.

        The bench-online harness uses this to verify that cached answers
        equal freshly computed ones before it writes results.
        """
        with self._lock:
            canonical = canonicalize(query, self._knowledge_base, self._epoch)
        return self._get_explorer().execute(canonical.resolved)

    # ------------------------------------------------------------------
    # freeze / thaw
    # ------------------------------------------------------------------
    # repro-lint: publish
    def _freeze(self, canonical: CanonicalQuery, answer: object) -> object:
        """Convert *answer* to the immutable form stored in the cache."""
        if canonical.query_class == "Q1":
            trajectories = cast(List[RuleTrajectory], answer)
            return tuple(trajectories)
        if canonical.query_class == "Q5":
            per_window = cast(Dict[int, List[RuleId]], answer)
            return tuple(
                (window, tuple(ids)) for window, ids in per_window.items()
            )
        # Q2/Q3 answers are frozen dataclasses already.
        return answer

    def _thaw(
        self, canonical: CanonicalQuery, query: ExplorerQuery, frozen: object
    ) -> ExplorerAnswer:
        """Rebuild a caller-owned answer from the frozen cached form.

        Outer containers come back fresh (appending to or popping from
        a served answer cannot corrupt the cache); the frozen value
        objects inside (trajectories, diffs, regions) are shared with
        the cache and must be treated as read-only.  Q2/Q3 answers are
        re-echoed with the *caller's* settings — a region-equivalent
        entry may have been populated by a request with different raw
        floats.
        """
        if canonical.query_class == "Q1":
            stored = cast(Tuple[RuleTrajectory, ...], frozen)
            return list(stored)
        if canonical.query_class == "Q2":
            comparison = cast(ComparisonResult, frozen)
            compare_query = cast(CompareQuery, query)
            return replace(
                comparison,
                first=compare_query.first,
                second=compare_query.second,
            )
        if canonical.query_class == "Q3":
            recommendation = cast(Recommendation, frozen)
            recommend_query = cast(RecommendQuery, query)
            return replace(
                recommendation,
                setting=recommend_query.setting,
                neighbors=dict(recommendation.neighbors),
            )
        if canonical.query_class == "Q5":
            pairs = cast(Tuple[Tuple[int, Tuple[RuleId, ...]], ...], frozen)
            return {window: list(ids) for window, ids in pairs}
        return cast(RollupAnswer, frozen)

    # ------------------------------------------------------------------
    # convenience wrappers (mirror the explorer's named operations)
    # ------------------------------------------------------------------
    def trajectories(
        self,
        setting: ParameterSetting,
        anchor_window: int,
        spec: Optional[PeriodSpec] = None,
    ) -> List[RuleTrajectory]:
        """Q1 via the cache; see :meth:`TaraExplorer.trajectories`."""
        return self.execute(
            TrajectoryQuery(
                setting=setting, anchor_window=anchor_window, spec=spec
            )
        )

    def compare(
        self,
        first: ParameterSetting,
        second: ParameterSetting,
        spec: Optional[PeriodSpec] = None,
        mode: MatchMode = MatchMode.SINGLE,
    ) -> ComparisonResult:
        """Q2 via the cache; see :meth:`TaraExplorer.compare`."""
        return self.execute(
            CompareQuery(first=first, second=second, spec=spec, mode=mode)
        )

    def recommend(
        self, setting: ParameterSetting, window: Optional[int] = None
    ) -> Recommendation:
        """Q3 via the cache; see :meth:`TaraExplorer.recommend`."""
        return self.execute(RecommendQuery(setting=setting, window=window))

    def content(
        self,
        setting: ParameterSetting,
        items: Sequence[ItemId],
        spec: Optional[PeriodSpec] = None,
    ) -> Dict[int, List[RuleId]]:
        """Q5 via the cache; see :meth:`TaraExplorer.content`."""
        return self.execute(
            ContentQuery(setting=setting, items=tuple(items), spec=spec)
        )

    def mine_rolled_up(
        self, setting: ParameterSetting, spec: PeriodSpec
    ) -> RollupAnswer:
        """Roll-up mining — metered but never cached (not region-invariant)."""
        return self.execute(RollupQuery(setting=setting, spec=spec))

    def mine(
        self, setting: ParameterSetting, spec: Optional[PeriodSpec] = None
    ) -> Dict[int, List[MinedRule]]:
        """Traditional mining — metered as class ``"mine"``, uncached.

        Mining answers embed per-window float measures for every rule;
        they are bulky relative to recomputation cost, so the serving
        layer meters them without caching.
        """
        with stopwatch() as clock:
            answer = self._get_explorer().mine(setting, spec)
        with self._lock:
            self.metrics.observe("mine", False, clock.seconds)
        return answer
