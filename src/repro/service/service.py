"""The thread-safe online serving façade over the TARA explorer.

:class:`TaraService` answers the explorer's Q1/Q2/Q3/Q5 request classes
through bounded, region-keyed LRU caches:

1. every request is canonicalized (:mod:`repro.service.keys`) to an
   all-integer key built from stable-region ids, so two settings inside
   one time-aware stable region share a single cache entry;
2. answers are stored *frozen* (immutable containers) and *thawed* on
   the way out — callers receive fresh mutable containers and answers
   that echo their own request's float settings, never another
   caller's region-equivalent ones;
3. every request executes against a **pinned snapshot**
   (:class:`repro.core.Snapshot`): the service pins the current view,
   canonicalizes and answers against it, and releases the pin when the
   answer is thawed.  Epoch-free entries (explicit windows, valid
   forever because archived windows are immutable) live in a cache the
   service owns; generation-scoped entries live in the *snapshot's own
   segment* and vanish wholesale when the snapshot retires.  There is
   no epoch re-check anywhere: an answer computed under a pin is
   correct for that pin by construction.

Concurrency: one re-entrant lock guards the shared cache and metrics;
the pinned snapshot guards its segment with its own lock (global order:
``IncrementalTara._lock`` → ``TaraService._lock`` → ``Snapshot._lock``;
no path here holds two of them at once).  Cache misses compute *outside*
every lock, so a slow first query does not serialize the service;
concurrent misses on the same key each compute and the last write wins
(benign — region equivalence guarantees they computed equal answers).
"""

from __future__ import annotations

import threading
from dataclasses import replace
from typing import (
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
    cast,
    overload,
)

from repro.common.errors import ValidationError
from repro.common.timing import stopwatch
from repro.core.builder import TaraKnowledgeBase
from repro.core.explorer import ExplorerAnswer, TaraExplorer
from repro.core.incremental import IncrementalTara
from repro.core.queries import (
    CompareQuery,
    ComparisonResult,
    ContentQuery,
    ExplorerQuery,
    MatchMode,
    MinedRule,
    Recommendation,
    RecommendQuery,
    RollupAnswer,
    RollupQuery,
    RuleTrajectory,
    TrajectoryQuery,
)
from repro.core.regions import ParameterSetting
from repro.core.snapshot import Snapshot, SnapshotHandle
from repro.data.items import ItemId
from repro.data.periods import PeriodSpec
from repro.data.transactions import Transaction
from repro.mining.rules import RuleId
from repro.service.cache import CacheEntry, RegionKeyedCache
from repro.service.keys import EPOCH_FREE, CacheKey, CanonicalQuery, canonicalize
from repro.service.metrics import ServiceMetrics

#: Sources a service can wrap.
ServiceSource = Union[TaraKnowledgeBase, TaraExplorer, IncrementalTara]


class TaraService:
    """Thread-safe, cached query serving over one TARA knowledge base.

    Wraps a :class:`TaraKnowledgeBase`, an existing
    :class:`TaraExplorer` (both served as a single static snapshot), or
    an :class:`IncrementalTara` publisher (in which case every request
    pins whatever snapshot is current; publishes never disturb requests
    already in flight).
    """

    def __init__(
        self,
        source: ServiceSource,
        *,
        max_entries: int = 1024,
        metrics: Optional[ServiceMetrics] = None,
    ) -> None:
        self._lock = threading.RLock()
        self._shared = RegionKeyedCache(max_entries=max_entries)  # repro-lint: guarded-by=_lock
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self._retired_seen = 0  # repro-lint: guarded-by=_lock
        # Exactly one of the two is set, in __init__, and never rebound:
        # either we front a publisher, or we hold one static snapshot
        # pinned for the service's whole lifetime.
        self._publisher: Optional[IncrementalTara] = None
        self._static: Optional[Snapshot] = None
        if isinstance(source, IncrementalTara):
            self._publisher = source
        elif isinstance(source, TaraExplorer):
            static = Snapshot(
                source.knowledge_base.window_count,
                source.knowledge_base,
                segment_capacity=max_entries,
                explorer=source,
            )
            static.pin()
            self._static = static
        elif isinstance(source, TaraKnowledgeBase):
            static = Snapshot(
                source.window_count, source, segment_capacity=max_entries
            )
            static.pin()
            self._static = static
        else:
            raise ValidationError(
                f"cannot serve from a {type(source).__name__!r}"
            )

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    def pin(self) -> SnapshotHandle:
        """Pin the current snapshot; release promptly (``with`` it).

        Against a publisher this is the MVCC read barrier: the returned
        view is immutable and survives any number of concurrent
        publishes until the handle is released.  Against a static
        source it pins the service's single long-lived snapshot.
        """
        if self._publisher is not None:
            return self._publisher.snapshot()
        assert self._static is not None
        return self._static.handle()

    @property
    def knowledge_base(self) -> TaraKnowledgeBase:
        """The knowledge base of the currently published snapshot."""
        if self._publisher is not None:
            return self._publisher.knowledge_base
        assert self._static is not None
        return self._static.knowledge_base

    @property
    def epoch(self) -> int:
        """Epoch of the currently published snapshot."""
        with self.pin() as snapshot:
            return snapshot.epoch

    def cache_info(self) -> Dict[str, int]:
        """Occupancy and lifetime evictions across both cache tiers.

        ``entries`` counts the shared (epoch-free) cache plus the
        current snapshot's segment; segments of retired snapshots are
        gone and accounted as invalidations in :attr:`metrics`.
        """
        self._sync_retirements()
        with self.pin() as snapshot:
            segment_entries, segment_evictions = snapshot.segment_info()
            epoch = snapshot.epoch
        with self._lock:
            return {
                "entries": len(self._shared) + segment_entries,
                "max_entries": self._shared.max_entries,
                "evictions": self._shared.evictions + segment_evictions,
                "epoch": epoch,
            }

    def metrics_snapshot(self) -> Dict[str, object]:
        """Service-tier metrics dict with fresh storage gauges.

        When the served knowledge base is a lazy v2 load
        (:class:`repro.core.lazykb.LazyTaraKnowledgeBase`), its
        shard-touch and decoded-series LRU counters are sampled into the
        metrics' storage section first, so ``/metrics`` and the bench
        artefacts see eviction pressure without polling the reader
        directly.  Eagerly loaded knowledge bases have no storage
        section.
        """
        sampler = getattr(self.knowledge_base, "storage_counters", None)
        counters = sampler() if callable(sampler) else None
        with self._lock:
            if counters is not None:
                self.metrics.set_storage_counters(counters)
            return self.metrics.as_dict()

    def snapshot_stats(self) -> Dict[str, object]:
        """Publisher/snapshot introspection for ``GET /v1/snapshot``."""
        if self._publisher is not None:
            return self._publisher.snapshot_stats()
        assert self._static is not None
        static = self._static
        return {
            "epoch": static.epoch,
            "windows": static.window_count,
            "refs": static.refs,
            "building": False,
            "retired_snapshots": 0,
            "retired_entries": 0,
        }

    def publish(
        self, batches: Iterable[Sequence[Transaction]]
    ) -> Snapshot:
        """Forward a publish to the wrapped publisher.

        Raises :class:`ValidationError` when the service fronts a
        static source (nothing can be appended to it).
        """
        if self._publisher is None:
            raise ValidationError(
                "this service fronts a static knowledge base; "
                "serve an IncrementalTara to accept appends"
            )
        return self._publisher.publish(batches)

    def _sync_retirements(self) -> None:
        """Fold snapshot retirements into the invalidation metric.

        Retirement happens on whatever thread drops the last pin; the
        publisher counts dropped segment entries and we pull the delta
        here (on the serving path) rather than re-entering the service
        from the retirement callback.
        """
        publisher = self._publisher
        if publisher is None:
            return
        total = publisher.retired_entries()
        with self._lock:
            delta = total - self._retired_seen
            if delta > 0:
                self._retired_seen = total
                self.metrics.record_invalidations(delta)

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    @overload
    def execute(self, query: TrajectoryQuery) -> List[RuleTrajectory]: ...

    @overload
    def execute(self, query: CompareQuery) -> ComparisonResult: ...

    @overload
    def execute(self, query: RecommendQuery) -> Recommendation: ...

    @overload
    def execute(self, query: ContentQuery) -> Dict[int, List[RuleId]]: ...

    @overload
    def execute(self, query: RollupQuery) -> RollupAnswer: ...

    def execute(self, query: ExplorerQuery) -> ExplorerAnswer:
        """Serve one request against a freshly pinned snapshot.

        Cache hits thaw the stored answer; misses execute the resolved
        request on the pinned snapshot's explorer (outside every lock),
        freeze and store the answer, and return it.  Roll-up requests
        pass through uncached (their answers are not region-invariant).
        """
        with self.pin() as snapshot:
            return self.execute_on(snapshot, query)

    def execute_on(
        self, snapshot: Snapshot, query: ExplorerQuery
    ) -> ExplorerAnswer:
        """Serve one request against an already-pinned *snapshot*.

        The serving gateway pins once per request (so canonicalization,
        coalescing, and execution all observe one view) and calls this;
        the caller owns the pin and must hold it until the answer is
        returned.
        """
        with stopwatch() as clock:
            canonical = canonicalize(
                query, snapshot.knowledge_base, snapshot.epoch
            )
            hit = False
            frozen: object = None
            if canonical.key is not None:
                entry = self._cache_get(canonical.key, canonical, snapshot)
                if entry is not None:
                    hit = True
                    frozen = entry.value
            if not hit:
                answer = snapshot.explorer().execute(canonical.resolved)
                frozen = self._freeze(canonical, answer)
                if canonical.key is not None:
                    evicted = self._cache_put(
                        canonical.key, canonical, snapshot, frozen
                    )
                    with self._lock:
                        self.metrics.record_evictions(evicted)
            result = self._thaw(canonical, query, frozen)
        self._sync_retirements()
        with self._lock:
            self.metrics.observe(canonical.query_class, hit, clock.seconds)
        return result

    def uncached(self, query: ExplorerQuery) -> ExplorerAnswer:
        """Execute *query* on a pinned snapshot, bypassing both caches.

        The bench harnesses use this to verify that cached answers
        equal freshly computed ones before they write results.
        """
        with self.pin() as snapshot:
            canonical = canonicalize(
                query, snapshot.knowledge_base, snapshot.epoch
            )
            return snapshot.explorer().execute(canonical.resolved)

    # ------------------------------------------------------------------
    # the two cache tiers
    # ------------------------------------------------------------------
    def _cache_get(
        self, key: CacheKey, canonical: CanonicalQuery, snapshot: Snapshot
    ) -> Optional[CacheEntry]:
        """Look *key* up in the tier the canonical query belongs to."""
        if canonical.scoped:
            return snapshot.cached(key)
        with self._lock:
            return self._shared.get(key)

    def _cache_put(
        self,
        key: CacheKey,
        canonical: CanonicalQuery,
        snapshot: Snapshot,
        frozen: object,
    ) -> int:
        """Store into the right tier; returns how many entries evicted.

        Scoped answers go into the pinned snapshot's segment — always
        correct, because the value was computed against exactly that
        view; when the snapshot retires, the whole segment goes with
        it.  Epoch-free answers go into the service-owned shared cache
        and outlive every snapshot.
        """
        if canonical.scoped:
            return snapshot.store(key, frozen)
        with self._lock:
            return self._shared.put(key, frozen, EPOCH_FREE)

    # ------------------------------------------------------------------
    # freeze / thaw
    # ------------------------------------------------------------------
    # repro-lint: publish
    def _freeze(self, canonical: CanonicalQuery, answer: object) -> object:
        """Convert *answer* to the immutable form stored in the cache."""
        if canonical.query_class == "Q1":
            trajectories = cast(List[RuleTrajectory], answer)
            return tuple(trajectories)
        if canonical.query_class == "Q5":
            per_window = cast(Dict[int, List[RuleId]], answer)
            return tuple(
                (window, tuple(ids)) for window, ids in per_window.items()
            )
        # Q2/Q3 answers are frozen dataclasses already.
        return answer

    def _thaw(
        self, canonical: CanonicalQuery, query: ExplorerQuery, frozen: object
    ) -> ExplorerAnswer:
        """Rebuild a caller-owned answer from the frozen cached form.

        Outer containers come back fresh (appending to or popping from
        a served answer cannot corrupt the cache); the frozen value
        objects inside (trajectories, diffs, regions) are shared with
        the cache and must be treated as read-only.  Q2/Q3 answers are
        re-echoed with the *caller's* settings — a region-equivalent
        entry may have been populated by a request with different raw
        floats.
        """
        if canonical.query_class == "Q1":
            stored = cast(Tuple[RuleTrajectory, ...], frozen)
            return list(stored)
        if canonical.query_class == "Q2":
            comparison = cast(ComparisonResult, frozen)
            compare_query = cast(CompareQuery, query)
            return replace(
                comparison,
                first=compare_query.first,
                second=compare_query.second,
            )
        if canonical.query_class == "Q3":
            recommendation = cast(Recommendation, frozen)
            recommend_query = cast(RecommendQuery, query)
            return replace(
                recommendation,
                setting=recommend_query.setting,
                neighbors=dict(recommendation.neighbors),
            )
        if canonical.query_class == "Q5":
            pairs = cast(Tuple[Tuple[int, Tuple[RuleId, ...]], ...], frozen)
            return {window: list(ids) for window, ids in pairs}
        return cast(RollupAnswer, frozen)

    # ------------------------------------------------------------------
    # convenience wrappers (mirror the explorer's named operations)
    # ------------------------------------------------------------------
    def trajectories(
        self,
        setting: ParameterSetting,
        anchor_window: int,
        spec: Optional[PeriodSpec] = None,
    ) -> List[RuleTrajectory]:
        """Q1 via the cache; see :class:`TrajectoryQuery`."""
        return self.execute(
            TrajectoryQuery(
                setting=setting, anchor_window=anchor_window, spec=spec
            )
        )

    def compare(
        self,
        first: ParameterSetting,
        second: ParameterSetting,
        spec: Optional[PeriodSpec] = None,
        mode: MatchMode = MatchMode.SINGLE,
    ) -> ComparisonResult:
        """Q2 via the cache; see :class:`CompareQuery`."""
        return self.execute(
            CompareQuery(first=first, second=second, spec=spec, mode=mode)
        )

    def recommend(
        self, setting: ParameterSetting, window: Optional[int] = None
    ) -> Recommendation:
        """Q3 via the cache; see :class:`RecommendQuery`."""
        return self.execute(RecommendQuery(setting=setting, window=window))

    def content(
        self,
        setting: ParameterSetting,
        items: Sequence[ItemId],
        spec: Optional[PeriodSpec] = None,
    ) -> Dict[int, List[RuleId]]:
        """Q5 via the cache; see :class:`ContentQuery`."""
        return self.execute(
            ContentQuery(setting=setting, items=tuple(items), spec=spec)
        )

    def mine_rolled_up(
        self, setting: ParameterSetting, spec: PeriodSpec
    ) -> RollupAnswer:
        """Roll-up mining — metered but never cached (not region-invariant)."""
        return self.execute(RollupQuery(setting=setting, spec=spec))

    def mine(
        self, setting: ParameterSetting, spec: Optional[PeriodSpec] = None
    ) -> Dict[int, List[MinedRule]]:
        """Traditional mining — metered as class ``"mine"``, uncached.

        Mining answers embed per-window float measures for every rule;
        they are bulky relative to recomputation cost, so the serving
        layer meters them without caching.
        """
        with stopwatch() as clock:
            with self.pin() as snapshot:
                answer = snapshot.explorer().mine(setting, spec)
        with self._lock:
            self.metrics.observe("mine", False, clock.seconds)
        return answer
