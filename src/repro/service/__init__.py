"""The online serving layer: region-keyed caching over the explorer.

The paper's interactivity argument rests on two facts: online
operations are pure index lookups, and the parameter space is carved
into time-aware stable regions within which every setting yields the
same answer.  This layer turns the second fact into a serving-time
win — :class:`TaraService` canonicalizes each Q1/Q2/Q3/Q5 request to an
all-integer stable-region key, memoizes answers in bounded LRUs
(:class:`RegionKeyedCache`), and tracks hit/miss/latency per query
class (:class:`ServiceMetrics`).  Every request executes against a
pinned MVCC snapshot (:meth:`TaraService.pin`): epoch-free answers
share a service-owned cache, generation-scoped answers live in the
snapshot's own segment and retire with it when
:class:`repro.core.IncrementalTara` publishes a successor and the last
reader drains.

See ``docs/serving.md`` for the design discussion.
"""

from repro.service.cache import CacheEntry, RegionKeyedCache
from repro.service.keys import (
    EPOCH_FREE,
    CacheKey,
    CanonicalQuery,
    canonicalize,
)
from repro.service.metrics import LatencyHistogram, ServiceMetrics
from repro.service.service import ServiceSource, TaraService

__all__ = [
    "CacheEntry",
    "CacheKey",
    "CanonicalQuery",
    "EPOCH_FREE",
    "LatencyHistogram",
    "RegionKeyedCache",
    "ServiceMetrics",
    "ServiceSource",
    "TaraService",
    "canonicalize",
]
