"""Serving-layer observability: hit/miss counters and latency histograms.

:class:`ServiceMetrics` accumulates, per query class (``Q1``, ``Q2``,
``Q3``, ``Q5``, plus the uncached passthrough classes), cache hit/miss
counts and separate hit/miss latency histograms, together with global
eviction and invalidation counters.  Everything is exposed twice: as a
plain ``dict`` (:meth:`ServiceMetrics.as_dict`, for the bench harness's
JSON artefacts) and as a human-readable text table
(:meth:`ServiceMetrics.report`, styled after
:meth:`repro.common.timing.PhaseTimer.report`).

The metrics objects are plain mutable accumulators; like the cache they
rely on :class:`repro.service.service.TaraService` for synchronization.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: Upper bucket bounds, in seconds.  The final bucket is unbounded.
BUCKET_BOUNDS: Tuple[float, ...] = (1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0)

#: Human labels, one per bound plus the overflow bucket.
BUCKET_LABELS: Tuple[str, ...] = (
    "<10us",
    "<100us",
    "<1ms",
    "<10ms",
    "<100ms",
    "<1s",
    ">=1s",
)


class LatencyHistogram:
    """Fixed-bucket latency histogram (seconds) with mean tracking."""

    def __init__(self) -> None:
        self.buckets: List[int] = [0] * (len(BUCKET_BOUNDS) + 1)
        self.count = 0
        self.total_seconds = 0.0

    def record(self, seconds: float) -> None:
        """Record one observation of *seconds*."""
        index = 0
        for bound in BUCKET_BOUNDS:
            if seconds < bound:
                break
            index += 1
        self.buckets[index] += 1
        self.count += 1
        self.total_seconds += seconds

    @property
    def mean_seconds(self) -> float:
        """Mean observed latency, or 0.0 with no observations."""
        return self.total_seconds / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly snapshot: counts per bucket label plus summary."""
        return {
            "count": self.count,
            "total_seconds": self.total_seconds,
            "mean_seconds": self.mean_seconds,
            "buckets": dict(zip(BUCKET_LABELS, self.buckets)),
        }


class ServiceMetrics:
    """Per-query-class serving counters for one :class:`TaraService`."""

    def __init__(self) -> None:
        self.hits: Dict[str, int] = {}
        self.misses: Dict[str, int] = {}
        self.hit_latency: Dict[str, LatencyHistogram] = {}
        self.miss_latency: Dict[str, LatencyHistogram] = {}
        self.evictions = 0
        self.invalidations = 0
        self.storage: Dict[str, int] = {}
        self._order: List[str] = []

    def _register(self, query_class: str) -> None:
        if query_class not in self.hits:
            self.hits[query_class] = 0
            self.misses[query_class] = 0
            self.hit_latency[query_class] = LatencyHistogram()
            self.miss_latency[query_class] = LatencyHistogram()
            self._order.append(query_class)

    def observe(self, query_class: str, hit: bool, seconds: float) -> None:
        """Record one served request of *query_class* taking *seconds*."""
        self._register(query_class)
        if hit:
            self.hits[query_class] += 1
            self.hit_latency[query_class].record(seconds)
        else:
            self.misses[query_class] += 1
            self.miss_latency[query_class].record(seconds)

    def record_evictions(self, count: int) -> None:
        """Add *count* cache evictions to the global counter."""
        self.evictions += count

    def record_invalidations(self, count: int) -> None:
        """Add *count* epoch-invalidated entries to the global counter."""
        self.invalidations += count

    def set_storage_counters(self, counters: Dict[str, int]) -> None:
        """Replace the storage-layer gauge snapshot.

        Populated when the served knowledge base is a lazy v2 load:
        shard/window touch counts and the decoded-series LRU accounting
        (``cache_hits`` / ``cache_misses`` / ``cache_evictions`` /
        ``cache_current_bytes`` / ...).  These are *gauges* sampled from
        :meth:`repro.core.lazykb.LazyTaraKnowledgeBase.storage_counters`,
        not accumulators, so the setter overwrites rather than adds.
        """
        self.storage = dict(counters)

    def requests(self, query_class: str) -> int:
        """Total requests served for *query_class* (hits + misses)."""
        return self.hits.get(query_class, 0) + self.misses.get(query_class, 0)

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly snapshot of every counter and histogram."""
        classes: Dict[str, object] = {}
        for query_class in self._order:
            classes[query_class] = {
                "hits": self.hits[query_class],
                "misses": self.misses[query_class],
                "hit_latency": self.hit_latency[query_class].as_dict(),
                "miss_latency": self.miss_latency[query_class].as_dict(),
            }
        return {
            "classes": classes,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "storage": dict(self.storage),
        }

    def report(self, title: str = "serving metrics") -> str:
        """Human-readable multi-line table, one row per query class.

        Styled after :meth:`repro.common.timing.PhaseTimer.report`: an
        indented aligned table under *title*, with the global eviction /
        invalidation counters on the closing lines.
        """
        lines = [title]
        width = max((len(name) for name in self._order), default=0)
        for name in self._order:
            hits = self.hits[name]
            misses = self.misses[name]
            total = hits + misses
            ratio = hits / total if total else 0.0
            hit_ms = self.hit_latency[name].mean_seconds * 1e3
            miss_ms = self.miss_latency[name].mean_seconds * 1e3
            lines.append(
                f"  {name.ljust(width)}  {hits:6d} hit / {misses:6d} miss"
                f"  ({ratio:6.1%})  hit {hit_ms:9.3f} ms"
                f"  miss {miss_ms:9.3f} ms"
            )
        lines.append(f"  evictions      {self.evictions:6d}")
        lines.append(f"  invalidations  {self.invalidations:6d}")
        if self.storage:
            lines.append("  storage")
            storage_width = max(len(name) for name in self.storage)
            for name, value in self.storage.items():
                lines.append(f"    {name.ljust(storage_width)}  {value:10d}")
        return "\n".join(lines)
