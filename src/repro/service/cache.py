"""Bounded LRU cache over canonical region keys, with epoch retirement.

The cache is deliberately small and boring: an :class:`~collections.OrderedDict`
in least-recently-used order, a hard entry bound, an eviction counter,
and one operation the serving layer's invalidation protocol needs —
:meth:`RegionKeyedCache.purge_scoped_except`, which retires every
*epoch-scoped* entry whose tag differs from the new epoch while leaving
epoch-free entries (explicit-window answers, valid forever because
archived windows are immutable) untouched.  No global flush exists on
the hot path by design.

The cache itself is **not** synchronized; :class:`repro.service.service.TaraService`
owns the lock and is the only caller.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional

from repro.common.errors import ValidationError
from repro.service.keys import EPOCH_FREE, CacheKey


@dataclass(frozen=True)
class CacheEntry:
    """One memoized answer: the frozen value plus its epoch scope.

    ``epoch`` is :data:`repro.service.keys.EPOCH_FREE` for entries that
    can never go stale, or the serving epoch the entry is scoped to.
    """

    value: object
    epoch: int


class RegionKeyedCache:
    """A bounded, LRU-evicting map from canonical keys to answers."""

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries <= 0:
            raise ValidationError(
                f"cache max_entries must be positive, got {max_entries}"
            )
        self.max_entries = max_entries
        self.evictions = 0
        self._entries: "OrderedDict[CacheKey, CacheEntry]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    def get(self, key: CacheKey) -> Optional[CacheEntry]:
        """The entry at *key* (refreshing its recency), or ``None``."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def put(self, key: CacheKey, value: object, epoch: int) -> int:
        """Insert (or refresh) *key*; returns how many entries were evicted."""
        self._entries[key] = CacheEntry(value=value, epoch=epoch)
        self._entries.move_to_end(key)
        evicted = 0
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            evicted += 1
        self.evictions += evicted
        return evicted

    def purge_scoped_except(self, epoch: int) -> int:
        """Drop epoch-scoped entries not tagged *epoch*; returns the count.

        Validity is identity, not age: a scoped entry serves only while
        its tag *equals* the current epoch, so retirement compares by
        equality rather than ordering (which would silently break the
        moment epochs recycle or fork).  Epoch-free entries survive:
        they answer explicit-window requests whose underlying windows
        are immutable once built.
        """
        stale: List[CacheKey] = [
            key
            for key, entry in self._entries.items()
            if entry.epoch != EPOCH_FREE and entry.epoch != epoch
        ]
        for key in stale:
            del self._entries[key]
        return len(stale)

    def clear(self) -> int:
        """Drop every entry (test/bench aid); returns how many were dropped."""
        dropped = len(self._entries)
        self._entries.clear()
        return dropped
