"""Serving-tier re-export of the region-keyed cache container.

The implementation moved to :mod:`repro.core.cache` in PR 8: the
per-snapshot cache *segment* is owned by :class:`repro.core.Snapshot`,
which sits below this layer, so the container had to live below it too.
This module keeps the historical import path for the serving tier
(``from repro.service.cache import RegionKeyedCache``) working
unchanged.
"""

from repro.core.cache import CacheEntry, CacheKey, RegionKeyedCache

__all__ = ["CacheEntry", "CacheKey", "RegionKeyedCache"]
