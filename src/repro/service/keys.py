"""Canonical integer region keys — the cache identity of online queries.

The paper's equivalence (Definition 11) says every parameter setting
inside one time-aware stable region yields the *same* ruleset.  The
serving layer exploits that by canonicalizing each request to a tuple
of plain integers before it ever touches the cache:

* each ``(window, setting)`` pair becomes the window's **stable-region
  id** (:meth:`repro.core.regions.WindowSlice.region_id`) — two settings
  in the same region therefore share one cache entry, and raw float
  thresholds never participate in key equality (rule R001's spirit);
* generation-scoped defaults (``spec=None`` = "all windows",
  ``window=None`` = "the latest window") are resolved to explicit
  window indexes **and** tagged with the serving epoch, so a window
  append retires exactly those entries while explicit per-window
  entries — still valid, because archived windows are immutable — keep
  serving.

Key layouts (every element an ``int``; the class code comes first and
each variable-length section is preceded by its length, so distinct
queries can never produce the same tuple):

=====  ================================================================
Q1     ``(1, tag, anchor, region_id, n, *windows)``
Q2     ``(2, tag, mode, n, *windows, *first_ids, *second_ids)``
Q3     ``(3, tag, window, region_id)``
Q5     ``(5, tag, n, *windows, *region_ids, m, *items)``
=====  ================================================================

``tag`` is :data:`EPOCH_FREE` for fully-explicit queries and the pinned
snapshot's epoch for generation-scoped ones.  Epoch-free entries live in
the service-owned shared cache; scoped entries live in the pinned
snapshot's private segment and are retired wholesale with it.  Roll-up
requests canonicalize with ``key=None``: their answers threshold
*merged* counts, so stable regions do not imply equal answers and the
service never caches them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.common.errors import QueryError
from repro.core.builder import TaraKnowledgeBase
from repro.core.cache import CacheKey
from repro.core.queries import (
    CompareQuery,
    ContentQuery,
    ExplorerQuery,
    MatchMode,
    RecommendQuery,
    RollupQuery,
    TrajectoryQuery,
)
from repro.core.regions import ParameterSetting
from repro.data.periods import PeriodSpec

#: Epoch tag of entries that never go stale (explicit windows only).
EPOCH_FREE = -1

#: :data:`repro.core.cache.CacheKey`, re-exported — a fully-integer
#: cache key (see the module docstring for layouts).

_MODE_CODES = {MatchMode.SINGLE: 0, MatchMode.EXACT: 1}


@dataclass(frozen=True)
class CanonicalQuery:
    """One request canonicalized for serving.

    Attributes:
        query_class: metrics label — ``"Q1"``/``"Q2"``/``"Q3"``/``"Q5"``
            for the cacheable classes, ``"rollup"`` for pass-through.
        resolved: the request with every generation-scoped default
            replaced by explicit window indexes; executing it yields the
            exact answer the key identifies.
        key: the integer cache key, or ``None`` when the request is not
            region-cacheable (roll-up).
        epoch: :data:`EPOCH_FREE`, or the epoch the key is scoped to.
    """

    query_class: str
    resolved: ExplorerQuery
    key: Optional[CacheKey]
    epoch: int

    @property
    def scoped(self) -> bool:
        """True when the key belongs in one snapshot's cache segment.

        Scoped keys resolved a generation default (``spec=None`` /
        ``window=None``) against a particular snapshot; epoch-free keys
        name explicit immutable windows and live in the shared cache.
        """
        return self.epoch != EPOCH_FREE


def _resolve_spec(
    spec: Optional[PeriodSpec], knowledge_base: TaraKnowledgeBase
) -> Tuple[PeriodSpec, bool]:
    """Resolve a maybe-default spec; returns (explicit spec, was_default)."""
    if spec is None:
        return knowledge_base.all_windows(), True
    return spec.restrict_to(knowledge_base.window_count), False


def _region_ids(
    knowledge_base: TaraKnowledgeBase,
    setting: ParameterSetting,
    windows: Tuple[int, ...],
) -> List[int]:
    """Stable-region id of *setting* in each of *windows* (two bisects each)."""
    return [
        knowledge_base.slice(window).region_id(setting) for window in windows
    ]


def canonicalize(
    query: ExplorerQuery,
    knowledge_base: TaraKnowledgeBase,
    epoch: int,
) -> CanonicalQuery:
    """Canonicalize *query* against *knowledge_base* at serving *epoch*.

    Raises the same domain errors the explorer would (unknown window,
    setting below generation thresholds), so invalid requests fail
    before the cache is consulted.
    """
    if isinstance(query, TrajectoryQuery):
        spec, scoped = _resolve_spec(query.spec, knowledge_base)
        region = knowledge_base.slice(query.anchor_window).region_id(
            query.setting
        )
        tag = epoch if scoped else EPOCH_FREE
        key = (
            1,
            tag,
            query.anchor_window,
            region,
            len(spec),
            *spec.windows,
        )
        return CanonicalQuery(
            query_class="Q1",
            resolved=replace(query, spec=spec),
            key=key,
            epoch=tag,
        )

    if isinstance(query, CompareQuery):
        spec, scoped = _resolve_spec(query.spec, knowledge_base)
        first_ids = _region_ids(knowledge_base, query.first, spec.windows)
        second_ids = _region_ids(knowledge_base, query.second, spec.windows)
        tag = epoch if scoped else EPOCH_FREE
        key = (
            2,
            tag,
            _MODE_CODES[query.mode],
            len(spec),
            *spec.windows,
            *first_ids,
            *second_ids,
        )
        return CanonicalQuery(
            query_class="Q2",
            resolved=replace(query, spec=spec),
            key=key,
            epoch=tag,
        )

    if isinstance(query, RecommendQuery):
        scoped = query.window is None
        window = (
            knowledge_base.window_count - 1
            if query.window is None
            else query.window
        )
        region = knowledge_base.slice(window).region_id(query.setting)
        tag = epoch if scoped else EPOCH_FREE
        return CanonicalQuery(
            query_class="Q3",
            resolved=replace(query, window=window),
            key=(3, tag, window, region),
            epoch=tag,
        )

    if isinstance(query, ContentQuery):
        spec, scoped = _resolve_spec(query.spec, knowledge_base)
        region_ids = _region_ids(knowledge_base, query.setting, spec.windows)
        tag = epoch if scoped else EPOCH_FREE
        key = (
            5,
            tag,
            len(spec),
            *spec.windows,
            *region_ids,
            len(query.items),
            *query.items,
        )
        return CanonicalQuery(
            query_class="Q5",
            resolved=replace(query, spec=spec),
            key=key,
            epoch=tag,
        )

    if isinstance(query, RollupQuery):
        # Roll-up answers threshold merged counts: stable regions do not
        # imply equal answers, so the request is never cached.
        return CanonicalQuery(
            query_class="rollup",
            resolved=query,
            key=None,
            epoch=EPOCH_FREE,
        )

    raise QueryError(f"unknown explorer query type {type(query).__name__!r}")


def echo_tag(query: ExplorerQuery) -> Tuple[float, ...]:
    """The raw caller floats an answer *echoes back* verbatim.

    Region keys deliberately erase raw thresholds (two settings in one
    stable region share a key), but Q2/Q3 answers re-echo the caller's
    exact floats (:meth:`repro.service.service.TaraService` thaws them
    back in), so two region-equivalent requests with different raw
    settings produce answers that differ *in those echoed fields only*.
    Value-level caching is unaffected — the thaw re-echoes per caller —
    but a cache of encoded response *bytes* must key on the echo too,
    or one caller's floats would be served to another.  Q1/Q5 answers
    echo nothing and return the empty tag.
    """
    if isinstance(query, CompareQuery):
        return (
            query.first.min_support,
            query.first.min_confidence,
            query.second.min_support,
            query.second.min_confidence,
        )
    if isinstance(query, RecommendQuery):
        return (query.setting.min_support, query.setting.min_confidence)
    return ()
